//! # critlock-aggregate
//!
//! Cross-session aggregation: turn a merged [`Rollup`] (the CLAG
//! document of per-session lock digests) into a **fleet report** — the
//! answer to "which lock is critical *across the fleet*?", in the spirit
//! of fleet-wide serialization-bottleneck profiling (GAPP): "lock X is
//! critical in 40% of sessions, mean CP share 31%".
//!
//! The report derives every percentage from the rollup's integer totals
//! at render time: a per-lock session count, the count of sessions where
//! the lock sits on the critical path, the exact integer sum of
//! fixed-point per-session CP shares, and summed invocation/wait/hold
//! totals. Because rollup merge is order-independent (see
//! `critlock_trace::rollup`), the fleet report is a pure function of the
//! *set* of sessions — byte-identical however the rollups were sharded,
//! forwarded or re-ordered on the way in.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use critlock_trace::rollup::{Rollup, PPM};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One lock's fleet-wide statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetLockStat {
    /// Lock name (locks are identified by name across sessions).
    pub name: String,
    /// Sessions in which the lock appears at all.
    pub sessions_seen: u64,
    /// Sessions in which the lock lies on the critical path — the
    /// paper's *critical lock* test, counted fleet-wide.
    pub sessions_critical: u64,
    /// `sessions_critical / total sessions` (0 when the rollup is
    /// empty).
    pub critical_session_frac: f64,
    /// Mean over the sessions where the lock appears of its per-session
    /// CP share (`cp_time / cp_length`), derived from the exact integer
    /// ppm sum.
    pub mean_cp_share: f64,
    /// Exact integer sum of per-session fixed-point CP shares (ppm) —
    /// the value `mean_cp_share` is derived from.
    pub cp_share_ppm_sum: u64,
    /// Summed critical-path time across sessions.
    pub total_cp_time: u64,
    /// Summed on-CP invocations across sessions.
    pub invocations_on_cp: u64,
    /// Summed contended on-CP invocations across sessions.
    pub contended_on_cp: u64,
    /// Summed invocations across sessions.
    pub total_invocations: u64,
    /// Summed wait time across sessions.
    pub total_wait: u64,
    /// Summed hold time across sessions.
    pub total_hold: u64,
}

/// One lock's fleet-wide statistics over the sessions' most recently
/// closed sliding windows (present only when collectors run with
/// windowing enabled — `serve --window-secs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetWindowStat {
    /// Lock name.
    pub name: String,
    /// Windowed sessions in whose latest window the lock appears.
    pub sessions_seen: u64,
    /// Windowed sessions in whose latest window the lock lies on the
    /// window's critical path.
    pub sessions_critical: u64,
    /// Mean over `sessions_seen` of the lock's in-window CP share,
    /// derived from the exact integer ppm sum.
    pub mean_cp_share: f64,
    /// Exact integer sum of per-window fixed-point CP shares (ppm).
    pub cp_share_ppm_sum: u64,
    /// Summed in-window critical-path time across sessions.
    pub total_cp_time: u64,
}

/// The fleet-wide view of the sessions' most recent closed windows —
/// "critical locks over the last N seconds", aggregated. Derived purely
/// from the window annotations the digests carry, so it inherits the
/// rollup's merge-order independence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetWindow {
    /// Sessions carrying a window annotation.
    pub sessions: u64,
    /// Per-lock stats over those windows, ranked by window criticality
    /// (sessions critical, then summed CP share, then summed CP time,
    /// then name).
    pub locks: Vec<FleetWindowStat>,
}

/// The fleet-wide aggregation of a rollup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Sessions covered.
    pub sessions: u64,
    /// Sessions whose analysis was degraded (salvage or budget).
    pub degraded_sessions: u64,
    /// Session count per application name.
    pub apps: BTreeMap<String, u64>,
    /// Per-lock fleet statistics, ranked by fleet criticality (sessions
    /// critical, then summed CP share, then summed CP time, then name).
    pub locks: Vec<FleetLockStat>,
    /// Fleet view of the most recent closed sliding windows; `None`
    /// unless at least one digest carries a window annotation.
    #[serde(default)]
    pub recent: Option<FleetWindow>,
}

impl FleetReport {
    /// Aggregate a rollup. Deterministic: the output depends only on the
    /// set of session digests, not on merge or insertion order.
    pub fn from_rollup(rollup: &Rollup) -> Self {
        #[derive(Default)]
        struct Acc {
            sessions_seen: u64,
            sessions_critical: u64,
            cp_share_ppm_sum: u64,
            total_cp_time: u64,
            invocations_on_cp: u64,
            contended_on_cp: u64,
            total_invocations: u64,
            total_wait: u64,
            total_hold: u64,
        }
        let mut by_lock: BTreeMap<&str, Acc> = BTreeMap::new();
        let mut win_by_lock: BTreeMap<&str, Acc> = BTreeMap::new();
        let mut apps: BTreeMap<String, u64> = BTreeMap::new();
        let mut degraded = 0u64;
        let mut windowed = 0u64;
        for digest in rollup.sessions.values() {
            *apps.entry(digest.app.clone()).or_default() += 1;
            degraded += digest.degraded as u64;
            for lock in &digest.locks {
                let acc = by_lock.entry(&lock.name).or_default();
                acc.sessions_seen += 1;
                acc.sessions_critical += (lock.invocations_on_cp > 0) as u64;
                acc.cp_share_ppm_sum = acc.cp_share_ppm_sum.saturating_add(lock.cp_share_ppm);
                acc.total_cp_time = acc.total_cp_time.saturating_add(lock.cp_time);
                acc.invocations_on_cp += lock.invocations_on_cp;
                acc.contended_on_cp += lock.contended_on_cp;
                acc.total_invocations += lock.total_invocations;
                acc.total_wait = acc.total_wait.saturating_add(lock.total_wait);
                acc.total_hold = acc.total_hold.saturating_add(lock.total_hold);
            }
            if let Some(window) = &digest.window {
                windowed += 1;
                for lock in &window.locks {
                    let acc = win_by_lock.entry(&lock.name).or_default();
                    acc.sessions_seen += 1;
                    acc.sessions_critical += (lock.invocations_on_cp > 0) as u64;
                    acc.cp_share_ppm_sum = acc.cp_share_ppm_sum.saturating_add(lock.cp_share_ppm);
                    acc.total_cp_time = acc.total_cp_time.saturating_add(lock.cp_time);
                }
            }
        }
        let recent = (windowed > 0).then(|| {
            let mut locks: Vec<FleetWindowStat> = win_by_lock
                .into_iter()
                .map(|(name, acc)| FleetWindowStat {
                    name: name.to_string(),
                    sessions_seen: acc.sessions_seen,
                    sessions_critical: acc.sessions_critical,
                    mean_cp_share: if acc.sessions_seen == 0 {
                        0.0
                    } else {
                        acc.cp_share_ppm_sum as f64 / (acc.sessions_seen as f64 * PPM as f64)
                    },
                    cp_share_ppm_sum: acc.cp_share_ppm_sum,
                    total_cp_time: acc.total_cp_time,
                })
                .collect();
            locks.sort_by(|a, b| {
                b.sessions_critical
                    .cmp(&a.sessions_critical)
                    .then(b.cp_share_ppm_sum.cmp(&a.cp_share_ppm_sum))
                    .then(b.total_cp_time.cmp(&a.total_cp_time))
                    .then(a.name.cmp(&b.name))
            });
            FleetWindow { sessions: windowed, locks }
        });
        let sessions = rollup.len() as u64;
        let mut locks: Vec<FleetLockStat> = by_lock
            .into_iter()
            .map(|(name, acc)| FleetLockStat {
                name: name.to_string(),
                sessions_seen: acc.sessions_seen,
                sessions_critical: acc.sessions_critical,
                critical_session_frac: if sessions == 0 {
                    0.0
                } else {
                    acc.sessions_critical as f64 / sessions as f64
                },
                mean_cp_share: if acc.sessions_seen == 0 {
                    0.0
                } else {
                    acc.cp_share_ppm_sum as f64 / (acc.sessions_seen as f64 * PPM as f64)
                },
                cp_share_ppm_sum: acc.cp_share_ppm_sum,
                total_cp_time: acc.total_cp_time,
                invocations_on_cp: acc.invocations_on_cp,
                contended_on_cp: acc.contended_on_cp,
                total_invocations: acc.total_invocations,
                total_wait: acc.total_wait,
                total_hold: acc.total_hold,
            })
            .collect();
        // Fleet criticality ranking, fully deterministic (name tiebreak).
        locks.sort_by(|a, b| {
            b.sessions_critical
                .cmp(&a.sessions_critical)
                .then(b.cp_share_ppm_sum.cmp(&a.cp_share_ppm_sum))
                .then(b.total_cp_time.cmp(&a.total_cp_time))
                .then(a.name.cmp(&b.name))
        });
        FleetReport { sessions, degraded_sessions: degraded, apps, locks, recent }
    }

    /// The fleet's top critical lock, if any lock reaches a critical
    /// path anywhere.
    pub fn top_critical_lock(&self) -> Option<&FleetLockStat> {
        self.locks.first().filter(|l| l.sessions_critical > 0)
    }

    /// Render the report as an aligned text table.
    pub fn render_text(&self, top: Option<usize>) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet aggregate: {} session(s), {} degraded, {} app(s)",
            self.sessions,
            self.degraded_sessions,
            self.apps.len()
        );
        for (app, count) in &self.apps {
            let _ = writeln!(out, "  app {app}: {count} session(s)");
        }
        let headers =
            ["Lock", "Critical in", "Sessions", "Mean CP Share %", "Total CP Time", "Invo# on CP"];
        let rows: Vec<Vec<String>> = self
            .locks
            .iter()
            .take(top.unwrap_or(usize::MAX))
            .map(|l| {
                vec![
                    l.name.clone(),
                    format!("{:.1}%", l.critical_session_frac * 100.0),
                    format!("{}/{}", l.sessions_seen, self.sessions),
                    format!("{:.2}%", l.mean_cp_share * 100.0),
                    l.total_cp_time.to_string(),
                    l.invocations_on_cp.to_string(),
                ]
            })
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(line, "{:<w$}", cell, w = widths[i]);
                } else {
                    let _ = write!(line, "  {:>w$}", cell, w = widths[i]);
                }
            }
            line
        };
        let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(out, "{}", fmt_row(&header_cells));
        let total_width = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total_width));
        for row in &rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        if rows.is_empty() {
            let _ = writeln!(out, "(no locks in any session)");
        }
        if let Some(topl) = self.top_critical_lock() {
            let _ = writeln!(
                out,
                "\ntop fleet lock: {} — critical in {:.1}% of sessions, mean CP share {:.2}%",
                topl.name,
                topl.critical_session_frac * 100.0,
                topl.mean_cp_share * 100.0,
            );
        }
        if let Some(recent) = &self.recent {
            let _ = writeln!(out, "\nrecent window: {} windowed session(s)", recent.sessions);
            for l in recent.locks.iter().take(top.unwrap_or(usize::MAX)) {
                let _ = writeln!(
                    out,
                    "  {}: critical in {}/{} window(s), mean CP share {:.2}%",
                    l.name,
                    l.sessions_critical,
                    recent.sessions,
                    l.mean_cp_share * 100.0,
                );
            }
        }
        out
    }

    /// Serialize the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet report serialization cannot fail")
    }

    /// Parse a JSON fleet report.
    pub fn parse_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_trace::rollup::{cp_share_ppm, LockDigest, SessionDigest};

    fn digest(key: &str, app: &str, locks: &[(&str, u64, u64)]) -> SessionDigest {
        let cp_length = 100;
        let mut locks: Vec<LockDigest> = locks
            .iter()
            .map(|(name, cp_time, on_cp)| LockDigest {
                name: name.to_string(),
                cp_time: *cp_time,
                cp_share_ppm: cp_share_ppm(*cp_time, cp_length),
                invocations_on_cp: *on_cp,
                contended_on_cp: on_cp / 2,
                total_invocations: on_cp + 3,
                total_wait: cp_time * 2,
                total_hold: cp_time * 3,
            })
            .collect();
        locks.sort_by(|a, b| a.name.cmp(&b.name));
        SessionDigest {
            key: key.into(),
            app: app.into(),
            cp_length,
            makespan: 120,
            degraded: false,
            locks,
            window: None,
        }
    }

    fn sample() -> Rollup {
        let mut r = Rollup::new();
        r.insert(digest("s1", "web", &[("hot", 40, 4), ("cold", 0, 0)]));
        r.insert(digest("s2", "web", &[("hot", 20, 2)]));
        r.insert(digest("s3", "db", &[("cold", 10, 1)]));
        r
    }

    #[test]
    fn fleet_fractions_and_ranking() {
        let rep = FleetReport::from_rollup(&sample());
        assert_eq!(rep.sessions, 3);
        assert_eq!(rep.apps["web"], 2);
        assert_eq!(rep.apps["db"], 1);
        let hot = &rep.locks[0];
        assert_eq!(hot.name, "hot");
        assert_eq!(hot.sessions_seen, 2);
        assert_eq!(hot.sessions_critical, 2);
        assert!((hot.critical_session_frac - 2.0 / 3.0).abs() < 1e-9);
        // mean of 40% and 20% CP share.
        assert!((hot.mean_cp_share - 0.30).abs() < 1e-9);
        let cold = rep.locks.iter().find(|l| l.name == "cold").unwrap();
        assert_eq!(cold.sessions_seen, 2);
        assert_eq!(cold.sessions_critical, 1);
        assert_eq!(rep.top_critical_lock().unwrap().name, "hot");
    }

    #[test]
    fn report_is_merge_order_independent() {
        let r = sample();
        let mut reversed = Rollup::new();
        for d in r.sessions.values().rev() {
            reversed.insert(d.clone());
        }
        let a = FleetReport::from_rollup(&r);
        let b = FleetReport::from_rollup(&reversed);
        assert_eq!(a, b);
        assert_eq!(a.render_text(None), b.render_text(None));
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn render_shapes() {
        let rep = FleetReport::from_rollup(&sample());
        let text = rep.render_text(Some(1));
        assert!(text.contains("fleet aggregate: 3 session(s)"));
        assert!(text.contains("top fleet lock: hot"));
        // --top limits rows: `cold` only appears if unlimited.
        assert!(!text.contains("\ncold"));
        let back = FleetReport::parse_json(&rep.to_json()).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn recent_window_section_aggregates_annotations() {
        use critlock_trace::rollup::WindowDigest;
        let win_lock = |name: &str, cp_time: u64, cp_length: u64| LockDigest {
            name: name.to_string(),
            cp_time,
            cp_share_ppm: cp_share_ppm(cp_time, cp_length),
            invocations_on_cp: (cp_time > 0) as u64,
            contended_on_cp: 0,
            total_invocations: 1,
            total_wait: 0,
            total_hold: cp_time,
        };
        let mut r = Rollup::new();
        let mut d1 = digest("s1", "web", &[("hot", 40, 4)]);
        d1.window = Some(WindowDigest {
            index: 5,
            lo: 50,
            hi: 60,
            cp_length: 10,
            makespan: 10,
            locks: vec![win_lock("hot", 5, 10)],
        });
        let mut d2 = digest("s2", "web", &[("hot", 20, 2)]);
        d2.window = Some(WindowDigest {
            index: 5,
            lo: 50,
            hi: 60,
            cp_length: 10,
            makespan: 10,
            locks: vec![win_lock("hot", 3, 10)],
        });
        // One session without windowing in the mix.
        let d3 = digest("s3", "db", &[("cold", 10, 1)]);
        r.insert(d1);
        r.insert(d2);
        r.insert(d3);
        let rep = FleetReport::from_rollup(&r);
        let recent = rep.recent.as_ref().expect("window annotations present");
        assert_eq!(recent.sessions, 2);
        let hot = &recent.locks[0];
        assert_eq!(hot.name, "hot");
        assert_eq!(hot.sessions_seen, 2);
        assert_eq!(hot.sessions_critical, 2);
        // mean of 50% and 30% in-window CP share.
        assert!((hot.mean_cp_share - 0.40).abs() < 1e-6);
        let text = rep.render_text(None);
        assert!(text.contains("recent window: 2 windowed session(s)"));
        assert!(text.contains("hot: critical in 2/2 window(s)"));
        // JSON round-trips, and window-free reports still parse (the
        // `recent` field defaults to None).
        let back = FleetReport::parse_json(&rep.to_json()).unwrap();
        assert_eq!(back, rep);
        let plain = FleetReport::from_rollup(&sample());
        assert!(plain.recent.is_none());
        let mut json = plain.to_json();
        json = json.replace("\"recent\": null,", "");
        assert_eq!(FleetReport::parse_json(&json).unwrap(), plain);
    }

    #[test]
    fn empty_rollup_reports_cleanly() {
        let rep = FleetReport::from_rollup(&Rollup::new());
        assert_eq!(rep.sessions, 0);
        assert!(rep.top_critical_lock().is_none());
        assert!(rep.render_text(None).contains("no locks in any session"));
    }
}

//! End-to-end aggregation invariant: merging N *single-session* rollups
//! (the unit a collector forwards for each session) produces exactly the
//! fleet report you get by analyzing the sessions independently and
//! combining their digests by hand — regardless of merge order, batching
//! or duplicate delivery. This is the acceptance property of the
//! aggregation subsystem: sharding and forwarding topology must be
//! invisible in the final report.

use critlock_aggregate::FleetReport;
use critlock_analysis::{analyze, digest_report};
use critlock_trace::rollup::{Rollup, SessionDigest};
use critlock_trace::{Trace, TraceBuilder};

/// A small family of distinct sessions: different thread counts and
/// critical-section mixes over a shared lock vocabulary, so the fleet
/// report exercises both "critical everywhere" and "critical somewhere"
/// locks.
fn sessions() -> Vec<(String, Trace)> {
    let mut out = Vec::new();
    for (i, (threads, hot_cs, cold_cs)) in
        [(2usize, 8u64, 1u64), (3, 5, 4), (4, 2, 9), (2, 7, 7)].iter().enumerate()
    {
        let mut b = TraceBuilder::new(format!("app-{}", i % 2));
        let hot = b.lock("hot");
        let cold = b.lock("cold");
        let tids: Vec<_> = (0..*threads).map(|t| b.thread(format!("T{t}"), 0)).collect();
        for (t, &tid) in tids.iter().enumerate() {
            let t = t as u64;
            b.on(tid).work(t + 1);
            // Cursor is now at t + 1; block on `hot` until t + 1 + wait.
            b.on(tid).cs_blocked(hot, t + 1 + (t % 3), *hot_cs);
            b.on(tid).work(2).cs(cold, *cold_cs).work(1);
            b.on(tid).exit();
        }
        out.push((format!("session-{i}"), b.build().unwrap()));
    }
    out
}

fn digests() -> Vec<SessionDigest> {
    sessions().iter().map(|(key, trace)| digest_report(key, &analyze(trace))).collect()
}

/// The hand-built reference: every digest inserted into one rollup
/// directly, no wire format, no merging of partial rollups.
fn reference_report() -> FleetReport {
    let mut rollup = Rollup::new();
    for digest in digests() {
        rollup.insert(digest);
    }
    FleetReport::from_rollup(&rollup)
}

/// One single-session rollup per session, each pushed through the CLAG
/// wire format — what a collector actually forwards.
fn single_session_rollups() -> Vec<Rollup> {
    digests()
        .into_iter()
        .map(|digest| {
            let mut rollup = Rollup::new();
            rollup.insert(digest);
            Rollup::from_bytes(&rollup.to_bytes()).expect("wire roundtrip")
        })
        .collect()
}

#[test]
fn aggregating_single_session_rollups_equals_hand_merged_analysis() {
    let reference = reference_report();
    let mut merged = Rollup::new();
    for part in single_session_rollups() {
        merged.merge(&part);
    }
    let report = FleetReport::from_rollup(&merged);
    assert_eq!(report, reference);
    assert_eq!(report.render_text(None), reference.render_text(None));
    assert_eq!(report.to_json(), reference.to_json());
}

#[test]
fn aggregation_is_order_and_batching_invariant() {
    let reference = reference_report();
    let parts = single_session_rollups();

    // Reverse order.
    let mut reversed = Rollup::new();
    for part in parts.iter().rev() {
        reversed.merge(part);
    }
    assert_eq!(FleetReport::from_rollup(&reversed), reference);

    // Two-level tree: two "child collectors" each merge half, then a
    // "parent" merges the children — with one session delivered by both
    // children (a duplicate path), which must not double-count.
    let mut child_a = Rollup::new();
    let mut child_b = Rollup::new();
    for (i, part) in parts.iter().enumerate() {
        if i % 2 == 0 {
            child_a.merge(part);
        }
        if i % 2 == 1 || i == 0 {
            child_b.merge(part);
        }
    }
    let mut parent = Rollup::new();
    parent.merge(&child_a);
    parent.merge(&child_b);
    assert_eq!(parent.len(), parts.len(), "duplicate delivery must not add sessions");
    assert_eq!(FleetReport::from_rollup(&parent), reference);
    // Byte-level determinism, not just structural equality.
    let mut flat = Rollup::new();
    for part in &parts {
        flat.merge(part);
    }
    assert_eq!(parent.to_bytes(), flat.to_bytes());
}

#[test]
fn fleet_report_fractions_reflect_per_session_criticality() {
    let report = reference_report();
    let digests = digests();
    assert_eq!(report.sessions, digests.len() as u64);
    for name in ["hot", "cold"] {
        let stat = report.locks.iter().find(|l| l.name == name).expect("lock in fleet report");
        let seen = digests.iter().filter(|d| d.locks.iter().any(|l| l.name == name)).count();
        let critical = digests
            .iter()
            .filter(|d| d.locks.iter().any(|l| l.name == name && l.invocations_on_cp > 0))
            .count();
        assert_eq!(stat.sessions_seen, seen as u64, "{name}: sessions seen");
        assert_eq!(stat.sessions_critical, critical as u64, "{name}: sessions critical");
        let frac = critical as f64 / digests.len() as f64;
        assert!((stat.critical_session_frac - frac).abs() < 1e-9, "{name}: critical fraction");
    }
}

//! Flat arena storage for the analysis pipeline's retained structures.
//!
//! [`SegmentedTrace`](crate::segments::SegmentedTrace) used to keep its
//! segments and dependence indices as `Vec<Vec<_>>` — one heap block per
//! thread and per lock, built by per-event `push` calls. At fleet trace
//! sizes that is thousands of small allocations whose headers and slack
//! dominate cache behaviour during the critical-path walk. The two types
//! here replace that layout with arena-style storage:
//!
//! * [`SlabArena`] — many variable-length lists packed into one flat
//!   slab, addressed by contiguous spans (one allocation for the values,
//!   one for the span table);
//! * [`CsrIndex`] — the classic compressed-sparse-row construction
//!   (count → prefix-sum → fill) for values grouped by a dense key, built
//!   through [`CsrBuilder`].
//!
//! Both are self-contained (they own their slab), so holding one imposes
//! no lifetime on the surrounding API, and lookups hand out plain
//! `&[T]` slices into the slab.

/// Variable-length lists packed back-to-back in one flat slab.
#[derive(Debug, Clone, Default)]
pub struct SlabArena<T> {
    values: Vec<T>,
    /// `spans[i]..spans[i + 1]` is list `i`; always `num_lists + 1` long.
    spans: Vec<usize>,
}

impl<T> SlabArena<T> {
    /// Pack `lists` into a slab, preserving list order and contents.
    pub fn from_lists(lists: Vec<Vec<T>>) -> Self {
        let mut spans = Vec::with_capacity(lists.len() + 1);
        spans.push(0);
        let total = lists.iter().map(Vec::len).sum();
        let mut values = Vec::with_capacity(total);
        for list in lists {
            values.extend(list);
            spans.push(values.len());
        }
        SlabArena { values, spans }
    }

    /// An arena of `n` empty lists (degraded-mode placeholder).
    pub fn empty_lists(n: usize) -> Self {
        SlabArena { values: Vec::new(), spans: vec![0; n + 1] }
    }

    /// Number of lists.
    pub fn num_lists(&self) -> usize {
        self.spans.len() - 1
    }

    /// Total values across all lists.
    pub fn total(&self) -> usize {
        self.values.len()
    }

    /// List `i` as a slice; empty for out-of-range `i`.
    pub fn list(&self, i: usize) -> &[T] {
        match self.spans.get(i).zip(self.spans.get(i + 1)) {
            Some((&lo, &hi)) => &self.values[lo..hi],
            None => &[],
        }
    }

    /// Iterate the lists in order.
    pub fn iter_lists(&self) -> impl Iterator<Item = &[T]> + '_ {
        (0..self.num_lists()).map(move |i| self.list(i))
    }
}

/// Values grouped by a dense row key, in compressed-sparse-row layout.
#[derive(Debug, Clone)]
pub struct CsrIndex<T> {
    values: Vec<T>,
    /// `offsets[r]..offsets[r + 1]` is row `r`; always `num_rows + 1` long.
    offsets: Vec<usize>,
}

impl<T> Default for CsrIndex<T> {
    fn default() -> Self {
        CsrIndex { values: Vec::new(), offsets: Vec::new() }
    }
}

impl<T> CsrIndex<T> {
    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Row `r` as a slice; empty for out-of-range `r`.
    pub fn row(&self, r: usize) -> &[T] {
        match self.offsets.get(r).zip(self.offsets.get(r + 1)) {
            Some((&lo, &hi)) => &self.values[lo..hi],
            None => &[],
        }
    }

    /// Row `r` as a mutable slice (e.g. to sort it in place after fill).
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        match self.offsets.get(r).zip(self.offsets.get(r + 1)) {
            Some((&lo, &hi)) => &mut self.values[lo..hi],
            None => &mut [],
        }
    }
}

/// Two-phase CSR construction: size the rows up front (`counts`), then
/// [`push`](Self::push) exactly that many values per row in any order;
/// within a row, values land in push order.
#[derive(Debug)]
pub struct CsrBuilder<T> {
    values: Vec<T>,
    offsets: Vec<usize>,
    cursor: Vec<usize>,
}

impl<T: Copy + Default> CsrBuilder<T> {
    /// Start a CSR fill for rows sized by `counts`.
    pub fn new(counts: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &c in counts {
            total += c;
            offsets.push(total);
        }
        let cursor = offsets[..counts.len()].to_vec();
        CsrBuilder { values: vec![T::default(); total], offsets, cursor }
    }

    /// Place `value` in the next slot of `row`.
    ///
    /// # Panics
    /// If `row` is out of range or already received its declared count.
    pub fn push(&mut self, row: usize, value: T) {
        let at = self.cursor[row];
        debug_assert!(at < self.offsets[row + 1], "row {row} overfilled");
        self.values[at] = value;
        self.cursor[row] = at + 1;
    }

    /// Finish the fill.
    ///
    /// Every row must have received exactly its declared count (checked
    /// in debug builds).
    pub fn finish(self) -> CsrIndex<T> {
        debug_assert!(
            self.cursor.iter().zip(&self.offsets[1..]).all(|(c, o)| c == o),
            "CSR rows underfilled"
        );
        CsrIndex { values: self.values, offsets: self.offsets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_preserves_lists() {
        let arena = SlabArena::from_lists(vec![vec![1, 2], vec![], vec![3]]);
        assert_eq!(arena.num_lists(), 3);
        assert_eq!(arena.total(), 3);
        assert_eq!(arena.list(0), &[1, 2]);
        assert_eq!(arena.list(1), &[] as &[i32]);
        assert_eq!(arena.list(2), &[3]);
        assert_eq!(arena.list(7), &[] as &[i32]);
        let flat: Vec<i32> = arena.iter_lists().flatten().copied().collect();
        assert_eq!(flat, vec![1, 2, 3]);
    }

    #[test]
    fn empty_lists_arena() {
        let arena: SlabArena<u8> = SlabArena::empty_lists(4);
        assert_eq!(arena.num_lists(), 4);
        assert_eq!(arena.total(), 0);
        assert!(arena.list(2).is_empty());
    }

    #[test]
    fn csr_groups_by_row() {
        let mut b = CsrBuilder::new(&[2, 0, 1]);
        b.push(2, 30);
        b.push(0, 10);
        b.push(0, 11);
        let mut csr = b.finish();
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.row(0), &[10, 11]);
        assert_eq!(csr.row(1), &[] as &[i32]);
        assert_eq!(csr.row(2), &[30]);
        assert_eq!(csr.row(9), &[] as &[i32]);
        csr.row_mut(0).reverse();
        assert_eq!(csr.row(0), &[11, 10]);
    }

    #[test]
    fn default_csr_is_empty() {
        let csr: CsrIndex<u32> = CsrIndex::default();
        assert_eq!(csr.num_rows(), 0);
        assert!(csr.row(0).is_empty());
    }
}

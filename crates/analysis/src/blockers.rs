//! Who-blocks-whom analysis.
//!
//! For every contended lock invocation the enabling releaser is resolved
//! (the same "thread holding the same lock adjacently before the blocked
//! thread" rule the critical-path walk uses, §IV.B), giving a blocking
//! edge `blocked thread ← holder`. Aggregated, these edges show *which
//! threads serialize which others and through which locks* — the
//! lock-convoy view that complements the critical-path ranking when
//! deciding how to restructure the code.

use crate::segments::SegmentedTrace;
use critlock_trace::{lock_episodes, rw_episodes, ObjId, ThreadId, Trace, Ts};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregated blocking between one pair of threads through one lock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingEdge {
    /// The thread that waited.
    pub blocked: ThreadId,
    /// The thread that held the lock it waited for.
    pub holder: ThreadId,
    /// The lock.
    pub lock: ObjId,
    /// Its name.
    pub lock_name: String,
    /// Number of blocked invocations.
    pub count: u64,
    /// Total time `blocked` spent waiting on these invocations.
    pub wait_time: Ts,
}

/// The blocking structure of an execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockerReport {
    /// Edges sorted by total wait time, descending.
    pub edges: Vec<BlockingEdge>,
    /// Total blocked time across all edges.
    pub total_wait: Ts,
}

impl BlockerReport {
    /// The thread whose critical sections caused the most waiting in
    /// others — the prime suspect for a lock convoy.
    pub fn top_blocker(&self) -> Option<ThreadId> {
        let mut per_holder: HashMap<ThreadId, Ts> = HashMap::new();
        for e in &self.edges {
            *per_holder.entry(e.holder).or_insert(0) += e.wait_time;
        }
        per_holder.into_iter().max_by_key(|&(t, w)| (w, std::cmp::Reverse(t.0))).map(|(t, _)| t)
    }

    /// Total wait time attributed to one lock.
    pub fn wait_on_lock(&self, name: &str) -> Ts {
        self.edges.iter().filter(|e| e.lock_name == name).map(|e| e.wait_time).sum()
    }

    /// Render as an aligned text table (top `n` edges).
    pub fn render_text(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "blocking edges (blocked <- holder via lock), top {n}:");
        let _ = writeln!(
            out,
            "{:<8} {:<8} {:<24} {:>8} {:>12}",
            "blocked", "holder", "lock", "count", "wait"
        );
        for e in self.edges.iter().take(n) {
            let _ = writeln!(
                out,
                "{:<8} {:<8} {:<24} {:>8} {:>12}",
                e.blocked.to_string(),
                e.holder.to_string(),
                e.lock_name,
                e.count,
                e.wait_time
            );
        }
        if self.edges.is_empty() {
            let _ = writeln!(out, "(no contention recorded)");
        }
        out
    }
}

/// Build the blocking report of a trace.
pub fn blocker_report(trace: &Trace) -> BlockerReport {
    let st = SegmentedTrace::build(trace);
    let mut acc: HashMap<(ThreadId, ThreadId, ObjId), (u64, Ts)> = HashMap::new();

    let mut add = |blocked: ThreadId, lock: ObjId, obtain: Ts, wait: Ts| {
        if let Some((_, holder)) = st.latest_release_before(lock, obtain, blocked) {
            let e = acc.entry((blocked, holder, lock)).or_insert((0, 0));
            e.0 += 1;
            e.1 += wait;
        }
    };

    for ep in lock_episodes(trace) {
        if ep.contended {
            add(ep.tid, ep.lock, ep.obtain, ep.wait_time());
        }
    }
    for ep in rw_episodes(trace) {
        if ep.contended {
            add(ep.tid, ep.lock, ep.obtain, ep.wait_time());
        }
    }

    let mut edges: Vec<BlockingEdge> = acc
        .into_iter()
        .map(|((blocked, holder, lock), (count, wait_time))| BlockingEdge {
            blocked,
            holder,
            lock,
            lock_name: trace.object_name(lock),
            count,
            wait_time,
        })
        .collect();
    edges.sort_by(|a, b| {
        b.wait_time
            .cmp(&a.wait_time)
            .then_with(|| (a.blocked, a.holder, a.lock).cmp(&(b.blocked, b.holder, b.lock)))
    });
    let total_wait = edges.iter().map(|e| e.wait_time).sum();
    BlockerReport { edges, total_wait }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_trace::TraceBuilder;

    #[test]
    fn resolves_blocking_pairs() {
        let mut b = TraceBuilder::new("blockers");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        let t2 = b.thread("T2", 0);
        b.on(t0).cs(l, 10).exit_at(30);
        b.on(t1).work(1).cs_blocked(l, 10, 5).exit_at(30); // waited 9 on T0
        b.on(t2).work(2).cs_blocked(l, 15, 5).exit_at(30); // waited 13 on T1
        let t = b.build().unwrap();
        let rep = blocker_report(&t);
        assert_eq!(rep.edges.len(), 2);
        assert_eq!(rep.total_wait, 9 + 13);
        // Largest wait first: T2 <- T1.
        assert_eq!(rep.edges[0].blocked, critlock_trace::ThreadId(2));
        assert_eq!(rep.edges[0].holder, critlock_trace::ThreadId(1));
        assert_eq!(rep.edges[0].wait_time, 13);
        assert_eq!(rep.edges[1].holder, critlock_trace::ThreadId(0));
        assert_eq!(rep.wait_on_lock("L"), 22);
        assert!(rep.render_text(5).contains("T2"));
    }

    #[test]
    fn top_blocker_is_biggest_wait_causer() {
        let mut b = TraceBuilder::new("top");
        let l1 = b.lock("L1");
        let l2 = b.lock("L2");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        let t2 = b.thread("T2", 0);
        b.on(t0).cs(l1, 20).exit_at(60);
        b.on(t1).cs(l2, 5).work(5).cs_blocked(l1, 20, 5).exit_at(60); // waits 10 on T0
        b.on(t2).work(1).cs_blocked(l2, 5, 3).exit_at(60); // waits 4 on T1
        let t = b.build().unwrap();
        let rep = blocker_report(&t);
        assert_eq!(rep.top_blocker(), Some(critlock_trace::ThreadId(0)));
    }

    #[test]
    fn rw_contention_included() {
        let mut b = TraceBuilder::new("rwb");
        let r = b.rwlock("R");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).rw(r, true, 10).exit_at(20);
        b.on(t1).work(1).rw_blocked(r, false, 10, 2).exit_at(20);
        let t = b.build().unwrap();
        let rep = blocker_report(&t);
        assert_eq!(rep.edges.len(), 1);
        assert_eq!(rep.edges[0].wait_time, 9);
        assert_eq!(rep.edges[0].lock_name, "R");
    }

    #[test]
    fn empty_when_uncontended() {
        let mut b = TraceBuilder::new("quiet");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        b.on(t0).cs(l, 5).exit();
        let t = b.build().unwrap();
        let rep = blocker_report(&t);
        assert!(rep.edges.is_empty());
        assert_eq!(rep.total_wait, 0);
        assert!(rep.top_blocker().is_none());
        assert!(rep.render_text(3).contains("no contention"));
    }
}

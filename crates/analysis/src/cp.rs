//! The backward critical-path walk (the paper's Fig. 2 algorithm).
//!
//! Starting from the last segment of the last-finishing thread, walk
//! backwards. Whenever the current segment started because some other
//! thread *enabled* it — released the lock it was blocked on, arrived last
//! at its barrier, signalled its condition variable, exited so its join
//! could return, or created it — jump to that thread at the enabling
//! instant; otherwise continue with the previous segment of the same
//! thread. Every instant the walk passes through is *on the critical
//! path*; in particular, every critical section the walk traverses is a
//! *hot critical section* and its lock a *critical lock*.
//!
//! The walk produces a list of [`CpSlice`]s — per-thread time intervals
//! whose concatenation (in chronological order) is the critical path.
//!
//! Unlike segment construction and metric accumulation (parallelized in
//! [`crate::segments`] / [`crate::metrics`]), the walk itself is — and
//! must stay — serial: each step's position depends on the previous
//! step's resolved dependence (which thread enabled this segment, found
//! by querying the index at the walk's current instant), so it is a
//! single dependence chain with no independent work to distribute. It is
//! also cheap: one step per traversed segment over pre-built indices,
//! `O(path length)`, while the parallelizable pre-processing is
//! `O(total events)`.

use crate::segments::{SegmentedTrace, StartCause};
use critlock_trace::{ThreadId, Trace, Ts};
use serde::{Deserialize, Serialize};

/// One contiguous piece of the critical path executed by one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpSlice {
    /// The thread executing this piece.
    pub tid: ThreadId,
    /// Start of the interval.
    pub start: Ts,
    /// End of the interval.
    pub end: Ts,
}

impl CpSlice {
    /// Length of the slice.
    pub fn duration(&self) -> Ts {
        self.end.saturating_sub(self.start)
    }
}

/// Result of the critical-path walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Slices in chronological order.
    pub slices: Vec<CpSlice>,
    /// Sum of slice durations.
    pub length: Ts,
    /// The trace's end-to-end completion time, for reference.
    pub makespan: Ts,
    /// Whether the walk reached the very beginning of the execution. A
    /// `false` here means the trace had an unresolvable dependence (e.g. a
    /// condvar wakeup with no recorded signal) and the path is partial.
    pub complete: bool,
}

impl CriticalPath {
    /// Fraction of the makespan covered by the critical path. For
    /// well-formed virtual-time traces this is exactly 1.0.
    pub fn coverage(&self) -> f64 {
        if self.makespan == 0 {
            1.0
        } else {
            self.length as f64 / self.makespan as f64
        }
    }

    /// The slices of one thread, in chronological order.
    pub fn slices_of(&self, tid: ThreadId) -> Vec<CpSlice> {
        self.slices.iter().copied().filter(|s| s.tid == tid).collect()
    }

    /// Check that the slices are non-overlapping and chronologically
    /// ordered, and (for `strict`) that consecutive slices are contiguous
    /// so the path tiles the whole makespan.
    pub fn check_tiling(&self, strict: bool) -> Result<(), String> {
        for w in self.slices.windows(2) {
            if w[0].end > w[1].start {
                return Err(format!("overlapping slices: {:?} then {:?}", w[0], w[1]));
            }
            if strict && w[0].end != w[1].start {
                return Err(format!("gap between slices: {:?} then {:?}", w[0], w[1]));
            }
        }
        if strict && self.length != self.makespan {
            return Err(format!(
                "critical path length {} != makespan {}",
                self.length, self.makespan
            ));
        }
        Ok(())
    }
}

/// Walk the critical path of a trace.
///
/// This is the main entry point of the identification step; combine with
/// [`crate::metrics::analyze`] for the full report.
pub fn critical_path(trace: &Trace) -> CriticalPath {
    let st = SegmentedTrace::build(trace);
    critical_path_segmented(trace, &st)
}

/// Walk the critical path given a pre-built [`SegmentedTrace`].
pub fn critical_path_segmented(trace: &Trace, st: &SegmentedTrace) -> CriticalPath {
    let makespan = trace.makespan();
    let mut slices: Vec<CpSlice> = Vec::new();
    let mut complete = true;

    let Some(last_tid) = trace.last_finisher() else {
        return CriticalPath { slices, length: 0, makespan, complete: true };
    };
    let last_segs = st.thread(last_tid);
    let Some(last_seg) = last_segs.last() else {
        return CriticalPath { slices, length: 0, makespan, complete: true };
    };

    // Current position: thread, segment index, and the time up to which
    // that segment is on the critical path.
    let mut tid = last_tid;
    let mut idx = last_seg.index;
    let mut upto = last_seg.end;

    // Each (thread, segment) can be visited at most once per enabling
    // cause; a generous step bound guards against pathological traces.
    let max_steps = st.num_segments().saturating_mul(4) + 16;
    let mut steps = 0usize;

    loop {
        steps += 1;
        if steps > max_steps {
            complete = false;
            break;
        }
        let seg = st.thread(tid)[idx];
        let slice_start = seg.start.min(upto);
        slices.push(CpSlice { tid, start: slice_start, end: upto });

        // Where does the walk go from the start of this segment?
        enum Next {
            Jump(ThreadId, Ts),
            SameThread,
            Stop { at_start: bool },
        }
        let next = match seg.start_cause {
            StartCause::ThreadStart => match st.creator_of(tid) {
                Some((parent, create_ts)) => Next::Jump(parent, create_ts),
                None => Next::Stop { at_start: seg.start <= st.trace_start },
            },
            StartCause::LockGranted { lock, .. } => {
                match st.latest_release_before(lock, seg.start, tid) {
                    Some((release_ts, releaser)) => Next::Jump(releaser, release_ts),
                    // No matching release: degrade gracefully.
                    None => Next::SameThread,
                }
            }
            StartCause::BarrierDeparted { barrier, epoch, .. } => {
                match st.last_arriver(barrier, epoch) {
                    Some((arrive_ts, arriver)) if arriver != tid => Next::Jump(arriver, arrive_ts),
                    _ => Next::SameThread,
                }
            }
            StartCause::CondWoken { cv, signal_seq, .. } => {
                match st.matching_signal(cv, signal_seq, seg.start, tid) {
                    Some((signal_ts, signaler)) => Next::Jump(signaler, signal_ts),
                    None => {
                        // Lost signal edge: the path is broken here.
                        complete = false;
                        Next::Stop { at_start: false }
                    }
                }
            }
            StartCause::JoinReturned { child, begin } => match st.exit_ts(child) {
                Some(exit_ts) if exit_ts > begin => Next::Jump(child, exit_ts),
                _ => Next::SameThread,
            },
        };

        match next {
            Next::Jump(target, at) => match st.segment_at(target, at) {
                Some(tseg) => {
                    tid = target;
                    idx = tseg.index;
                    upto = at;
                }
                None => {
                    complete = false;
                    break;
                }
            },
            Next::SameThread => {
                if idx == 0 {
                    // First segment, no enabling edge recorded: the walk
                    // ends at this thread's beginning.
                    complete = complete && seg.start <= st.trace_start;
                    break;
                }
                idx -= 1;
                upto = st.thread(tid)[idx].end;
            }
            Next::Stop { at_start } => {
                complete = complete && at_start;
                break;
            }
        }
    }

    slices.reverse();
    // Merge zero-length and adjacent same-thread slices for cleanliness.
    let merged = merge_slices(slices);
    let length = merged.iter().map(CpSlice::duration).sum();
    CriticalPath { slices: merged, length, makespan, complete }
}

/// Merge adjacent slices of the same thread and drop empty ones.
fn merge_slices(slices: Vec<CpSlice>) -> Vec<CpSlice> {
    let mut out: Vec<CpSlice> = Vec::with_capacity(slices.len());
    for s in slices {
        if let Some(last) = out.last_mut() {
            if last.tid == s.tid && last.end == s.start {
                last.end = s.end;
                continue;
            }
        }
        if s.duration() == 0 {
            // Keep a zero-length slice only if it would otherwise break
            // chronology bookkeeping; they carry no time, drop them.
            continue;
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_trace::TraceBuilder;

    /// Two threads contending on one lock; the CP is T0's CS followed by
    /// T1's CS and tail.
    #[test]
    fn simple_lock_chain() {
        let mut b = TraceBuilder::new("chain");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 4).exit_at(5);
        b.on(t1).work(1).cs_blocked(l, 4, 2).work(3).exit(); // exits at 9
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        assert!(cp.complete);
        assert_eq!(cp.makespan, 9);
        assert_eq!(cp.length, 9);
        cp.check_tiling(true).unwrap();
        // CP: T0 [0,4] then T1 [4,9].
        assert_eq!(cp.slices.len(), 2);
        assert_eq!(cp.slices[0], CpSlice { tid: ThreadId(0), start: 0, end: 4 });
        assert_eq!(cp.slices[1], CpSlice { tid: ThreadId(1), start: 4, end: 9 });
    }

    /// A contended lock whose waiter finishes early is NOT on the critical
    /// path: the paper's key insight.
    #[test]
    fn off_path_contention_ignored() {
        let mut b = TraceBuilder::new("offpath");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        // T0 holds L [0,6]; T1 blocks on L at 1, gets it at 6, holds 1,
        // exits at 7. T0 keeps computing until 20 and finishes last.
        b.on(t0).cs(l, 6).work(14).exit(); // exit 20
        b.on(t1).work(1).cs_blocked(l, 6, 1).exit(); // exit 7
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        assert!(cp.complete);
        assert_eq!(cp.length, 20);
        cp.check_tiling(true).unwrap();
        // CP never leaves T0.
        assert!(cp.slices.iter().all(|s| s.tid == ThreadId(0)));
    }

    #[test]
    fn barrier_jump_to_last_arriver() {
        let mut b = TraceBuilder::new("barrier");
        let bar = b.barrier("B");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        // T1 arrives last at 7; both depart at 7; T0 then runs 5, T1 runs 1.
        b.on(t0).work(3).barrier(bar, 0, 7).work(5).exit(); // exit 12
        b.on(t1).work(7).barrier(bar, 0, 7).work(1).exit(); // exit 8
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        assert!(cp.complete);
        assert_eq!(cp.length, 12);
        cp.check_tiling(true).unwrap();
        // CP: T1 [0,7] (last arriver), then T0 [7,12].
        assert_eq!(cp.slices[0], CpSlice { tid: ThreadId(1), start: 0, end: 7 });
        assert_eq!(cp.slices[1], CpSlice { tid: ThreadId(0), start: 7, end: 12 });
    }

    #[test]
    fn condvar_jump_to_signaler() {
        let mut b = TraceBuilder::new("cv");
        let cv = b.condvar("CV");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).work(6).cond_signal(cv, 1).exit_at(7);
        b.on(t1).work(1).cond_wait(cv, 6, 1).work(4).exit(); // exit 10
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        assert!(cp.complete);
        assert_eq!(cp.length, 10);
        cp.check_tiling(true).unwrap();
        assert_eq!(cp.slices[0], CpSlice { tid: ThreadId(0), start: 0, end: 6 });
        assert_eq!(cp.slices[1], CpSlice { tid: ThreadId(1), start: 6, end: 10 });
    }

    #[test]
    fn join_jump_to_child_exit() {
        let mut b = TraceBuilder::new("join");
        let main = b.thread("main", 0);
        let w = b.thread("w", 1);
        b.on(w).work(9).exit(); // exit 10
        b.on(main).work(1).create(w).work(2).join(w, 10).work(1).exit(); // exit 11
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        assert!(cp.complete);
        assert_eq!(cp.length, 11);
        cp.check_tiling(true).unwrap();
        // CP: main [0,1] (creator), w [1,10], main [10,11].
        assert_eq!(cp.slices.len(), 3);
        assert_eq!(cp.slices[0], CpSlice { tid: ThreadId(0), start: 0, end: 1 });
        assert_eq!(cp.slices[1], CpSlice { tid: ThreadId(1), start: 1, end: 10 });
        assert_eq!(cp.slices[2], CpSlice { tid: ThreadId(0), start: 10, end: 11 });
    }

    #[test]
    fn join_that_did_not_block_stays_on_parent() {
        let mut b = TraceBuilder::new("join-noblock");
        let main = b.thread("main", 0);
        let w = b.thread("w", 1);
        b.on(w).work(1).exit(); // exit 2
        b.on(main).work(1).create(w).work(5).join(w, 6).work(1).exit(); // exit 7
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        assert!(cp.complete);
        assert_eq!(cp.length, 7);
        assert!(cp.slices.iter().all(|s| s.tid == ThreadId(0)));
    }

    #[test]
    fn empty_trace() {
        let t = critlock_trace::Trace::default();
        let cp = critical_path(&t);
        assert!(cp.complete);
        assert_eq!(cp.length, 0);
        assert!(cp.slices.is_empty());
    }

    #[test]
    fn single_thread_whole_run_is_cp() {
        let mut b = TraceBuilder::new("single");
        let t0 = b.thread("T0", 0);
        b.on(t0).work(42).exit();
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        assert!(cp.complete);
        assert_eq!(cp.length, 42);
        assert_eq!(cp.coverage(), 1.0);
    }

    #[test]
    fn lost_signal_yields_partial_path() {
        let mut b = TraceBuilder::new("lost");
        let cv = b.condvar("CV");
        let t0 = b.thread("T0", 0);
        // A wait that nobody signals in the trace.
        b.on(t0).work(1).cond_wait_unmatched(cv, 5).work(2).exit();
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        assert!(!cp.complete);
        assert!(cp.length < cp.makespan);
    }

    /// Regression (found by proptest): threads whose rounds are empty
    /// produce zero-length segments whose boundaries coincide with barrier
    /// episodes; the walk used to jump into a *later* same-instant segment
    /// and cycle, truncating the path to zero.
    #[test]
    fn zero_length_segment_ties_at_barriers() {
        let mut b = critlock_trace::TraceBuilder::new("tie");
        let bar = b.barrier("B");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        // T0 computes 72 then crosses two back-to-back barriers; T1 does
        // nothing but cross them — all its segments are zero-length and
        // sit exactly at t=72.
        b.on(t0).work(72).barrier(bar, 0, 72).barrier(bar, 1, 72).exit_at(72);
        b.on(t1).barrier(bar, 0, 72).barrier(bar, 1, 72).exit_at(72);
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        assert!(cp.complete);
        assert_eq!(cp.length, 72);
        cp.check_tiling(true).unwrap();
    }

    /// A quarantined thread (emptied by salvage) must not break the walk:
    /// the remaining threads still produce a complete path over their own
    /// dependence chain.
    #[test]
    fn quarantined_thread_is_tolerated() {
        let mut b = TraceBuilder::new("quarantine");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        let t2 = b.thread("T2", 0);
        b.on(t0).cs(l, 4).exit_at(5);
        b.on(t1).work(1).cs_blocked(l, 4, 2).work(3).exit(); // exits at 9
        b.on(t2).work(2).exit();
        let mut t = b.build().unwrap();
        // Simulate salvage quarantining T2: its stream is emptied but the
        // thread slot is preserved so indices stay valid.
        t.threads[2].events.clear();
        let cp = critical_path(&t);
        assert_eq!(cp.makespan, 9);
        assert_eq!(cp.length, 9);
        cp.check_tiling(false).unwrap();
        assert!(cp.slices.iter().all(|s| s.tid != ThreadId(2)));
    }

    /// A writer blocked by two readers: the walk jumps through the reader
    /// that released last, and the rw critical sections land on the path.
    #[test]
    fn rwlock_writer_waits_for_last_reader() {
        let mut b = critlock_trace::TraceBuilder::new("rw-cp");
        let l = b.rwlock("R");
        let r0 = b.thread("r0", 0);
        let r1 = b.thread("r1", 0);
        let w = b.thread("w", 0);
        b.on(r0).rw(l, false, 6).exit_at(7);
        b.on(r1).rw(l, false, 10).exit_at(11);
        b.on(w).work(1).rw_blocked(l, true, 10, 5).work(2).exit(); // exit 17
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        assert!(cp.complete);
        assert_eq!(cp.length, 17);
        cp.check_tiling(true).unwrap();
        // CP: r1 [0,10] (the longest reader), then the writer [10,17].
        assert_eq!(cp.slices[0], CpSlice { tid: ThreadId(1), start: 0, end: 10 });
        assert_eq!(cp.slices[1], CpSlice { tid: ThreadId(2), start: 10, end: 17 });

        let rep = crate::metrics::analyze_with(&t, &cp);
        let lr = rep.lock_by_name("R").unwrap();
        // r1's read hold (10) and the writer's hold (5) are on the path;
        // r0's read hold is overlapped by r1's.
        assert_eq!(lr.cp_time, 15);
        assert_eq!(lr.invocations_on_cp, 2);
        assert_eq!(lr.contended_on_cp, 1);
        assert_eq!(lr.total_invocations, 3);
    }

    /// The lock-handoff chain from the micro-benchmark (Fig. 5–7), scaled
    /// down: 4 threads, CS1 of size 2 under L1 then CS2 of size 25 under
    /// L2 — wait, sizes 20 and 25 to mirror the 2e9/2.5e9 iteration
    /// counts. The CP must contain CS1 once and CS2 four times.
    #[test]
    fn micro_shape_cp() {
        let (a, b_) = (20u64, 25u64);
        let mut b = TraceBuilder::new("micro");
        let l1 = b.lock("L1");
        let l2 = b.lock("L2");
        let t: Vec<_> = (0..4).map(|i| b.thread(format!("T{i}"), 0)).collect();

        // FIFO handoff: thread i obtains L1 at i*a, holds a; then L2.
        // L2 obtain times: T0 at a; Ti at max(i*a + a, a + i*b) = a + i*b
        // since b > a.
        for (i, &ti) in t.iter().enumerate() {
            let i = i as u64;
            let mut c = b.on(ti);
            if i == 0 {
                c.cs(l1, a);
            } else {
                c.cs_blocked(l1, i * a, a);
            }
            let l2_obtain = a + i * b_;
            let now = (i + 1) * a;
            if l2_obtain > now {
                c.cs_blocked(l2, l2_obtain, b_);
            } else {
                c.cs(l2, b_);
            }
            c.exit();
        }
        let tr = b.build().unwrap();
        assert_eq!(tr.makespan(), a + 4 * b_);
        let cp = critical_path(&tr);
        assert!(cp.complete);
        cp.check_tiling(true).unwrap();
        assert_eq!(cp.length, a + 4 * b_);
        // First slice is T0's CS1, everything after is the CS2 chain.
        assert_eq!(cp.slices[0].tid, ThreadId(0));
        assert_eq!(cp.slices[0].duration(), a + b_); // T0: CS1 + CS2 contiguous
    }
}

//! Per-session ranking extraction: compress an [`AnalysisReport`] into
//! the mergeable [`SessionDigest`] accumulator that cross-session
//! aggregation (`critlock aggregate`, collector rollup forwarding) is
//! built on.
//!
//! Only integer totals cross the boundary — every floating-point column
//! of the report is either recomputable from the totals or deliberately
//! dropped, so merging digests from thousands of sessions stays exact
//! and order-independent. The per-session CP share is fixed to
//! parts-per-million *here*, while the session's own `cp_length` is at
//! hand; fleet means are then integer sums of those shares.

use crate::metrics::AnalysisReport;
use critlock_trace::rollup::{cp_share_ppm, LockDigest, SessionDigest, WindowDigest};
use critlock_trace::Ts;

/// Extract the mergeable digest of one session's analysis. `key` must be
/// unique across every session that can ever meet in one aggregation
/// (resume token, `collector/anon-N`, trace file path): it is the dedup
/// identity under rollup merge.
pub fn digest_report(key: &str, report: &AnalysisReport) -> SessionDigest {
    let mut locks: Vec<LockDigest> = report
        .locks
        .iter()
        .map(|l| LockDigest {
            name: l.name.clone(),
            cp_time: l.cp_time,
            cp_share_ppm: cp_share_ppm(l.cp_time, report.cp_length),
            invocations_on_cp: l.invocations_on_cp,
            contended_on_cp: l.contended_on_cp,
            total_invocations: l.total_invocations,
            total_wait: l.total_wait,
            total_hold: l.total_hold,
        })
        .collect();
    // The report is ranked by CP time; the digest is keyed by name so
    // encoded digests are canonical regardless of ranking ties.
    locks.sort_by(|a, b| a.name.cmp(&b.name));
    SessionDigest {
        key: key.to_string(),
        app: report.app.clone(),
        cp_length: report.cp_length,
        makespan: report.makespan,
        degraded: report.degraded,
        locks,
        window: None,
    }
}

/// Extract the digest of one closed sliding window `[lo, hi]` from the
/// analysis of the clipped trace. Same compression as [`digest_report`]
/// (integer totals, name-sorted locks), keyed by window ordinal instead
/// of session identity — windows are immutable once closed, so their
/// digests never need the freshness order.
pub fn digest_window(index: u64, lo: Ts, hi: Ts, report: &AnalysisReport) -> WindowDigest {
    let mut locks: Vec<LockDigest> = report
        .locks
        .iter()
        .map(|l| LockDigest {
            name: l.name.clone(),
            cp_time: l.cp_time,
            cp_share_ppm: cp_share_ppm(l.cp_time, report.cp_length),
            invocations_on_cp: l.invocations_on_cp,
            contended_on_cp: l.contended_on_cp,
            total_invocations: l.total_invocations,
            total_wait: l.total_wait,
            total_hold: l.total_hold,
        })
        .collect();
    locks.sort_by(|a, b| a.name.cmp(&b.name));
    WindowDigest { index, lo, hi, cp_length: report.cp_length, makespan: report.makespan, locks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::analyze;
    use critlock_trace::TraceBuilder;

    fn report() -> AnalysisReport {
        let mut b = TraceBuilder::new("digest");
        let l1 = b.lock("hot");
        let l2 = b.lock("cold");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l1, 4).cs(l2, 1).exit_at(10);
        b.on(t1).work(1).cs_blocked(l1, 4, 3).work(4).exit();
        analyze(&b.build().unwrap())
    }

    #[test]
    fn digest_preserves_totals_and_sorts_by_name() {
        let rep = report();
        let d = digest_report("session-1", &rep);
        assert_eq!(d.key, "session-1");
        assert_eq!(d.app, rep.app);
        assert_eq!(d.cp_length, rep.cp_length);
        assert_eq!(d.makespan, rep.makespan);
        let names: Vec<&str> = d.locks.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["cold", "hot"], "digest locks must be name-sorted");
        let hot = d.locks.iter().find(|l| l.name == "hot").unwrap();
        let hot_rep = rep.lock_by_name("hot").unwrap();
        assert_eq!(hot.cp_time, hot_rep.cp_time);
        assert_eq!(hot.invocations_on_cp, hot_rep.invocations_on_cp);
        assert_eq!(hot.total_invocations, hot_rep.total_invocations);
        // Fixed-point share agrees with the float column to ppm accuracy.
        let expected = (hot_rep.cp_time_frac * 1_000_000.0).round() as i64;
        assert!((hot.cp_share_ppm as i64 - expected).abs() <= 1);
    }

    #[test]
    fn digest_of_empty_report_is_well_formed() {
        let rep = analyze(&critlock_trace::Trace::default());
        let d = digest_report("empty", &rep);
        assert!(d.locks.is_empty());
        assert_eq!(d.cp_length, 0);
    }
}

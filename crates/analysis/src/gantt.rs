//! ASCII Gantt rendering of an execution and its critical path — the
//! textual equivalent of the paper's Figs. 1 and 7.
//!
//! Each thread gets two rows: an *activity* row (`-` running outside any
//! critical section, a per-lock letter while holding a lock, `.` blocked /
//! not yet started / exited) and a *critical path* row marking with `=`
//! the instants where that thread carries the critical path.

use crate::cp::CriticalPath;
use crate::segments::SegmentedTrace;
use critlock_trace::{lock_episodes, ObjKind, Trace, Ts};
use std::fmt::Write as _;

/// Options for the Gantt renderer.
#[derive(Debug, Clone)]
pub struct GanttOptions {
    /// Number of character columns the timeline is scaled to.
    pub width: usize,
    /// Also render the per-thread critical-path rows.
    pub show_cp: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions { width: 80, show_cp: true }
    }
}

/// Letter assigned to the `i`-th lock (a..z then A..Z, then '#').
fn lock_letter(i: usize) -> char {
    const LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const UPPER: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    if i < 26 {
        LOWER[i] as char
    } else if i < 52 {
        UPPER[i - 26] as char
    } else {
        '#'
    }
}

/// Render the execution as an ASCII Gantt chart.
pub fn render(trace: &Trace, cp: &CriticalPath, opts: &GanttOptions) -> String {
    let width = opts.width.max(10);
    let t0 = trace.start_ts();
    let t1 = trace.end_ts();
    let span = (t1 - t0).max(1);
    let col_of = |ts: Ts| -> usize {
        (((ts - t0) as u128 * width as u128) / span as u128).min(width as u128 - 1) as usize
    };

    let st = SegmentedTrace::build(trace);
    let mut episodes = lock_episodes(trace);
    episodes.extend(critlock_trace::rw_episodes(trace).into_iter().map(|e| {
        critlock_trace::LockEpisode {
            tid: e.tid,
            lock: e.lock,
            acquire: e.acquire,
            obtain: e.obtain,
            release: e.release,
            contended: e.contended,
        }
    }));
    let mut locks = trace.objects_of_kind(ObjKind::Lock);
    locks.extend(trace.objects_of_kind(ObjKind::RwLock));

    let mut out = String::new();
    let _ = writeln!(out, "time {t0}..{t1} ({span} units), 1 col ~ {} units", span / width as Ts);
    for (i, l) in locks.iter().enumerate() {
        let _ = writeln!(out, "  {} = {}", lock_letter(i), trace.object_name(*l));
    }

    let name_w = trace
        .threads
        .iter()
        .map(|s| s.name.as_deref().unwrap_or("").len().max(s.tid.to_string().len()))
        .max()
        .unwrap_or(2)
        .max(2);

    for stream in &trace.threads {
        let tid = stream.tid;
        let mut row = vec!['.'; width];

        // Running intervals.
        for seg in st.thread(tid) {
            if seg.duration() == 0 {
                continue;
            }
            let (a, b) = (col_of(seg.start), col_of(seg.end.saturating_sub(1)));
            for c in row.iter_mut().take(b + 1).skip(a) {
                *c = '-';
            }
        }
        // Critical sections overlay; later (inner) episodes win.
        for ep in episodes.iter().filter(|e| e.tid == tid) {
            if ep.hold_time() == 0 {
                continue;
            }
            let letter = locks.iter().position(|l| *l == ep.lock).map(lock_letter).unwrap_or('?');
            let (a, b) = (col_of(ep.obtain), col_of(ep.release.saturating_sub(1)));
            for c in row.iter_mut().take(b + 1).skip(a) {
                *c = letter;
            }
        }

        let name = stream.name.clone().unwrap_or_else(|| tid.to_string());
        let _ = writeln!(out, "{name:>name_w$} |{}|", row.iter().collect::<String>());

        if opts.show_cp {
            let mut cp_row = vec![' '; width];
            for s in cp.slices.iter().filter(|s| s.tid == tid) {
                if s.duration() == 0 {
                    continue;
                }
                let (a, b) = (col_of(s.start), col_of(s.end.saturating_sub(1)));
                for c in cp_row.iter_mut().take(b + 1).skip(a) {
                    *c = '=';
                }
            }
            let _ = writeln!(out, "{:>name_w$} |{}|", "cp", cp_row.iter().collect::<String>());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::critical_path;
    use critlock_trace::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("gantt");
        let l1 = b.lock("L1");
        let l2 = b.lock("L2");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l1, 10).cs(l2, 20).exit_at(40);
        b.on(t1).work(2).cs_blocked(l1, 10, 10).work(25).exit(); // exit 45
        b.build().unwrap()
    }

    #[test]
    fn render_has_all_thread_rows() {
        let t = sample();
        let cp = critical_path(&t);
        let s = render(&t, &cp, &GanttOptions::default());
        assert!(s.contains("T0 |"));
        assert!(s.contains("T1 |"));
        assert!(s.contains("cp |"));
        assert!(s.contains("a = L1"));
        assert!(s.contains("b = L2"));
    }

    #[test]
    fn activity_letters_present() {
        let t = sample();
        let cp = critical_path(&t);
        let s = render(&t, &cp, &GanttOptions { width: 45, show_cp: true });
        let t0_row = s.lines().find(|l| l.starts_with("T0 ")).unwrap();
        assert!(t0_row.contains('a'));
        assert!(t0_row.contains('b'));
        let t1_row = s.lines().find(|l| l.starts_with("T1 ")).unwrap();
        assert!(t1_row.contains('a'));
        assert!(t1_row.contains('.')); // blocked gap
    }

    #[test]
    fn cp_rows_cover_whole_span() {
        let t = sample();
        let cp = critical_path(&t);
        let s = render(&t, &cp, &GanttOptions { width: 45, show_cp: true });
        // Union of '=' across cp rows should be most of the width (the CP
        // tiles the makespan).
        let mut covered = [false; 45];
        for line in s.lines().filter(|l| l.trim_start().starts_with("cp |")) {
            let inner = line.split('|').nth(1).unwrap();
            for (i, ch) in inner.chars().enumerate() {
                if ch == '=' {
                    covered[i] = true;
                }
            }
        }
        let count = covered.iter().filter(|&&c| c).count();
        assert!(count >= 43, "cp coverage {count}/45");
    }

    #[test]
    fn no_cp_option() {
        let t = sample();
        let cp = critical_path(&t);
        let s = render(&t, &cp, &GanttOptions { width: 40, show_cp: false });
        assert!(!s.contains("cp |"));
    }

    #[test]
    fn lock_letter_ranges() {
        assert_eq!(lock_letter(0), 'a');
        assert_eq!(lock_letter(25), 'z');
        assert_eq!(lock_letter(26), 'A');
        assert_eq!(lock_letter(51), 'Z');
        assert_eq!(lock_letter(52), '#');
    }
}

//! # critlock-analysis
//!
//! The analysis engine for **critical lock analysis** (Chen & Stenström,
//! SC 2012): given a synchronization-event trace, identify the *critical
//! locks* — locks whose critical sections lie on the execution's critical
//! path — and quantify their impact with the paper's two metrics,
//! contention probability and critical-section size along the critical
//! path.
//!
//! Pipeline:
//!
//! 1. [`segments`] splits each thread's event stream into running
//!    intervals and records what enabled each one to start;
//! 2. [`cp`] performs the backward critical-path walk (the paper's Fig. 2
//!    algorithm), producing per-thread critical-path slices;
//! 3. [`metrics`] computes the TYPE 1 (critical-path) and TYPE 2
//!    (classical idleness) statistics per lock;
//! 4. [`report`] renders text/CSV/JSON tables in the layout of the paper's
//!    result figures; [`gantt`] draws the execution (Figs. 1 and 7);
//! 5. [`blockers`] resolves who-blocks-whom edges and [`threads`]
//!    attributes the path to threads; [`whatif`] projects optimization gains and quantifies how the
//!    critical-path ranking disagrees with the classical wait-time
//!    ranking; [`online`] is a forward, single-pass variant suitable for
//!    run-time use (the paper's future-work direction);
//! 6. [`validate`] cross-checks traces and computed paths.
//!
//! ```
//! use critlock_trace::TraceBuilder;
//! use critlock_analysis::{analyze, report::one_line_summary};
//!
//! let mut b = TraceBuilder::new("demo");
//! let l = b.lock("L");
//! let t0 = b.thread("T0", 0);
//! let t1 = b.thread("T1", 0);
//! b.on(t0).cs(l, 4).exit_at(5);
//! b.on(t1).work(1).cs_blocked(l, 4, 2).work(3).exit();
//! let trace = b.build().unwrap();
//!
//! let rep = analyze(&trace);
//! assert_eq!(rep.top_critical_lock().unwrap().name, "L");
//! println!("{}", one_line_summary(&rep));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod blockers;
pub mod cp;
pub mod digest;
pub mod gantt;
pub mod metrics;
pub mod online;
pub mod report;
pub mod segments;
pub mod threads;
pub mod validate;
pub mod whatif;
pub mod window;

pub use arena::{CsrBuilder, CsrIndex, SlabArena};
pub use blockers::{blocker_report, BlockerReport, BlockingEdge};
pub use cp::{critical_path, CpSlice, CriticalPath};
pub use digest::{digest_report, digest_window};
pub use metrics::{analyze, analyze_profiled, analyze_with, AnalysisReport, LockReport};
pub use online::{online_analyze, OnlineReport, OnlineState};
pub use segments::{Segment, SegmentedTrace, StartCause};
pub use threads::{thread_report, ThreadCriticality, ThreadReport};
pub use whatif::{project_shrink, rank_targets, rank_targets_by_wait, ranking_disagreement};
pub use window::{analyze_phase, clip, marker_window, WindowRing};

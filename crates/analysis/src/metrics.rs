//! The two quantitative performance metrics (paper §III.B) plus the
//! classical per-lock statistics the paper contrasts against.
//!
//! * **TYPE 1** (this paper, measured *along the critical path*): the
//!   fraction of critical-path time occupied by a lock's hot critical
//!   sections, the number of its invocations on the critical path and
//!   their contention probability.
//! * **TYPE 2** (previous approaches, per-lock averages over threads):
//!   average wait-time fraction, average invocation count, average
//!   contention probability, average hold-time fraction.
//!
//! The derived "Incr. Times" columns of the paper's Figs. 10/11/13/14 —
//! how many times more often a lock appears on the critical path than an
//! average thread invokes it, and how much larger its critical-path share
//! is than its average hold share — are computed here too.

use crate::cp::{CpSlice, CriticalPath};
use critlock_trace::{
    lock_episodes, rw_episodes, Anomaly, Budget, LockEpisode, ObjId, SalvageReport, ThreadId,
    Trace, Ts,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Combined TYPE 1 + TYPE 2 statistics for one lock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LockReport {
    /// The lock.
    pub lock: ObjId,
    /// Its registered name.
    pub name: String,

    // ---- TYPE 1: along the critical path ----
    /// Total time the lock's hot critical sections occupy on the critical
    /// path ("CP Time").
    pub cp_time: Ts,
    /// `cp_time` as a fraction of the critical-path length ("CP Time %").
    pub cp_time_frac: f64,
    /// Number of invocations whose critical section lies (at least
    /// partially) on the critical path ("Invocation # on CP").
    pub invocations_on_cp: u64,
    /// How many of those were contended.
    pub contended_on_cp: u64,
    /// Contention probability along the critical path
    /// ("Cont. Prob. on CP %").
    pub cont_prob_on_cp: f64,

    // ---- TYPE 2: classical per-lock averages ----
    /// Total number of invocations by all threads.
    pub total_invocations: u64,
    /// Average invocations per thread ("Avg. Invo. #").
    pub avg_invocations_per_thread: f64,
    /// Fraction of all invocations that were contended
    /// ("Avg. Cont. Prob %").
    pub avg_cont_prob: f64,
    /// Average over threads of (time waiting for this lock / thread
    /// lifetime) ("Wait Time %").
    pub avg_wait_frac: f64,
    /// Average over threads of (time holding this lock / thread lifetime)
    /// ("Avg. Hold Time %").
    pub avg_hold_frac: f64,
    /// Total wait time across threads.
    pub total_wait: Ts,
    /// Total hold time across threads.
    pub total_hold: Ts,

    // ---- derived ("Incr. Times" columns) ----
    /// `invocations_on_cp / avg_invocations_per_thread`
    /// ("Incr. Times of Invo. #").
    pub incr_invocations: f64,
    /// `cp_time_frac / avg_hold_frac`
    /// ("Incr. Times of Critical Section Size").
    pub incr_cs_size: f64,
}

/// Whole-trace analysis result: the identification + quantification output
/// of critical lock analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Application name from the trace metadata.
    pub app: String,
    /// Number of threads.
    pub num_threads: usize,
    /// End-to-end completion time.
    pub makespan: Ts,
    /// Critical-path length (equals `makespan` for complete walks over
    /// well-formed traces).
    pub cp_length: Ts,
    /// Whether the backward walk reached the start of the execution.
    pub cp_complete: bool,
    /// `cp_length / makespan`.
    pub coverage: f64,
    /// Per-lock statistics, sorted by `cp_time` descending (the paper's
    /// presentation order).
    pub locks: Vec<LockReport>,
    /// True when a resource budget (events, threads, bytes, deadline)
    /// truncated the analyzed input; absent from JSON when false.
    #[serde(default, skip_serializing_if = "is_false")]
    pub degraded: bool,
    /// What salvage repaired, when the trace needed repairs; absent from
    /// JSON for traces analyzed without loss.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub salvage: Option<SalvageReport>,
    /// Typed cross-thread validation warnings; absent from JSON when
    /// empty.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub anomalies: Vec<Anomaly>,
    /// Per-stage wall-time spans when the analysis ran with
    /// self-profiling (`analyze --self-profile`); absent otherwise. Pure
    /// observability payload — it never affects the analysis results.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub self_profile: Option<critlock_obs::SpanProfile>,
}

/// `skip_serializing_if` predicate for the `degraded` flag.
fn is_false(b: &bool) -> bool {
    !*b
}

impl AnalysisReport {
    /// The lock report with the given name.
    pub fn lock_by_name(&self, name: &str) -> Option<&LockReport> {
        self.locks.iter().find(|l| l.name == name)
    }

    /// The most critical lock (highest CP time), if any lock was used.
    pub fn top_critical_lock(&self) -> Option<&LockReport> {
        self.locks.first().filter(|l| l.cp_time > 0)
    }

    /// Locks that appear on the critical path at all — the paper's
    /// *critical locks*.
    pub fn critical_locks(&self) -> Vec<&LockReport> {
        self.locks.iter().filter(|l| l.invocations_on_cp > 0).collect()
    }

    /// Rank of a lock (1-based) under the TYPE 1 CP-time metric.
    pub fn rank_by_cp_time(&self, name: &str) -> Option<usize> {
        self.locks.iter().position(|l| l.name == name).map(|i| i + 1)
    }

    /// Rank of a lock (1-based) under the classical wait-time metric:
    /// what previous approaches would report.
    pub fn rank_by_wait_time(&self, name: &str) -> Option<usize> {
        let mut by_wait: Vec<&LockReport> = self.locks.iter().collect();
        by_wait.sort_by(|a, b| {
            b.avg_wait_frac.partial_cmp(&a.avg_wait_frac).unwrap_or(std::cmp::Ordering::Equal)
        });
        by_wait.iter().position(|l| l.name == name).map(|i| i + 1)
    }
}

/// Sum of the overlap between `[lo, hi)` and a sorted, non-overlapping
/// slice list.
fn overlap_with_slices(slices: &[CpSlice], lo: Ts, hi: Ts) -> Ts {
    if hi <= lo {
        return 0;
    }
    // First slice that could overlap: last with start < hi; scan backwards
    // from there while end > lo.
    let mut total = 0;
    let begin = slices.partition_point(|s| s.end <= lo);
    for s in &slices[begin..] {
        if s.start >= hi {
            break;
        }
        let a = s.start.max(lo);
        let b = s.end.min(hi);
        if b > a {
            total += b - a;
        }
    }
    total
}

/// Run the full analysis: critical-path walk plus all metrics.
pub fn analyze(trace: &Trace) -> AnalysisReport {
    let cp = crate::cp::critical_path(trace);
    analyze_with(trace, &cp)
}

/// Run the full analysis recording per-stage spans (`segments`,
/// `cp_walk`, `metrics`) on `rec`. The report is bit-identical to
/// [`analyze`] — the recorder only watches the clock; the caller attaches
/// `rec.finish()` to [`AnalysisReport::self_profile`] if desired.
pub fn analyze_profiled(trace: &Trace, rec: &critlock_obs::SpanRecorder) -> AnalysisReport {
    let st = rec.time("segments", || crate::segments::SegmentedTrace::build(trace));
    let cp = rec.time("cp_walk", || crate::cp::critical_path_segmented(trace, &st));
    rec.time("metrics", || analyze_with(trace, &cp))
}

/// Compute all metrics against a pre-computed critical path.
///
/// Reader-writer lock invocations are folded into the same per-lock
/// statistics as plain locks (an rw hold is a critical section; the
/// read/write mode split is available via
/// [`critlock_trace::rw_episodes`]).
pub fn analyze_with(trace: &Trace, cp: &CriticalPath) -> AnalysisReport {
    let mut episodes = lock_episodes(trace);
    episodes.extend(rw_episodes(trace).into_iter().map(|e| LockEpisode {
        tid: e.tid,
        lock: e.lock,
        acquire: e.acquire,
        obtain: e.obtain,
        release: e.release,
        contended: e.contended,
    }));
    analyze_episodes(trace, cp, &episodes)
}

/// Per-lock accumulator. Every field is an integer sum or count, so
/// merging chunk-local accumulators is commutative and associative and
/// the parallel totals are bit-identical to a serial pass; the floating
/// point fractions are derived only after the merge.
#[derive(Default, Clone)]
struct Acc {
    cp_time: Ts,
    invocations_on_cp: u64,
    contended_on_cp: u64,
    total_invocations: u64,
    total_contended: u64,
    total_wait: Ts,
    total_hold: Ts,
    // Per-thread wait/hold for the averaged fractions.
    per_thread_wait: Vec<Ts>,
    per_thread_hold: Vec<Ts>,
}

/// Fold a run of episodes into dense per-lock accumulators (indexed by
/// `ObjId`, which is small and dense).
fn accumulate(
    episodes: &[LockEpisode],
    per_thread_slices: &[Vec<CpSlice>],
    n_threads: usize,
) -> Vec<Option<Acc>> {
    let mut accs: Vec<Option<Acc>> = Vec::new();
    for ep in episodes {
        let i = ep.lock.index();
        if accs.len() <= i {
            accs.resize(i + 1, None);
        }
        let acc = accs[i].get_or_insert_with(|| Acc {
            per_thread_wait: vec![0; n_threads],
            per_thread_hold: vec![0; n_threads],
            ..Default::default()
        });
        acc.total_invocations += 1;
        if ep.contended {
            acc.total_contended += 1;
        }
        acc.total_wait += ep.wait_time();
        acc.total_hold += ep.hold_time();
        acc.per_thread_wait[ep.tid.index()] += ep.wait_time();
        acc.per_thread_hold[ep.tid.index()] += ep.hold_time();

        let slices = &per_thread_slices[ep.tid.index()];
        let ov = overlap_with_slices(slices, ep.obtain, ep.release);
        if ov > 0 {
            acc.cp_time += ov;
            acc.invocations_on_cp += 1;
            if ep.contended {
                acc.contended_on_cp += 1;
            }
        }
    }
    accs
}

fn merge_accs(mut into: Vec<Option<Acc>>, from: Vec<Option<Acc>>) -> Vec<Option<Acc>> {
    if into.len() < from.len() {
        into.resize(from.len(), None);
    }
    for (slot, f) in into.iter_mut().zip(from) {
        let Some(f) = f else { continue };
        match slot {
            Some(acc) => {
                acc.cp_time += f.cp_time;
                acc.invocations_on_cp += f.invocations_on_cp;
                acc.contended_on_cp += f.contended_on_cp;
                acc.total_invocations += f.total_invocations;
                acc.total_contended += f.total_contended;
                acc.total_wait += f.total_wait;
                acc.total_hold += f.total_hold;
                for (a, b) in acc.per_thread_wait.iter_mut().zip(&f.per_thread_wait) {
                    *a += b;
                }
                for (a, b) in acc.per_thread_hold.iter_mut().zip(&f.per_thread_hold) {
                    *a += b;
                }
            }
            None => *slot = Some(f),
        }
    }
    into
}

/// Below this episode count the chunk/merge overhead outweighs the
/// parallel accumulation win.
const PAR_EPISODES_MIN: usize = 4096;

fn analyze_episodes(trace: &Trace, cp: &CriticalPath, episodes: &[LockEpisode]) -> AnalysisReport {
    let n_threads = trace.num_threads();

    // Per-thread CP slices, sorted by start (they already are, globally
    // chronological, and per thread that order is preserved).
    let mut per_thread_slices: Vec<Vec<CpSlice>> = vec![Vec::new(); n_threads];
    for s in &cp.slices {
        per_thread_slices[s.tid.index()].push(*s);
    }

    // Thread lifetimes for the TYPE 2 fractions.
    let thread_durations: Vec<Ts> = trace
        .threads
        .iter()
        .map(|t| {
            let s = t.start_ts().unwrap_or(0);
            let e = t.end_ts().unwrap_or(s);
            e.saturating_sub(s)
        })
        .collect();

    let workers = rayon::current_num_threads();
    let accs: Vec<Option<Acc>> = if workers > 1 && episodes.len() >= PAR_EPISODES_MIN {
        episodes
            .par_chunks(episodes.len().div_ceil(workers))
            .map(|chunk| accumulate(chunk, &per_thread_slices, n_threads))
            .collect::<Vec<_>>()
            .into_iter()
            .fold(Vec::new(), merge_accs)
    } else {
        accumulate(episodes, &per_thread_slices, n_threads)
    };

    // Degenerate-input guards: a zero-length critical path or a
    // zero-lifetime thread would make the fractions below 0/0 or v/0.
    // Each such ratio is reported as an explicit 0.0 and the condition
    // surfaces as a typed anomaly instead of a NaN/Inf or a silently
    // masked denominator.
    let mut anomalies: Vec<Anomaly> = Vec::new();
    if cp.length == 0 && !episodes.is_empty() {
        anomalies.push(Anomaly::ZeroLengthCriticalPath { episodes: episodes.len() as u64 });
    }
    let mut thread_busy: Vec<Ts> = vec![0; n_threads];
    for acc in accs.iter().flatten() {
        for (busy, (&w, &h)) in
            thread_busy.iter_mut().zip(acc.per_thread_wait.iter().zip(&acc.per_thread_hold))
        {
            *busy += w + h;
        }
    }
    for (i, (&busy, &dur)) in thread_busy.iter().zip(&thread_durations).enumerate() {
        if busy > 0 && dur == 0 {
            anomalies.push(Anomaly::ZeroDurationThread { tid: ThreadId(i as u32), busy });
        }
    }

    let mut locks: Vec<LockReport> = accs
        .into_iter()
        .enumerate()
        .filter_map(|(i, acc)| acc.map(|acc| (ObjId(i as u32), acc)))
        .map(|(lock, acc)| {
            let avg_invocations = acc.total_invocations as f64 / n_threads.max(1) as f64;
            let avg_cont_prob = if acc.total_invocations > 0 {
                acc.total_contended as f64 / acc.total_invocations as f64
            } else {
                0.0
            };
            let frac_avg = |per: &[Ts]| -> f64 {
                if n_threads == 0 {
                    return 0.0;
                }
                per.iter()
                    .zip(&thread_durations)
                    .map(|(&v, &d)| if d > 0 { v as f64 / d as f64 } else { 0.0 })
                    .sum::<f64>()
                    / n_threads as f64
            };
            let avg_wait_frac = frac_avg(&acc.per_thread_wait);
            let avg_hold_frac = frac_avg(&acc.per_thread_hold);
            let cp_time_frac =
                if cp.length > 0 { acc.cp_time as f64 / cp.length as f64 } else { 0.0 };
            let cont_prob_on_cp = if acc.invocations_on_cp > 0 {
                acc.contended_on_cp as f64 / acc.invocations_on_cp as f64
            } else {
                0.0
            };
            LockReport {
                lock,
                name: trace.object_name(lock),
                cp_time: acc.cp_time,
                cp_time_frac,
                invocations_on_cp: acc.invocations_on_cp,
                contended_on_cp: acc.contended_on_cp,
                cont_prob_on_cp,
                total_invocations: acc.total_invocations,
                avg_invocations_per_thread: avg_invocations,
                avg_cont_prob,
                avg_wait_frac,
                avg_hold_frac,
                total_wait: acc.total_wait,
                total_hold: acc.total_hold,
                incr_invocations: if avg_invocations > 0.0 {
                    acc.invocations_on_cp as f64 / avg_invocations
                } else {
                    0.0
                },
                incr_cs_size: if avg_hold_frac > 0.0 { cp_time_frac / avg_hold_frac } else { 0.0 },
            }
        })
        .collect();

    // Total order (cp_time desc, name, id) so the report is byte-stable
    // regardless of how the accumulators were produced.
    locks.sort_by(|a, b| {
        b.cp_time
            .cmp(&a.cp_time)
            .then_with(|| a.name.cmp(&b.name))
            .then_with(|| a.lock.0.cmp(&b.lock.0))
    });

    AnalysisReport {
        app: trace.meta.app.clone(),
        num_threads: n_threads,
        makespan: trace.makespan(),
        cp_length: cp.length,
        cp_complete: cp.complete,
        coverage: cp.coverage(),
        locks,
        degraded: false,
        salvage: None,
        anomalies,
        self_profile: None,
    }
}

/// Run the full analysis under a resource [`Budget`].
///
/// An in-budget trace analyzes exactly as [`analyze`] does. Past a
/// budget, the input is tail-truncated deterministically through the
/// salvage pass and the report comes back with `degraded: true` and the
/// [`SalvageReport`] attached — the pipeline never aborts on size.
pub fn analyze_governed(trace: &Trace, budget: &Budget) -> AnalysisReport {
    if budget.is_unlimited() {
        return analyze(trace);
    }
    let salvaged = critlock_trace::salvage::salvage_trace(trace, budget);
    let mut report = analyze(&salvaged.trace);
    report.degraded = salvaged.report.degraded;
    if !salvaged.report.is_clean() {
        report.salvage = Some(salvaged.report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_trace::{ThreadId, TraceBuilder};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn overlap_helper() {
        let slices = vec![
            CpSlice { tid: ThreadId(0), start: 0, end: 10 },
            CpSlice { tid: ThreadId(0), start: 20, end: 30 },
        ];
        assert_eq!(overlap_with_slices(&slices, 5, 25), 10);
        assert_eq!(overlap_with_slices(&slices, 0, 40), 20);
        assert_eq!(overlap_with_slices(&slices, 10, 20), 0);
        assert_eq!(overlap_with_slices(&slices, 12, 12), 0);
        assert_eq!(overlap_with_slices(&slices, 29, 35), 1);
        assert_eq!(overlap_with_slices(&slices, 35, 30), 0);
    }

    /// The two-thread chain: T0's CS [0,4] and T1's CS [4,6] are both on
    /// the CP; T1's wait [1,4] is not CS time.
    #[test]
    fn basic_lock_metrics() {
        let mut b = TraceBuilder::new("basic");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 4).exit_at(5);
        b.on(t1).work(1).cs_blocked(l, 4, 2).work(3).exit(); // exit 9
        let t = b.build().unwrap();
        let rep = analyze(&t);

        assert_eq!(rep.makespan, 9);
        assert_eq!(rep.cp_length, 9);
        assert!(rep.cp_complete);
        assert_eq!(rep.locks.len(), 1);
        let lr = &rep.locks[0];
        assert_eq!(lr.name, "L");
        assert_eq!(lr.cp_time, 6); // 4 + 2
        assert!(close(lr.cp_time_frac, 6.0 / 9.0));
        assert_eq!(lr.invocations_on_cp, 2);
        assert_eq!(lr.contended_on_cp, 1);
        assert!(close(lr.cont_prob_on_cp, 0.5));
        assert_eq!(lr.total_invocations, 2);
        assert!(close(lr.avg_invocations_per_thread, 1.0));
        assert!(close(lr.avg_cont_prob, 0.5));
        // T0 waits 0/5; T1 waits 3/9 → avg (0 + 1/3)/2 = 1/6.
        assert!(close(lr.avg_wait_frac, 1.0 / 6.0));
        // T0 holds 4/5; T1 holds 2/9 → avg (0.8 + 0.2222)/2.
        assert!(close(lr.avg_hold_frac, (4.0 / 5.0 + 2.0 / 9.0) / 2.0));
        assert_eq!(lr.total_wait, 3);
        assert_eq!(lr.total_hold, 6);
        assert!(close(lr.incr_invocations, 2.0));
    }

    /// The paper's core discriminating scenario: a heavily-waited lock off
    /// the critical path must rank below an on-path lock under TYPE 1 while
    /// ranking above it under TYPE 2.
    #[test]
    fn idle_lock_off_path_ranks_low_on_cp() {
        let mut b = TraceBuilder::new("discriminate");
        let hot = b.lock("hot"); // on CP, uncontended
        let idle = b.lock("idle"); // heavily contended, off CP
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        let t2 = b.thread("T2", 0);
        // T0: long CS under `hot`, runs to 100, finishes last.
        b.on(t0).cs(hot, 60).work(40).exit(); // exit 100
                                              // T1 and T2 fight over `idle` but both finish early.
        b.on(t1).cs(idle, 30).exit_at(40);
        b.on(t2).cs_blocked(idle, 30, 10).exit_at(45);
        let t = b.build().unwrap();
        let rep = analyze(&t);

        let hot_r = rep.lock_by_name("hot").unwrap();
        let idle_r = rep.lock_by_name("idle").unwrap();
        // TYPE 1: hot dominates, idle contributes nothing.
        assert_eq!(hot_r.cp_time, 60);
        assert_eq!(idle_r.cp_time, 0);
        assert_eq!(idle_r.invocations_on_cp, 0);
        assert_eq!(rep.rank_by_cp_time("hot"), Some(1));
        // TYPE 2 (previous approaches): idle has all the wait time.
        assert!(idle_r.avg_wait_frac > hot_r.avg_wait_frac);
        assert_eq!(rep.rank_by_wait_time("idle"), Some(1));
        // Critical locks contain hot only.
        let crit: Vec<_> = rep.critical_locks().iter().map(|l| l.name.clone()).collect();
        assert_eq!(crit, vec!["hot".to_string()]);
        assert_eq!(rep.top_critical_lock().unwrap().name, "hot");
    }

    /// An uncontended lock on the critical path still shows up under
    /// TYPE 1 (the paper's L3/stackLock[5] case).
    #[test]
    fn uncontended_on_path_lock_counted() {
        let mut b = TraceBuilder::new("uncontended");
        let l = b.lock("L3");
        let t0 = b.thread("T0", 0);
        b.on(t0).work(10).cs(l, 5).work(10).exit(); // single thread: all on CP
        let t = b.build().unwrap();
        let rep = analyze(&t);
        let lr = rep.lock_by_name("L3").unwrap();
        assert_eq!(lr.cp_time, 5);
        assert!(close(lr.cp_time_frac, 0.2));
        assert_eq!(lr.invocations_on_cp, 1);
        assert!(close(lr.cont_prob_on_cp, 0.0));
        assert!(close(lr.avg_wait_frac, 0.0));
    }

    #[test]
    fn multiple_critical_sections_same_lock_aggregate() {
        // §II: "a single lock can be used to protect several different
        // critical sections ... metrics should be aggregated".
        let mut b = TraceBuilder::new("agg");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        b.on(t0).cs(l, 3).work(2).cs(l, 7).work(1).exit();
        let t = b.build().unwrap();
        let rep = analyze(&t);
        let lr = rep.lock_by_name("L").unwrap();
        assert_eq!(lr.cp_time, 10);
        assert_eq!(lr.invocations_on_cp, 2);
        assert_eq!(lr.total_hold, 10);
    }

    #[test]
    fn empty_trace_report() {
        let t = critlock_trace::Trace::default();
        let rep = analyze(&t);
        assert_eq!(rep.num_threads, 0);
        assert!(rep.locks.is_empty());
        assert!(rep.top_critical_lock().is_none());
        assert!(rep.lock_by_name("x").is_none());
    }

    #[test]
    fn report_serializes() {
        let mut b = TraceBuilder::new("ser");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        b.on(t0).cs(l, 3).exit();
        let t = b.build().unwrap();
        let rep = analyze(&t);
        let json = serde_json::to_string(&rep).unwrap();
        let back: AnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(rep, back);
    }

    /// A trace whose every event shares one timestamp has a zero-length
    /// critical path. All fractions must come back as finite explicit
    /// zeros, flagged by a typed anomaly — not NaN, not a masked
    /// denominator.
    #[test]
    fn zero_length_cp_yields_explicit_zeros_and_anomaly() {
        let mut b = TraceBuilder::new("degenerate");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        b.on(t0).cs(l, 0).exit_at(0);
        let t = b.build().unwrap();
        let rep = analyze(&t);

        assert_eq!(rep.cp_length, 0);
        assert_eq!(rep.makespan, 0);
        let lr = rep.lock_by_name("L").unwrap();
        for frac in [
            lr.cp_time_frac,
            lr.cont_prob_on_cp,
            lr.avg_cont_prob,
            lr.avg_wait_frac,
            lr.avg_hold_frac,
            lr.incr_invocations,
            lr.incr_cs_size,
            rep.coverage,
        ] {
            assert!(frac.is_finite(), "non-finite fraction {frac}");
        }
        assert_eq!(lr.cp_time_frac, 0.0);
        assert_eq!(lr.avg_hold_frac, 0.0);
        assert!(rep
            .anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::ZeroLengthCriticalPath { episodes: 1 })));
    }

    /// A corrupted stream whose last event's timestamp collapses the
    /// thread lifetime to zero while a critical section still spans real
    /// time: the TYPE 2 fractions must be explicit zeros and the thread
    /// flagged, not `hold / 0 = inf`.
    #[test]
    fn zero_duration_thread_yields_explicit_zeros_and_anomaly() {
        let mut b = TraceBuilder::new("degenerate2");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        b.on(t0).cs(l, 5).exit_at(5);
        let mut t = b.build().unwrap();
        // Corrupt the exit timestamp backwards so first == last event ts.
        t.threads[0].events.last_mut().unwrap().ts = 0;
        let rep = analyze(&t);

        let lr = rep.lock_by_name("L").unwrap();
        assert!(lr.avg_wait_frac.is_finite() && lr.avg_hold_frac.is_finite());
        assert_eq!(lr.avg_wait_frac, 0.0);
        assert_eq!(lr.avg_hold_frac, 0.0);
        assert_eq!(lr.total_hold, 5);
        assert!(rep.anomalies.iter().any(
            |a| matches!(a, Anomaly::ZeroDurationThread { tid, busy: 5 } if tid.index() == 0)
        ));
    }

    /// Healthy traces stay bit-identical: the degenerate-input guards
    /// must not add anomalies or change any fraction.
    #[test]
    fn guards_are_inert_on_healthy_traces() {
        let mut b = TraceBuilder::new("healthy");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 4).exit_at(5);
        b.on(t1).work(1).cs_blocked(l, 4, 2).work(3).exit();
        let t = b.build().unwrap();
        let rep = analyze(&t);
        assert!(rep.anomalies.is_empty());
        let json = serde_json::to_string(&rep).unwrap();
        assert!(!json.contains("anomalies"), "empty anomalies must stay out of the JSON");
    }

    /// Observability must be provably inert: the profiled pipeline
    /// produces a report bit-identical to the plain one (the span profile
    /// itself rides outside the comparison, attached by the caller).
    #[test]
    fn profiled_analysis_is_bit_identical() {
        let mut b = TraceBuilder::new("inert");
        let l = b.lock("L");
        let m = b.lock("M");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 4).work(2).cs(m, 3).exit();
        b.on(t1).work(1).cs_blocked(l, 4, 2).work(3).exit();
        let t = b.build().unwrap();

        let plain = analyze(&t);
        let rec = critlock_obs::SpanRecorder::new("analyze");
        let profiled = analyze_profiled(&t, &rec);
        assert_eq!(plain, profiled);
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&profiled).unwrap()
        );

        let profile = rec.finish();
        for stage in ["segments", "cp_walk", "metrics"] {
            assert!(profile.find(stage).is_some(), "missing span {stage}");
        }
    }

    /// Partial CS overlap with the CP is pro-rated.
    #[test]
    fn partial_overlap_prorated() {
        let mut b = TraceBuilder::new("partial");
        let l = b.lock("L");
        let bar = b.barrier("B");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        // T0 holds L across a barrier arrival? Not allowed by protocol to
        // be neat; instead: T0's CS [0,10], T1 is last arriver of a barrier
        // at 6 and the CP rides T1 until 6 then T0 after the barrier...
        // Simpler: CS [2,8] on T0, where T0's CP slice is [6,12] (T1 is
        // last arriver at 6).
        b.on(t0)
            .work(1)
            .barrier(bar, 0, 6)
            .work(1)
            .cs(l, 3) // CS [7,10]
            .work(2)
            .exit(); // exit 12
        b.on(t1).work(6).barrier(bar, 0, 6).exit_at(7);
        let t = b.build().unwrap();
        let rep = analyze(&t);
        let lr = rep.lock_by_name("L").unwrap();
        assert_eq!(lr.cp_time, 3);
        assert_eq!(rep.cp_length, 12);
    }
}

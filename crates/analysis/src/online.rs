//! Online (single forward pass) critical-path lock profiling.
//!
//! The paper's future work (§VII) suggests feeding lock criticality to
//! run-time systems (accelerated critical sections, lock reordering,
//! transactional memory). That requires estimating lock criticality *as
//! the program runs* instead of via the offline backward walk. This
//! module implements the standard forward formulation (in the style of
//! Hollingsworth's online critical-path profiling): every thread carries
//! the length of the longest dependence path that ends at its current
//! instant, plus a per-lock attribution profile of that path; dependence
//! edges (lock hand-offs, barrier releases, signals, create/join) take the
//! maximum and inherit the winning profile.
//!
//! For traces with a single final answer the result matches the offline
//! analysis exactly on lock attribution along the final critical path;
//! see the equivalence tests.

use critlock_trace::{EventKind, ObjId, ThreadId, Trace, Ts};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::rc::Rc;

/// Per-lock attribution of critical-path time, as estimated online.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineLockStat {
    /// The lock.
    pub lock: ObjId,
    /// Its name.
    pub name: String,
    /// Critical-path time attributed to this lock's critical sections.
    pub cp_time: Ts,
    /// Fraction of the critical-path length.
    pub cp_time_frac: f64,
}

/// Result of the forward online pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Estimated critical-path length.
    pub cp_length: Ts,
    /// The thread whose exit terminates the critical path.
    pub final_thread: Option<ThreadId>,
    /// Per-lock attribution, sorted by `cp_time` descending.
    pub locks: Vec<OnlineLockStat>,
}

impl OnlineReport {
    /// The stat for a given lock name.
    pub fn lock_by_name(&self, name: &str) -> Option<&OnlineLockStat> {
        self.locks.iter().find(|l| l.name == name)
    }
}

type Profile = FxHashMap<ObjId, Ts>;

/// A dependence-path value: its length plus the per-lock attribution of
/// that length. The profile is shared copy-on-write behind an `Rc` —
/// publishing a producer value or adopting a winning value is a pointer
/// bump, and the map is deep-copied only when a thread mutates a profile
/// that is still shared (`Rc::make_mut`). This removes the dominant
/// allocation cost of the forward pass (deep map clones on every
/// release/signal/exit) without changing any computed value.
#[derive(Clone, Default)]
struct PathVal {
    len: Ts,
    profile: Rc<Profile>,
}

impl PathVal {
    fn adopt_max(&mut self, other: &PathVal) {
        if other.len > self.len {
            self.len = other.len;
            self.profile = Rc::clone(&other.profile);
        }
    }

    /// Attribute `dt` of path time to `lock`.
    fn attribute(&mut self, lock: ObjId, dt: Ts) {
        *Rc::make_mut(&mut self.profile).entry(lock).or_insert(0) += dt;
    }
}

struct ThreadState {
    val: PathVal,
    last_ts: Ts,
    running: bool,
    held: Vec<ObjId>,
}

/// Whether an event *produces* a dependence value other threads may adopt
/// at the same instant (releases, signals, arrivals, exits, creations).
fn is_producer(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::LockRelease { .. }
            | EventKind::RwRelease { .. }
            | EventKind::CondSignal { .. }
            | EventKind::CondBroadcast { .. }
            | EventKind::BarrierArrive { .. }
            | EventKind::ThreadExit
            | EventKind::ThreadCreate { .. }
    )
}

/// Run the forward online critical-path pass over a complete trace.
///
/// Events are processed in timestamp groups. Within a group, each
/// thread's events keep their program order (reordering them corrupts
/// the held-lock and running-state machines — e.g. a zero-duration
/// critical section would release before it obtains), and a first sweep
/// publishes all producer values so same-instant hand-offs (release →
/// obtain, last-arrival → departs, exit → join) resolve regardless of
/// thread iteration order. All events in a group share the timestamp, so
/// no running time accrues inside a group and the two-sweep split is
/// exact.
///
/// (When embedded in a runtime, the same state machine runs incrementally
/// on live events; operating on a recorded trace here keeps the module
/// testable against the offline walk.)
pub fn online_analyze(trace: &Trace) -> OnlineReport {
    let mut events: Vec<(Ts, ThreadId, usize, EventKind)> = Vec::new();
    for stream in &trace.threads {
        for (i, ev) in stream.events.iter().enumerate() {
            events.push((ev.ts, stream.tid, i, ev.kind));
        }
    }
    events.sort_by_key(|(ts, tid, idx, _)| (*ts, *tid, *idx));

    let n = trace.threads.len();
    let mut threads: Vec<ThreadState> = (0..n)
        .map(|_| ThreadState {
            val: PathVal::default(),
            last_ts: 0,
            running: false,
            held: Vec::new(),
        })
        .collect();

    let mut release_vals: FxHashMap<ObjId, PathVal> = FxHashMap::default();
    let mut barrier_vals: FxHashMap<(ObjId, u32), PathVal> = FxHashMap::default();
    let mut signal_vals: FxHashMap<(ObjId, u64), PathVal> = FxHashMap::default();
    let mut latest_signal: FxHashMap<ObjId, PathVal> = FxHashMap::default();
    let mut create_vals: FxHashMap<ThreadId, PathVal> = FxHashMap::default();
    let mut exit_vals: FxHashMap<ThreadId, PathVal> = FxHashMap::default();
    let mut final_candidate: Option<(Ts, ThreadId, PathVal)> = None;

    let mut i = 0;
    while i < events.len() {
        let ts = events[i].0;
        let mut group_end = i;
        while group_end < events.len() && events[group_end].0 == ts {
            group_end += 1;
        }

        // Sweep 1: accrue running time up to `ts` for every thread in the
        // group (attributed to its innermost held lock), then publish the
        // values of all producer events so same-instant consumers adopt
        // them independent of thread iteration order.
        for &(_, tid, _, ref kind) in &events[i..group_end] {
            let t = &mut threads[tid.index()];
            if t.running && ts > t.last_ts {
                let dt = ts - t.last_ts;
                t.val.len += dt;
                if let Some(&inner) = t.held.last() {
                    t.val.attribute(inner, dt);
                }
            }
            t.last_ts = ts;
            if is_producer(kind) {
                let val = threads[tid.index()].val.clone();
                match *kind {
                    EventKind::LockRelease { lock } | EventKind::RwRelease { lock, .. } => {
                        release_vals.insert(lock, val);
                    }
                    EventKind::BarrierArrive { barrier, epoch } => {
                        barrier_vals.entry((barrier, epoch)).or_default().adopt_max(&val);
                    }
                    EventKind::CondSignal { cv, signal_seq }
                    | EventKind::CondBroadcast { cv, signal_seq } => {
                        signal_vals.insert((cv, signal_seq), val.clone());
                        latest_signal.insert(cv, val);
                    }
                    EventKind::ThreadCreate { child } => {
                        create_vals.insert(child, val);
                    }
                    EventKind::ThreadExit => {
                        exit_vals.insert(tid, val);
                    }
                    _ => {}
                }
            }
        }

        // Sweep 2: run the per-thread state machines in program order.
        for &(_, tid, _, kind) in &events[i..group_end] {
            step_event(
                tid,
                kind,
                &mut threads,
                &mut release_vals,
                &mut barrier_vals,
                &mut signal_vals,
                &mut latest_signal,
                &mut create_vals,
                &mut exit_vals,
                &mut final_candidate,
            );
        }
        i = group_end;
    }

    let (cp_length, final_thread, profile) = match final_candidate {
        Some((len, tid, val)) => {
            (len, Some(tid), Rc::try_unwrap(val.profile).unwrap_or_else(|rc| (*rc).clone()))
        }
        None => (0, None, Profile::default()),
    };

    let mut locks: Vec<OnlineLockStat> = profile
        .into_iter()
        .map(|(lock, cp_time)| OnlineLockStat {
            lock,
            name: trace.object_name(lock),
            cp_time,
            cp_time_frac: if cp_length > 0 { cp_time as f64 / cp_length as f64 } else { 0.0 },
        })
        .collect();
    locks.sort_by(|a, b| {
        b.cp_time
            .cmp(&a.cp_time)
            .then_with(|| a.name.cmp(&b.name))
            .then_with(|| a.lock.0.cmp(&b.lock.0))
    });

    OnlineReport { cp_length, final_thread, locks }
}

type ValMap<K> = FxHashMap<K, PathVal>;

#[allow(clippy::too_many_arguments)]
fn step_event(
    tid: ThreadId,
    kind: EventKind,
    threads: &mut [ThreadState],
    release_vals: &mut ValMap<ObjId>,
    barrier_vals: &mut ValMap<(ObjId, u32)>,
    signal_vals: &mut ValMap<(ObjId, u64)>,
    latest_signal: &mut ValMap<ObjId>,
    create_vals: &mut ValMap<ThreadId>,
    exit_vals: &mut ValMap<ThreadId>,
    final_candidate: &mut Option<(Ts, ThreadId, PathVal)>,
) {
    let ti = tid.index();
    {
        match kind {
            EventKind::ThreadStart => {
                let adopted = create_vals.remove(&tid);
                let t = &mut threads[ti];
                if let Some(v) = adopted {
                    t.val.adopt_max(&v);
                }
                t.running = true;
            }
            EventKind::ThreadCreate { child } => {
                create_vals.insert(child, threads[ti].val.clone());
            }
            EventKind::ThreadExit => {
                let t = &mut threads[ti];
                t.running = false;
                exit_vals.insert(tid, t.val.clone());
                let better = match final_candidate {
                    Some((len, _, _)) => t.val.len >= *len,
                    None => true,
                };
                if better {
                    *final_candidate = Some((t.val.len, tid, t.val.clone()));
                }
            }
            EventKind::LockAcquire { .. } | EventKind::RwAcquire { .. } => {}
            EventKind::LockContended { .. } | EventKind::RwContended { .. } => {
                threads[ti].running = false;
            }
            EventKind::LockObtain { lock } | EventKind::RwObtain { lock, .. } => {
                let adopted =
                    if !threads[ti].running { release_vals.get(&lock).cloned() } else { None };
                let t = &mut threads[ti];
                if let Some(v) = adopted {
                    t.val.adopt_max(&v);
                }
                t.running = true;
                t.held.push(lock);
            }
            EventKind::LockRelease { lock } | EventKind::RwRelease { lock, .. } => {
                let t = &mut threads[ti];
                if let Some(pos) = t.held.iter().rposition(|&l| l == lock) {
                    t.held.remove(pos);
                }
                release_vals.insert(lock, t.val.clone());
            }
            EventKind::BarrierArrive { barrier, epoch } => {
                let t = &mut threads[ti];
                t.running = false;
                barrier_vals.entry((barrier, epoch)).or_default().adopt_max(&t.val);
            }
            EventKind::BarrierDepart { barrier, epoch } => {
                let adopted = barrier_vals.get(&(barrier, epoch)).cloned();
                let t = &mut threads[ti];
                if let Some(v) = adopted {
                    t.val.adopt_max(&v);
                }
                t.running = true;
            }
            EventKind::CondWaitBegin { .. } => {
                threads[ti].running = false;
            }
            EventKind::CondSignal { cv, signal_seq }
            | EventKind::CondBroadcast { cv, signal_seq } => {
                let v = threads[ti].val.clone();
                signal_vals.insert((cv, signal_seq), v.clone());
                latest_signal.insert(cv, v);
            }
            EventKind::CondWakeup { cv, signal_seq } => {
                let adopted =
                    signal_vals.get(&(cv, signal_seq)).or_else(|| latest_signal.get(&cv)).cloned();
                let t = &mut threads[ti];
                if let Some(v) = adopted {
                    t.val.adopt_max(&v);
                }
                t.running = true;
            }
            EventKind::JoinBegin { .. } => {
                threads[ti].running = false;
            }
            EventKind::JoinEnd { child } => {
                let adopted = exit_vals.get(&child).cloned();
                let t = &mut threads[ti];
                if let Some(v) = adopted {
                    t.val.adopt_max(&v);
                }
                t.running = true;
            }
            EventKind::Marker { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::analyze;
    use critlock_trace::TraceBuilder;

    #[test]
    fn matches_offline_on_lock_chain() {
        let mut b = TraceBuilder::new("online-chain");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 4).exit_at(5);
        b.on(t1).work(1).cs_blocked(l, 4, 2).work(3).exit(); // exit 9
        let t = b.build().unwrap();

        let online = online_analyze(&t);
        let offline = analyze(&t);

        assert_eq!(online.cp_length, offline.cp_length);
        assert_eq!(
            online.lock_by_name("L").unwrap().cp_time,
            offline.lock_by_name("L").unwrap().cp_time
        );
        assert_eq!(online.final_thread, Some(critlock_trace::ThreadId(1)));
    }

    #[test]
    fn off_path_lock_excluded_online_too() {
        let mut b = TraceBuilder::new("online-offpath");
        let hot = b.lock("hot");
        let idle = b.lock("idle");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        let t2 = b.thread("T2", 0);
        b.on(t0).cs(hot, 60).work(40).exit(); // exit 100
        b.on(t1).cs(idle, 30).exit_at(40);
        b.on(t2).cs_blocked(idle, 30, 10).exit_at(45);
        let t = b.build().unwrap();

        let online = online_analyze(&t);
        assert_eq!(online.cp_length, 100);
        assert_eq!(online.lock_by_name("hot").unwrap().cp_time, 60);
        assert!(online.lock_by_name("idle").is_none());
    }

    #[test]
    fn barrier_path_through_last_arriver() {
        let mut b = TraceBuilder::new("online-barrier");
        let bar = b.barrier("B");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        // T1 is the last arriver because of a long CS; its CS is on the CP.
        b.on(t0).work(3).barrier(bar, 0, 7).work(5).exit(); // exit 12
        b.on(t1).cs(l, 7).barrier(bar, 0, 7).work(1).exit(); // exit 8
        let t = b.build().unwrap();
        let online = online_analyze(&t);
        assert_eq!(online.cp_length, 12);
        assert_eq!(online.lock_by_name("L").unwrap().cp_time, 7);
    }

    #[test]
    fn fork_join_path() {
        let mut b = TraceBuilder::new("online-forkjoin");
        let main = b.thread("main", 0);
        let w = b.thread("w", 1);
        b.on(w).work(9).exit(); // exit 10
        b.on(main).work(1).create(w).work(2).join(w, 10).work(1).exit(); // exit 11
        let t = b.build().unwrap();
        let online = online_analyze(&t);
        assert_eq!(online.cp_length, 11);
        assert_eq!(online.final_thread, Some(critlock_trace::ThreadId(0)));
    }

    #[test]
    fn nested_locks_attribute_to_innermost() {
        let mut b = TraceBuilder::new("online-nested");
        let outer = b.lock("outer");
        let inner = b.lock("inner");
        let t0 = b.thread("T0", 0);
        b.on(t0)
            .acquire(outer)
            .work(2)
            .acquire(inner)
            .work(3)
            .release(inner)
            .work(1)
            .release(outer)
            .exit();
        let t = b.build().unwrap();
        let online = online_analyze(&t);
        assert_eq!(online.cp_length, 6);
        assert_eq!(online.lock_by_name("outer").unwrap().cp_time, 3);
        assert_eq!(online.lock_by_name("inner").unwrap().cp_time, 3);
    }

    #[test]
    fn empty_trace() {
        let rep = online_analyze(&critlock_trace::Trace::default());
        assert_eq!(rep.cp_length, 0);
        assert!(rep.locks.is_empty());
        assert!(rep.final_thread.is_none());
    }

    /// On a larger randomized scenario the online estimate of total CP
    /// length must match the offline walk (both compute the true longest
    /// path for complete virtual-time traces).
    #[test]
    fn cp_length_matches_offline_on_handoff_chains() {
        let mut b = TraceBuilder::new("online-big");
        let l1 = b.lock("L1");
        let l2 = b.lock("L2");
        let ts: Vec<_> = (0..4).map(|i| b.thread(format!("T{i}"), 0)).collect();
        let (a, b_) = (20u64, 25u64);
        for (i, &ti) in ts.iter().enumerate() {
            let i = i as u64;
            let mut c = b.on(ti);
            if i == 0 {
                c.cs(l1, a);
            } else {
                c.cs_blocked(l1, i * a, a);
            }
            let l2_obtain = a + i * b_;
            let now = (i + 1) * a;
            if l2_obtain > now {
                c.cs_blocked(l2, l2_obtain, b_);
            } else {
                c.cs(l2, b_);
            }
            c.exit();
        }
        let t = b.build().unwrap();
        let online = online_analyze(&t);
        let offline = analyze(&t);
        assert_eq!(online.cp_length, offline.cp_length);
        assert_eq!(
            online.lock_by_name("L2").unwrap().cp_time,
            offline.lock_by_name("L2").unwrap().cp_time
        );
        assert_eq!(
            online.lock_by_name("L1").unwrap().cp_time,
            offline.lock_by_name("L1").unwrap().cp_time
        );
    }
}

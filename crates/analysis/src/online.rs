//! Online (single forward pass) critical-path lock profiling, with
//! incremental state maintenance for live sessions.
//!
//! The paper's future work (§VII) suggests feeding lock criticality to
//! run-time systems (accelerated critical sections, lock reordering,
//! transactional memory). That requires estimating lock criticality *as
//! the program runs* instead of via the offline backward walk. This
//! module implements the standard forward formulation (in the style of
//! Hollingsworth's online critical-path profiling): every thread carries
//! the length of the longest dependence path that ends at its current
//! instant, plus a per-lock attribution profile of that path; dependence
//! edges (lock hand-offs, barrier releases, signals, create/join) take the
//! maximum and inherit the winning profile.
//!
//! ## Incremental maintenance
//!
//! [`OnlineState`] is the persistent form of the pass: a live collector
//! feeds it each frame's events as they arrive ([`OnlineState::ingest`])
//! and the per-thread frontier values advance by only the new events —
//! O(delta), not O(session history). Events are buffered per arrival and
//! folded into the permanent frontier in global `(ts, tid, arrival)`
//! order once no thread can still contribute an earlier timestamp (the
//! *fold bound*: the minimum last-ingested timestamp over live threads).
//! Events above the bound stay pending and are folded ephemerally — into
//! a clone of the small frontier — when a report is requested, so every
//! [`OnlineState::report`] is exactly the report a from-scratch
//! [`online_analyze`] of all ingested events would produce.
//!
//! The fold order assumes per-thread timestamps never step backwards
//! across the fold bound. When they do (frame loss, a thread announced
//! late with old events), the state flags itself [`stale`] and the owner
//! rebuilds it from the assembled trace — correctness is unconditional,
//! incrementality is the common case.
//!
//! For traces with a single final answer the result matches the offline
//! analysis exactly on lock attribution along the final critical path;
//! see the equivalence tests.
//!
//! [`stale`]: OnlineState::is_stale

use critlock_trace::{Event, EventKind, ObjId, ThreadId, Trace, Ts};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-lock attribution of critical-path time, as estimated online.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineLockStat {
    /// The lock.
    pub lock: ObjId,
    /// Its name.
    pub name: String,
    /// Critical-path time attributed to this lock's critical sections.
    pub cp_time: Ts,
    /// Fraction of the critical-path length.
    pub cp_time_frac: f64,
}

/// Result of the forward online pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Estimated critical-path length.
    pub cp_length: Ts,
    /// The thread whose exit terminates the critical path.
    pub final_thread: Option<ThreadId>,
    /// Per-lock attribution, sorted by `cp_time` descending.
    pub locks: Vec<OnlineLockStat>,
}

impl OnlineReport {
    /// The stat for a given lock name.
    pub fn lock_by_name(&self, name: &str) -> Option<&OnlineLockStat> {
        self.locks.iter().find(|l| l.name == name)
    }
}

type Profile = FxHashMap<ObjId, Ts>;

/// A dependence-path value: its length plus the per-lock attribution of
/// that length. The profile is shared copy-on-write behind an `Arc` —
/// publishing a producer value or adopting a winning value is a pointer
/// bump, and the map is deep-copied only when a thread mutates a profile
/// that is still shared (`Arc::make_mut`). This removes the dominant
/// allocation cost of the forward pass (deep map clones on every
/// release/signal/exit) without changing any computed value, and it is
/// what makes cloning the incremental frontier at report time cheap: the
/// carried-forward profiles are shared, not copied.
#[derive(Debug, Clone, Default)]
struct PathVal {
    len: Ts,
    profile: Arc<Profile>,
}

impl PathVal {
    fn adopt_max(&mut self, other: &PathVal) {
        if other.len > self.len {
            self.len = other.len;
            self.profile = Arc::clone(&other.profile);
        }
    }

    /// Attribute `dt` of path time to `lock`.
    fn attribute(&mut self, lock: ObjId, dt: Ts) {
        *Arc::make_mut(&mut self.profile).entry(lock).or_insert(0) += dt;
    }
}

#[derive(Debug, Clone, Default)]
struct ThreadState {
    val: PathVal,
    last_ts: Ts,
    running: bool,
    exited: bool,
    held: Vec<ObjId>,
}

/// Whether an event *produces* a dependence value other threads may adopt
/// at the same instant (releases, signals, arrivals, exits, creations).
fn is_producer(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::LockRelease { .. }
            | EventKind::RwRelease { .. }
            | EventKind::CondSignal { .. }
            | EventKind::CondBroadcast { .. }
            | EventKind::BarrierArrive { .. }
            | EventKind::ThreadExit
            | EventKind::ThreadCreate { .. }
    )
}

/// The folded core of the forward pass: per-thread frontier values plus
/// the producer-value maps dependence edges adopt from. Cloning it is
/// O(threads + live producer values) — profiles are shared `Arc`s — which
/// is what lets a report fold the pending tail into a throwaway copy.
#[derive(Debug, Clone, Default)]
struct FoldState {
    threads: Vec<ThreadState>,
    release_vals: FxHashMap<ObjId, PathVal>,
    barrier_vals: FxHashMap<(ObjId, u32), PathVal>,
    signal_vals: FxHashMap<(ObjId, u64), PathVal>,
    latest_signal: FxHashMap<ObjId, PathVal>,
    create_vals: FxHashMap<ThreadId, PathVal>,
    exit_vals: FxHashMap<ThreadId, PathVal>,
    final_candidate: Option<(Ts, ThreadId, PathVal)>,
}

impl FoldState {
    fn thread_mut(&mut self, tid: ThreadId) -> &mut ThreadState {
        let ti = tid.index();
        if ti >= self.threads.len() {
            self.threads.resize_with(ti + 1, ThreadState::default);
        }
        &mut self.threads[ti]
    }

    /// Fold one timestamp group (all events share `group[0].0`). Within a
    /// group, each thread's events keep their program order (reordering
    /// them corrupts the held-lock and running-state machines — e.g. a
    /// zero-duration critical section would release before it obtains),
    /// and a first sweep publishes all producer values so same-instant
    /// hand-offs (release → obtain, last-arrival → departs, exit → join)
    /// resolve regardless of thread iteration order. All events in a
    /// group share the timestamp, so no running time accrues inside a
    /// group and the two-sweep split is exact.
    fn fold_group(&mut self, group: &[(Ts, ThreadId, u64, EventKind)]) {
        let ts = group[0].0;
        // Sweep 1: accrue running time up to `ts` for every thread in the
        // group (attributed to its innermost held lock), then publish the
        // values of all producer events.
        for &(_, tid, _, ref kind) in group {
            let t = self.thread_mut(tid);
            if t.running && ts > t.last_ts {
                let dt = ts - t.last_ts;
                t.val.len += dt;
                if let Some(&inner) = t.held.last() {
                    t.val.attribute(inner, dt);
                }
            }
            t.last_ts = ts;
            if is_producer(kind) {
                let val = self.threads[tid.index()].val.clone();
                match *kind {
                    EventKind::LockRelease { lock } | EventKind::RwRelease { lock, .. } => {
                        self.release_vals.insert(lock, val);
                    }
                    EventKind::BarrierArrive { barrier, epoch } => {
                        self.barrier_vals.entry((barrier, epoch)).or_default().adopt_max(&val);
                    }
                    EventKind::CondSignal { cv, signal_seq }
                    | EventKind::CondBroadcast { cv, signal_seq } => {
                        self.signal_vals.insert((cv, signal_seq), val.clone());
                        self.latest_signal.insert(cv, val);
                    }
                    EventKind::ThreadCreate { child } => {
                        self.create_vals.insert(child, val);
                    }
                    EventKind::ThreadExit => {
                        self.exit_vals.insert(tid, val);
                    }
                    _ => {}
                }
            }
        }

        // Sweep 2: run the per-thread state machines in program order.
        for &(_, tid, _, kind) in group {
            self.step_event(tid, kind);
        }
    }

    fn step_event(&mut self, tid: ThreadId, kind: EventKind) {
        self.thread_mut(tid); // ensure the slot exists
        let ti = tid.index();
        match kind {
            EventKind::ThreadStart => {
                let adopted = self.create_vals.remove(&tid);
                let t = &mut self.threads[ti];
                if let Some(v) = adopted {
                    t.val.adopt_max(&v);
                }
                t.running = true;
            }
            EventKind::ThreadCreate { child } => {
                self.create_vals.insert(child, self.threads[ti].val.clone());
            }
            EventKind::ThreadExit => {
                let t = &mut self.threads[ti];
                t.running = false;
                t.exited = true;
                self.exit_vals.insert(tid, t.val.clone());
                let better = match &self.final_candidate {
                    Some((len, _, _)) => t.val.len >= *len,
                    None => true,
                };
                if better {
                    self.final_candidate = Some((t.val.len, tid, t.val.clone()));
                }
            }
            EventKind::LockAcquire { .. } | EventKind::RwAcquire { .. } => {}
            EventKind::LockContended { .. } | EventKind::RwContended { .. } => {
                self.threads[ti].running = false;
            }
            EventKind::LockObtain { lock } | EventKind::RwObtain { lock, .. } => {
                let adopted = if !self.threads[ti].running {
                    self.release_vals.get(&lock).cloned()
                } else {
                    None
                };
                let t = &mut self.threads[ti];
                if let Some(v) = adopted {
                    t.val.adopt_max(&v);
                }
                t.running = true;
                t.held.push(lock);
            }
            EventKind::LockRelease { lock } | EventKind::RwRelease { lock, .. } => {
                let t = &mut self.threads[ti];
                if let Some(pos) = t.held.iter().rposition(|&l| l == lock) {
                    t.held.remove(pos);
                }
                self.release_vals.insert(lock, t.val.clone());
            }
            EventKind::BarrierArrive { barrier, epoch } => {
                let t = &mut self.threads[ti];
                t.running = false;
                let val = t.val.clone();
                self.barrier_vals.entry((barrier, epoch)).or_default().adopt_max(&val);
            }
            EventKind::BarrierDepart { barrier, epoch } => {
                let adopted = self.barrier_vals.get(&(barrier, epoch)).cloned();
                let t = &mut self.threads[ti];
                if let Some(v) = adopted {
                    t.val.adopt_max(&v);
                }
                t.running = true;
            }
            EventKind::CondWaitBegin { .. } => {
                self.threads[ti].running = false;
            }
            EventKind::CondSignal { cv, signal_seq }
            | EventKind::CondBroadcast { cv, signal_seq } => {
                let v = self.threads[ti].val.clone();
                self.signal_vals.insert((cv, signal_seq), v.clone());
                self.latest_signal.insert(cv, v);
            }
            EventKind::CondWakeup { cv, signal_seq } => {
                let adopted = self
                    .signal_vals
                    .get(&(cv, signal_seq))
                    .or_else(|| self.latest_signal.get(&cv))
                    .cloned();
                let t = &mut self.threads[ti];
                if let Some(v) = adopted {
                    t.val.adopt_max(&v);
                }
                t.running = true;
            }
            EventKind::JoinBegin { .. } => {
                self.threads[ti].running = false;
            }
            EventKind::JoinEnd { child } => {
                let adopted = self.exit_vals.get(&child).cloned();
                let t = &mut self.threads[ti];
                if let Some(v) = adopted {
                    t.val.adopt_max(&v);
                }
                t.running = true;
            }
            EventKind::Marker { .. } => {}
        }
    }

    /// Turn the folded state into the report. `horizon` additionally
    /// considers still-live threads' frontier values as critical-path
    /// candidates (the estimate a live status line wants); without it,
    /// only exited threads terminate the path — exactly what a one-shot
    /// [`online_analyze`] of the same events computes.
    fn extract(&self, names: &Trace, horizon: bool) -> OnlineReport {
        let mut candidate = self.final_candidate.clone();
        if horizon {
            for (ti, t) in self.threads.iter().enumerate() {
                if t.exited || (t.last_ts == 0 && t.val.len == 0 && !t.running) {
                    continue;
                }
                let better = match &candidate {
                    Some((len, _, _)) => t.val.len >= *len,
                    None => true,
                };
                if better {
                    candidate = Some((t.val.len, ThreadId(ti as u32), t.val.clone()));
                }
            }
        }
        let (cp_length, final_thread, profile) = match candidate {
            Some((len, tid, val)) => {
                (len, Some(tid), Arc::try_unwrap(val.profile).unwrap_or_else(|rc| (*rc).clone()))
            }
            None => (0, None, Profile::default()),
        };

        let mut locks: Vec<OnlineLockStat> = profile
            .into_iter()
            .map(|(lock, cp_time)| OnlineLockStat {
                lock,
                name: names.object_name(lock),
                cp_time,
                cp_time_frac: if cp_length > 0 { cp_time as f64 / cp_length as f64 } else { 0.0 },
            })
            .collect();
        locks.sort_by(|a, b| {
            b.cp_time
                .cmp(&a.cp_time)
                .then_with(|| a.name.cmp(&b.name))
                .then_with(|| a.lock.0.cmp(&b.lock.0))
        });

        OnlineReport { cp_length, final_thread, locks }
    }
}

/// Per-thread ingestion bookkeeping, separate from the folded frontier:
/// the fold bound derives from what has *arrived*, not what has folded.
#[derive(Debug, Clone, Copy, Default)]
struct IngestMeta {
    last_ts: Ts,
    declared: bool,
    seen: bool,
    exited: bool,
}

/// The speculative fold: the permanent frontier plus a sorted prefix of
/// the pending buffer, folded ahead of the fold bound. While new events
/// keep arriving strictly above everything it has folded (the common
/// case for roughly time-ordered streams), each report extends it by
/// only the new events instead of re-folding the whole pending tail —
/// this is what keeps reports O(delta) even when a sparse thread (e.g. a
/// main thread parked in `join`) pins the permanent fold bound near the
/// session start. An arrival at or below its high-water mark simply
/// discards the cache (correctness never depends on it).
#[derive(Debug, Clone)]
struct SpecFold {
    fold: FoldState,
    /// How many entries of the (sorted) pending buffer are folded in.
    /// Always a timestamp-group boundary, and never includes the final
    /// (highest-ts, still-open) group — events may still join that group,
    /// so it is folded ephemerally per report instead.
    covered: usize,
    /// Highest timestamp folded in — the extend/discard guard: a new
    /// event must land strictly above it, else it could join an
    /// already-folded timestamp group. `None` until anything folds.
    max_ts: Option<Ts>,
}

/// Persistent incremental state of the forward online pass.
///
/// Feed it events per thread as they arrive ([`ingest`]), ask for the
/// current report at any time ([`report`]). The contract: the report
/// equals a from-scratch [`online_analyze`] over the concatenation of
/// everything ingested so far (per thread, in ingestion order) —
/// verified bit-for-bit by the batching property tests — while the work
/// per call is proportional to the events ingested since the last call,
/// not to the session's history.
///
/// [`ingest`]: OnlineState::ingest
/// [`report`]: OnlineState::report
#[derive(Debug, Clone, Default)]
pub struct OnlineState {
    fold: FoldState,
    /// Events above the fold bound: `(ts, tid, arrival#, kind)`. The
    /// global arrival counter preserves each thread's program order under
    /// the `(ts, tid, arrival)` sort, reproducing the one-shot pass's
    /// `(ts, tid, stream index)` order exactly. Invariant between
    /// reports: the first `spec.covered` entries are sorted (they are
    /// folded into the speculative fold); entries past that are in
    /// arrival order.
    pending: Vec<(Ts, ThreadId, u64, EventKind)>,
    spec: Option<SpecFold>,
    meta: Vec<IngestMeta>,
    arrival: u64,
    watermark: Option<Ts>,
    folded_events: u64,
    ingested_events: u64,
    stale: bool,
}

impl OnlineState {
    /// A fresh state with nothing ingested.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announce that thread `tid` exists and will produce events. Until a
    /// declared thread's first event arrives, nothing folds permanently —
    /// its first timestamp could land anywhere, and folding past it would
    /// go stale the moment it shows up. Callers that know the thread
    /// roster up front (the collector learns it from registration frames)
    /// should declare each thread before ingesting any of its events.
    pub fn declare(&mut self, tid: ThreadId) {
        let ti = tid.index();
        if ti >= self.meta.len() {
            self.meta.resize(ti + 1, IngestMeta::default());
        }
        self.meta[ti].declared = true;
    }

    /// Append `events` to thread `tid`'s stream. O(len). Marks the state
    /// stale instead of corrupting it when an event lands at or below the
    /// fold watermark (its timestamp group was already folded).
    pub fn ingest(&mut self, tid: ThreadId, events: &[Event]) {
        let ti = tid.index();
        if ti >= self.meta.len() {
            self.meta.resize(ti + 1, IngestMeta::default());
        }
        for ev in events {
            if let Some(w) = self.watermark {
                if ev.ts <= w {
                    self.stale = true;
                }
            }
            let m = &mut self.meta[ti];
            m.seen = true;
            m.last_ts = ev.ts;
            if matches!(ev.kind, EventKind::ThreadExit) {
                m.exited = true;
            }
            self.pending.push((ev.ts, tid, self.arrival, ev.kind));
            self.arrival += 1;
            self.ingested_events += 1;
        }
    }

    /// Whether an out-of-order arrival invalidated the folded frontier.
    /// A stale state must be rebuilt from the assembled trace
    /// ([`rebuild`]); reports from a stale state are not trustworthy.
    ///
    /// [`rebuild`]: OnlineState::rebuild
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Total events ingested since creation (or last rebuild).
    pub fn events_ingested(&self) -> u64 {
        self.ingested_events
    }

    /// Events folded into the permanent frontier (the remainder is
    /// pending and re-folded ephemerally per report).
    pub fn events_folded(&self) -> u64 {
        self.folded_events
    }

    /// A fresh state fed the whole trace in one batch — the full-rebuild
    /// fallback for stale states (and the body of [`online_analyze`]).
    /// Every stream is declared first, so threads that are currently
    /// eventless still hold the fold bound for their future events.
    pub fn rebuild(trace: &Trace) -> Self {
        let mut state = Self::new();
        for stream in &trace.threads {
            state.declare(stream.tid);
        }
        for stream in &trace.threads {
            state.ingest(stream.tid, &stream.events);
        }
        state
    }

    /// The conservative frontier watermark: a timestamp no future event
    /// can precede, assuming per-thread arrival order (the same
    /// assumption whose violation flags the state stale). `Ts::MAX` once
    /// every declared thread has exited; `None` while a declared thread
    /// has produced nothing yet, or when the state is stale.
    pub fn frontier_bound(&self) -> Option<Ts> {
        if self.stale {
            return None;
        }
        self.fold_bound()
    }

    /// The highest timestamp no live thread can still precede: events in
    /// groups strictly below it are safe to fold permanently. `None`
    /// while a declared thread has produced nothing yet (its first event
    /// could land anywhere); unbounded once every seen thread has exited.
    fn fold_bound(&self) -> Option<Ts> {
        let mut bound = Ts::MAX;
        for m in &self.meta {
            if m.declared && !m.seen {
                return None;
            }
            if m.seen && !m.exited {
                bound = bound.min(m.last_ts);
            }
        }
        Some(bound)
    }

    /// Bring the folds up to date with everything ingested: sort the
    /// newly arrived tail, extend (or rebuild) the speculative fold to
    /// cover all of `pending`, and advance the permanent frontier past
    /// every timestamp group strictly below the fold bound. Afterwards
    /// `pending` is fully sorted and the spec covers it entirely, so
    /// extracting from it yields the exact one-shot report.
    fn advance_folds(&mut self) {
        let covered = self.spec.as_ref().map_or(0, |s| s.covered);
        debug_assert!(covered <= self.pending.len());
        self.pending[covered..].sort_unstable_by_key(|&(ts, tid, arrival, _)| (ts, tid, arrival));
        // Can the spec absorb the new tail? Only if every new event lands
        // strictly above its high-water mark — otherwise a new event could
        // belong to a timestamp group the spec has already folded. Because
        // the final group is never folded in, a roughly time-ordered
        // stream always extends.
        let keep = match (&self.spec, self.pending.get(covered)) {
            (Some(s), Some(&(ts, ..))) => s.max_ts.is_none_or(|m| ts > m),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if !keep {
            self.spec = None;
            self.pending.sort_unstable_by_key(|&(ts, tid, arrival, _)| (ts, tid, arrival));
        }
        // `pending` is now globally sorted: with a surviving spec, the
        // covered prefix and the new tail are each sorted and every tail
        // timestamp is at least every covered one (strictly above the
        // folded part).
        if self.pending.is_empty() {
            return;
        }
        // Fold complete timestamp groups into the spec, leaving the final
        // group open (future arrivals may still join it).
        let last_ts = self.pending[self.pending.len() - 1].0;
        let open = self.pending.partition_point(|&(ts, _, _, _)| ts < last_ts);
        let spec = self.spec.get_or_insert_with(|| SpecFold {
            fold: self.fold.clone(),
            covered: 0,
            max_ts: None,
        });
        let mut i = spec.covered;
        while i < open {
            let ts = self.pending[i].0;
            let mut end = i;
            while end < open && self.pending[end].0 == ts {
                end += 1;
            }
            spec.fold.fold_group(&self.pending[i..end]);
            i = end;
        }
        if open > spec.covered {
            spec.max_ts = Some(self.pending[open - 1].0);
            spec.covered = open;
        }
        // Permanent frontier: fold the timestamp groups no live thread can
        // still precede, then drop them from `pending`. The spec keeps
        // covering the remainder — it equals the permanent fold plus the
        // retained covered prefix either way.
        if self.stale {
            return;
        }
        let Some(bound) = self.fold_bound() else { return };
        let safe = self.pending.partition_point(|&(ts, _, _, _)| ts < bound);
        if safe == 0 {
            return;
        }
        let mut i = 0;
        while i < safe {
            let ts = self.pending[i].0;
            let mut end = i;
            while end < safe && self.pending[end].0 == ts {
                end += 1;
            }
            self.fold.fold_group(&self.pending[i..end]);
            i = end;
        }
        self.watermark = Some(self.pending[safe - 1].0);
        self.folded_events += safe as u64;
        self.pending.drain(..safe);
        let drop_spec = match &mut self.spec {
            // `safe > covered` means the bound cleared the final group, so
            // the whole buffer folded permanently (`safe == len`); the
            // permanent fold is complete and the spec is obsolete.
            Some(s) if safe > s.covered => true,
            Some(s) => {
                s.covered -= safe;
                false
            }
            None => false,
        };
        if drop_spec {
            self.spec = None;
        }
    }

    fn report_inner(&mut self, names: &Trace, horizon: bool) -> OnlineReport {
        self.advance_folds();
        match &self.spec {
            // The uncovered tail is exactly the final timestamp group;
            // fold it into a throwaway clone of the (small) spec frontier.
            Some(spec) if spec.covered < self.pending.len() => {
                let mut tmp = spec.fold.clone();
                tmp.fold_group(&self.pending[spec.covered..]);
                tmp.extract(names, horizon)
            }
            Some(spec) => spec.fold.extract(names, horizon),
            None => self.fold.extract(names, horizon),
        }
    }

    /// The exact forward-pass report over everything ingested: identical
    /// to [`online_analyze`] of the concatenated trace. `names` supplies
    /// the object name table (typically the trace the events came from).
    /// Not meaningful on a stale state — rebuild first.
    pub fn report(&mut self, names: &Trace) -> OnlineReport {
        self.report_inner(names, false)
    }

    /// Like [`report`], but still-live threads' frontier values also
    /// terminate the candidate path — the estimate a live status display
    /// wants mid-session, and identical to [`report`] once every thread
    /// has exited.
    ///
    /// [`report`]: OnlineState::report
    pub fn report_at_horizon(&mut self, names: &Trace) -> OnlineReport {
        self.report_inner(names, true)
    }
}

/// Run the forward online critical-path pass over a complete trace: a
/// one-shot [`OnlineState`] fed every stream in a single batch.
pub fn online_analyze(trace: &Trace) -> OnlineReport {
    let mut state = OnlineState::rebuild(trace);
    state.report(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::analyze;
    use critlock_trace::TraceBuilder;

    #[test]
    fn matches_offline_on_lock_chain() {
        let mut b = TraceBuilder::new("online-chain");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 4).exit_at(5);
        b.on(t1).work(1).cs_blocked(l, 4, 2).work(3).exit(); // exit 9
        let t = b.build().unwrap();

        let online = online_analyze(&t);
        let offline = analyze(&t);

        assert_eq!(online.cp_length, offline.cp_length);
        assert_eq!(
            online.lock_by_name("L").unwrap().cp_time,
            offline.lock_by_name("L").unwrap().cp_time
        );
        assert_eq!(online.final_thread, Some(critlock_trace::ThreadId(1)));
    }

    #[test]
    fn off_path_lock_excluded_online_too() {
        let mut b = TraceBuilder::new("online-offpath");
        let hot = b.lock("hot");
        let idle = b.lock("idle");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        let t2 = b.thread("T2", 0);
        b.on(t0).cs(hot, 60).work(40).exit(); // exit 100
        b.on(t1).cs(idle, 30).exit_at(40);
        b.on(t2).cs_blocked(idle, 30, 10).exit_at(45);
        let t = b.build().unwrap();

        let online = online_analyze(&t);
        assert_eq!(online.cp_length, 100);
        assert_eq!(online.lock_by_name("hot").unwrap().cp_time, 60);
        assert!(online.lock_by_name("idle").is_none());
    }

    #[test]
    fn barrier_path_through_last_arriver() {
        let mut b = TraceBuilder::new("online-barrier");
        let bar = b.barrier("B");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        // T1 is the last arriver because of a long CS; its CS is on the CP.
        b.on(t0).work(3).barrier(bar, 0, 7).work(5).exit(); // exit 12
        b.on(t1).cs(l, 7).barrier(bar, 0, 7).work(1).exit(); // exit 8
        let t = b.build().unwrap();
        let online = online_analyze(&t);
        assert_eq!(online.cp_length, 12);
        assert_eq!(online.lock_by_name("L").unwrap().cp_time, 7);
    }

    #[test]
    fn fork_join_path() {
        let mut b = TraceBuilder::new("online-forkjoin");
        let main = b.thread("main", 0);
        let w = b.thread("w", 1);
        b.on(w).work(9).exit(); // exit 10
        b.on(main).work(1).create(w).work(2).join(w, 10).work(1).exit(); // exit 11
        let t = b.build().unwrap();
        let online = online_analyze(&t);
        assert_eq!(online.cp_length, 11);
        assert_eq!(online.final_thread, Some(critlock_trace::ThreadId(0)));
    }

    #[test]
    fn nested_locks_attribute_to_innermost() {
        let mut b = TraceBuilder::new("online-nested");
        let outer = b.lock("outer");
        let inner = b.lock("inner");
        let t0 = b.thread("T0", 0);
        b.on(t0)
            .acquire(outer)
            .work(2)
            .acquire(inner)
            .work(3)
            .release(inner)
            .work(1)
            .release(outer)
            .exit();
        let t = b.build().unwrap();
        let online = online_analyze(&t);
        assert_eq!(online.cp_length, 6);
        assert_eq!(online.lock_by_name("outer").unwrap().cp_time, 3);
        assert_eq!(online.lock_by_name("inner").unwrap().cp_time, 3);
    }

    #[test]
    fn empty_trace() {
        let rep = online_analyze(&critlock_trace::Trace::default());
        assert_eq!(rep.cp_length, 0);
        assert!(rep.locks.is_empty());
        assert!(rep.final_thread.is_none());
    }

    /// On a larger randomized scenario the online estimate of total CP
    /// length must match the offline walk (both compute the true longest
    /// path for complete virtual-time traces).
    #[test]
    fn cp_length_matches_offline_on_handoff_chains() {
        let mut b = TraceBuilder::new("online-big");
        let l1 = b.lock("L1");
        let l2 = b.lock("L2");
        let ts: Vec<_> = (0..4).map(|i| b.thread(format!("T{i}"), 0)).collect();
        let (a, b_) = (20u64, 25u64);
        for (i, &ti) in ts.iter().enumerate() {
            let i = i as u64;
            let mut c = b.on(ti);
            if i == 0 {
                c.cs(l1, a);
            } else {
                c.cs_blocked(l1, i * a, a);
            }
            let l2_obtain = a + i * b_;
            let now = (i + 1) * a;
            if l2_obtain > now {
                c.cs_blocked(l2, l2_obtain, b_);
            } else {
                c.cs(l2, b_);
            }
            c.exit();
        }
        let t = b.build().unwrap();
        let online = online_analyze(&t);
        let offline = analyze(&t);
        assert_eq!(online.cp_length, offline.cp_length);
        assert_eq!(
            online.lock_by_name("L2").unwrap().cp_time,
            offline.lock_by_name("L2").unwrap().cp_time
        );
        assert_eq!(
            online.lock_by_name("L1").unwrap().cp_time,
            offline.lock_by_name("L1").unwrap().cp_time
        );
    }

    /// Incremental ingestion in per-thread event batches — reports drawn
    /// mid-stream at every batch boundary — converges on exactly the
    /// one-shot result, and intermediate reports equal the one-shot
    /// report of the corresponding prefix.
    #[test]
    fn incremental_batches_match_one_shot() {
        let mut b = TraceBuilder::new("online-incremental");
        let l1 = b.lock("L1");
        let l2 = b.lock("L2");
        let bar = b.barrier("B");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l1, 5).barrier(bar, 0, 8).cs(l2, 4).exit(); // exit 13
        b.on(t1).work(1).cs_blocked(l1, 5, 3).barrier(bar, 0, 8).work(2).exit();
        let t = b.build().unwrap();

        for batch in [1usize, 2, 3, 5] {
            let mut st = OnlineState::new();
            for stream in &t.threads {
                st.declare(stream.tid);
            }
            // Interleave small batches across threads in stream order.
            let mut cursors: Vec<usize> = vec![0; t.threads.len()];
            let mut progressed = true;
            while progressed {
                progressed = false;
                for (si, stream) in t.threads.iter().enumerate() {
                    let at = cursors[si];
                    if at < stream.events.len() {
                        let end = (at + batch).min(stream.events.len());
                        st.ingest(stream.tid, &stream.events[at..end]);
                        cursors[si] = end;
                        progressed = true;
                        // Mid-stream report must not corrupt later state.
                        let _ = st.report_at_horizon(&t);
                    }
                }
            }
            assert!(!st.is_stale());
            let one_shot = online_analyze(&t);
            assert_eq!(st.report(&t), one_shot, "batch size {batch} diverged");
            // With every thread exited the horizon report is the exact one.
            assert_eq!(st.report_at_horizon(&t), one_shot);
        }
    }

    /// An event landing at or below the fold watermark flags the state
    /// stale instead of silently merging it out of order; a rebuild from
    /// the assembled trace recovers exactness.
    #[test]
    fn out_of_order_ingest_marks_stale() {
        let mut b = TraceBuilder::new("online-stale");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 4).exit_at(5);
        b.on(t1).work(1).cs_blocked(l, 4, 2).work(3).exit();
        let t = b.build().unwrap();

        let mut st = OnlineState::new();
        // Thread 0's whole stream first: once it exits, its groups fold.
        st.ingest(t.threads[0].tid, &t.threads[0].events);
        let _ = st.report_at_horizon(&t);
        assert!(!st.is_stale());
        // Thread 1 then arrives with events below the watermark.
        st.ingest(t.threads[1].tid, &t.threads[1].events);
        assert!(st.is_stale());
        // The rebuild fallback matches the one-shot pass exactly.
        let mut rebuilt = OnlineState::rebuild(&t);
        assert!(!rebuilt.is_stale());
        assert_eq!(rebuilt.report(&t), online_analyze(&t));
    }

    /// The horizon report tracks live progress before any thread exits.
    #[test]
    fn horizon_report_sees_live_threads() {
        let mut b = TraceBuilder::new("online-horizon");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        b.on(t0).cs(l, 10).work(5).exit();
        let t = b.build().unwrap();

        let mut st = OnlineState::new();
        // Everything but the final exit: no completed path yet.
        let n = t.threads[0].events.len();
        st.ingest(t.threads[0].tid, &t.threads[0].events[..n - 1]);
        assert_eq!(st.report(&t).cp_length, 0, "no thread has exited");
        let horizon = st.report_at_horizon(&t);
        assert!(horizon.cp_length > 0, "horizon must see the live frontier");
        // The remainder completes the session; both reports agree again.
        st.ingest(t.threads[0].tid, &t.threads[0].events[n - 1..]);
        assert_eq!(st.report(&t), online_analyze(&t));
    }
}

//! Human-readable and machine-readable renderings of analysis reports,
//! in the layout of the paper's result figures (Figs. 6, 8–14).

use crate::metrics::AnalysisReport;
use std::fmt::Write as _;

/// Options for the text renderer.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Show at most this many locks (sorted by CP time). `None` = all.
    pub top: Option<usize>,
    /// Include the TYPE 2 (classical) columns.
    pub type2: bool,
    /// Include the derived "Incr. Times" columns.
    pub derived: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions { top: None, type2: true, derived: true }
    }
}

fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Render a report as an aligned text table.
pub fn render_text(report: &AnalysisReport, opts: &RenderOptions) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "critical lock analysis: {} ({} threads)", report.app, report.num_threads);
    let _ = writeln!(
        out,
        "makespan {}  critical-path {}  coverage {:.1}%{}",
        report.makespan,
        report.cp_length,
        report.coverage * 100.0,
        if report.cp_complete { "" } else { "  [PARTIAL WALK]" }
    );

    let mut headers: Vec<&str> = vec!["Lock", "CP Time %", "Invo# on CP", "Cont.Prob on CP %"];
    if opts.type2 {
        headers.extend(["Wait Time %", "Avg Invo#", "Avg Cont.Prob %", "Avg Hold %"]);
    }
    if opts.derived {
        headers.extend(["Incr x Invo", "Incr x CS"]);
    }

    let rows: Vec<Vec<String>> = report
        .locks
        .iter()
        .take(opts.top.unwrap_or(usize::MAX))
        .map(|l| {
            let mut row = vec![
                l.name.clone(),
                pct(l.cp_time_frac),
                l.invocations_on_cp.to_string(),
                pct(l.cont_prob_on_cp),
            ];
            if opts.type2 {
                row.extend([
                    pct(l.avg_wait_frac),
                    format!("{:.1}", l.avg_invocations_per_thread),
                    pct(l.avg_cont_prob),
                    pct(l.avg_hold_frac),
                ]);
            }
            if opts.derived {
                row.extend([
                    format!("{:.2}", l.incr_invocations),
                    format!("{:.2}", l.incr_cs_size),
                ]);
            }
            row
        })
        .collect();

    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                let _ = write!(line, "{:<w$}", cell, w = widths[i]);
            } else {
                let _ = write!(line, "  {:>w$}", cell, w = widths[i]);
            }
        }
        line
    };

    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "{}", fmt_row(&header_cells));
    let total_width = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    let _ = writeln!(out, "{}", "-".repeat(total_width));
    for row in &rows {
        let _ = writeln!(out, "{}", fmt_row(row));
    }
    if rows.is_empty() {
        let _ = writeln!(out, "(no locks used)");
    }
    out
}

/// Render a report as CSV (header + one row per lock).
pub fn render_csv(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "lock,cp_time,cp_time_frac,invocations_on_cp,contended_on_cp,cont_prob_on_cp,\
         total_invocations,avg_invocations_per_thread,avg_cont_prob,avg_wait_frac,\
         avg_hold_frac,total_wait,total_hold,incr_invocations,incr_cs_size"
    );
    for l in &report.locks {
        let _ = writeln!(
            out,
            "{},{},{:.6},{},{},{:.6},{},{:.3},{:.6},{:.6},{:.6},{},{},{:.3},{:.3}",
            csv_escape(&l.name),
            l.cp_time,
            l.cp_time_frac,
            l.invocations_on_cp,
            l.contended_on_cp,
            l.cont_prob_on_cp,
            l.total_invocations,
            l.avg_invocations_per_thread,
            l.avg_cont_prob,
            l.avg_wait_frac,
            l.avg_hold_frac,
            l.total_wait,
            l.total_hold,
            l.incr_invocations,
            l.incr_cs_size,
        );
    }
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serialize a report as pretty-printed JSON.
pub fn to_json(report: &AnalysisReport) -> String {
    serde_json::to_string_pretty(report).expect("report serialization cannot fail")
}

/// A compact one-line summary of the top critical lock, for log output.
pub fn one_line_summary(report: &AnalysisReport) -> String {
    match report.locks.first().filter(|l| l.cp_time > 0) {
        Some(top) => format!(
            "{}: top critical lock {} at {} of the critical path ({} CP invocations, {} contended)",
            report.app,
            top.name,
            pct(top.cp_time_frac),
            top.invocations_on_cp,
            pct(top.cont_prob_on_cp),
        ),
        None => {
            format!("{}: no critical locks (critical sections are not a bottleneck)", report.app)
        }
    }
}

/// Side-by-side comparison of the same lock across several reports
/// (e.g. a thread-count sweep, the paper's Fig. 9). Returns CSV with one
/// row per report.
pub fn sweep_csv(reports: &[(String, &AnalysisReport)], lock_names: &[&str]) -> String {
    let mut out = String::new();
    let mut header = String::from("config");
    for name in lock_names {
        let _ = write!(header, ",{}_cp_time_frac,{}_wait_frac", name, name);
    }
    let _ = writeln!(out, "{header}");
    for (label, rep) in reports {
        out.push_str(label);
        for name in lock_names {
            match rep.lock_by_name(name) {
                Some(l) => {
                    let _ = write!(out, ",{:.6},{:.6}", l.cp_time_frac, l.avg_wait_frac);
                }
                None => out.push_str(",0,0"),
            }
        }
        out.push('\n');
    }
    out
}

/// Helper for tests and benches: assert that one lock dominates another
/// under the CP-time metric by at least `factor`.
pub fn dominates_by(report: &AnalysisReport, a: &str, b: &str, factor: f64) -> bool {
    match (report.lock_by_name(a), report.lock_by_name(b)) {
        (Some(la), Some(lb)) => la.cp_time_frac >= lb.cp_time_frac * factor,
        (Some(la), None) => la.cp_time > 0,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::analyze;
    use critlock_trace::TraceBuilder;

    fn sample_report() -> AnalysisReport {
        let mut b = TraceBuilder::new("render");
        let l1 = b.lock("alpha");
        let l2 = b.lock("beta,with,commas");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l1, 4).cs(l2, 2).exit_at(10);
        b.on(t1).work(1).cs_blocked(l1, 4, 3).work(5).exit(); // exit 12
        let t = b.build().unwrap();
        analyze(&t)
    }

    #[test]
    fn text_render_contains_all_locks() {
        let rep = sample_report();
        let text = render_text(&rep, &RenderOptions::default());
        assert!(text.contains("alpha"));
        assert!(text.contains("beta,with,commas"));
        assert!(text.contains("CP Time %"));
        assert!(text.contains("Wait Time %"));
    }

    #[test]
    fn text_render_top_limits_rows() {
        let rep = sample_report();
        let text = render_text(&rep, &RenderOptions { top: Some(1), ..RenderOptions::default() });
        // Only the top lock row appears.
        let data_lines: Vec<&str> =
            text.lines().filter(|l| l.contains("alpha") || l.contains("beta")).collect();
        assert_eq!(data_lines.len(), 1);
    }

    #[test]
    fn text_render_without_type2() {
        let rep = sample_report();
        let text = render_text(
            &rep,
            &RenderOptions { type2: false, derived: false, ..RenderOptions::default() },
        );
        assert!(!text.contains("Wait Time %"));
        assert!(!text.contains("Incr"));
    }

    #[test]
    fn csv_escapes_commas() {
        let rep = sample_report();
        let csv = render_csv(&rep);
        assert!(csv.contains("\"beta,with,commas\""));
        assert_eq!(csv.lines().count(), 1 + rep.locks.len());
    }

    #[test]
    fn json_roundtrip() {
        let rep = sample_report();
        let json = to_json(&rep);
        let back: AnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(rep, back);
    }

    #[test]
    fn one_liner() {
        let rep = sample_report();
        let s = one_line_summary(&rep);
        assert!(s.contains("top critical lock"));

        let empty = analyze(&critlock_trace::Trace::default());
        let s = one_line_summary(&empty);
        assert!(s.contains("no critical locks"));
    }

    #[test]
    fn sweep_csv_shape() {
        let rep = sample_report();
        let csv = sweep_csv(&[("4t".to_string(), &rep)], &["alpha", "missing"]);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "config,alpha_cp_time_frac,alpha_wait_frac,missing_cp_time_frac,missing_wait_frac"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("4t,"));
        assert!(row.ends_with(",0,0"));
    }

    #[test]
    fn dominance_helper() {
        let rep = sample_report();
        assert!(dominates_by(&rep, "alpha", "beta,with,commas", 1.0));
        assert!(!dominates_by(&rep, "missing", "alpha", 1.0));
    }

    #[test]
    fn empty_report_renders() {
        let rep = analyze(&critlock_trace::Trace::default());
        let text = render_text(&rep, &RenderOptions::default());
        assert!(text.contains("no locks used"));
    }
}

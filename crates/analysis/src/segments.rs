//! Segment construction.
//!
//! The paper defines a *segment* as "the executed code of a thread between
//! two synchronization events which might introduce blocking" (§III.A).
//! We build, per thread, the ordered list of its *running intervals*: the
//! gaps where the thread was blocked (waiting for a lock, a barrier, a
//! condition variable or a join) are cut out, and each segment records the
//! cause that allowed it to start. The backward critical-path walk consumes
//! this structure.

use crate::arena::{CsrBuilder, CsrIndex, SlabArena};
use critlock_trace::{EventKind, ObjId, ThreadId, Trace, Ts, SEQ_UNKNOWN};
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// Why a segment started running at its `start` timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartCause {
    /// First segment of a thread.
    ThreadStart,
    /// The thread had blocked on a lock and was granted it.
    LockGranted {
        /// The lock that was granted.
        lock: ObjId,
        /// When the thread originally requested the lock.
        acquire: Ts,
    },
    /// The thread departed from a barrier it had been waiting at.
    BarrierDeparted {
        /// The barrier.
        barrier: ObjId,
        /// Barrier generation.
        epoch: u32,
        /// When this thread arrived.
        arrive: Ts,
    },
    /// The thread was woken from a condition-variable wait.
    CondWoken {
        /// The condition variable.
        cv: ObjId,
        /// Sequence of the waking signal ([`SEQ_UNKNOWN`] if unmatched).
        signal_seq: u64,
        /// When the wait began.
        wait_begin: Ts,
    },
    /// A join on a child thread returned.
    JoinReturned {
        /// The joined child.
        child: ThreadId,
        /// When the join was issued.
        begin: Ts,
    },
}

/// One running interval of one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Owning thread.
    pub tid: ThreadId,
    /// Index within the thread's segment list.
    pub index: usize,
    /// When the segment started running.
    pub start: Ts,
    /// When the segment stopped running (blocked or exited).
    pub end: Ts,
    /// Why the segment could start.
    pub start_cause: StartCause,
}

impl Segment {
    /// Running duration of the segment.
    pub fn duration(&self) -> Ts {
        self.end.saturating_sub(self.start)
    }
}

/// A trace pre-processed into segments plus the lookup indices the
/// critical-path walk needs to find "the segment that released me".
///
/// Segments and dependence indices live in flat arena storage
/// ([`SlabArena`], [`CsrIndex`]): one slab per structure instead of one
/// heap block per thread or lock, which keeps the backward walk's lookups
/// on hot, contiguous memory. Per-thread access goes through
/// [`Self::thread`].
#[derive(Debug)]
pub struct SegmentedTrace {
    /// Per-thread segment lists, packed in one slab; list `i` belongs to
    /// `ThreadId(i)`.
    segments: SlabArena<Segment>,
    /// Per-lock release history `(release_ts, tid)`, sorted by timestamp
    /// within each row. Rows indexed densely by `ObjId` (object ids are
    /// small and dense).
    releases: CsrIndex<(Ts, ThreadId)>,
    /// Last arriver per (barrier, epoch).
    last_arrivers: FxHashMap<(ObjId, u32), (Ts, ThreadId)>,
    /// Signals/broadcasts per condvar `(ts, tid, seq)`, sorted by
    /// timestamp within each row. Rows indexed densely by `ObjId`.
    signals: CsrIndex<(Ts, ThreadId, u64)>,
    /// Exact signal lookup by (cv, seq).
    signals_by_seq: FxHashMap<(ObjId, u64), (Ts, ThreadId)>,
    /// Creation edge per child thread `(parent, create_ts)`, indexed by
    /// the child's `ThreadId`.
    creates: Vec<Option<(ThreadId, Ts)>>,
    /// Exit timestamp per thread.
    exits: Vec<Option<Ts>>,
    /// Earliest timestamp in the trace.
    pub trace_start: Ts,
}

/// Index contributions of one thread's stream, merged across threads in
/// thread-id order after the parallel scan.
#[derive(Default)]
struct ThreadIndex {
    /// Lock/rwlock releases `(lock, ts)` in event order.
    releases: Vec<(ObjId, Ts)>,
    /// Barrier arrivals `(barrier, epoch, ts)` in event order.
    arrivals: Vec<(ObjId, u32, Ts)>,
    /// Signals/broadcasts `(cv, seq, ts)` in event order.
    signals: Vec<(ObjId, u64, Ts)>,
    /// Thread creations `(child, ts)` in event order.
    creates: Vec<(ThreadId, Ts)>,
    /// Last exit timestamp.
    exit: Option<Ts>,
}

/// Grow-on-demand dense slot access (object/thread ids are dense, but
/// repaired partial traces may reference ids past the registered range).
fn slot<T: Default>(v: &mut Vec<T>, i: usize) -> &mut T {
    if v.len() <= i {
        v.resize_with(i + 1, T::default);
    }
    &mut v[i]
}

impl SegmentedTrace {
    /// Build the segmented view of a trace.
    ///
    /// Each thread's stream is scanned independently (in parallel across
    /// the active rayon pool); the per-thread index contributions are then
    /// merged serially in thread-id order, which reproduces the exact
    /// tie-breaking of a single sequential pass over `trace.threads`.
    pub fn build(trace: &Trace) -> Self {
        let n = trace.threads.len();
        let scanned: Vec<(Vec<Segment>, ThreadIndex)> =
            trace.threads.par_iter().map(scan_thread).collect();

        // CSR construction: size each dependence-index row up front, then
        // fill in thread-id order — the same order the old per-row `push`
        // used, so tie-breaking is reproduced exactly.
        let mut release_counts: Vec<usize> = Vec::new();
        let mut signal_counts: Vec<usize> = Vec::new();
        for (_, idx) in &scanned {
            for (lock, _) in &idx.releases {
                *slot(&mut release_counts, lock.index()) += 1;
            }
            for (cv, _, _) in &idx.signals {
                *slot(&mut signal_counts, cv.index()) += 1;
            }
        }
        let mut releases = CsrBuilder::new(&release_counts);
        let mut signals = CsrBuilder::new(&signal_counts);
        let mut last_arrivers: FxHashMap<(ObjId, u32), (Ts, ThreadId)> = FxHashMap::default();
        let mut signals_by_seq: FxHashMap<(ObjId, u64), (Ts, ThreadId)> = FxHashMap::default();
        let mut creates: Vec<Option<(ThreadId, Ts)>> = Vec::new();
        let mut exits: Vec<Option<Ts>> = vec![None; n];

        for (stream, (_, idx)) in trace.threads.iter().zip(&scanned) {
            let tid = stream.tid;
            for &(lock, ts) in &idx.releases {
                releases.push(lock.index(), (ts, tid));
            }
            for &(barrier, epoch, ts) in &idx.arrivals {
                let entry = last_arrivers.entry((barrier, epoch)).or_insert((ts, tid));
                if ts >= entry.0 {
                    *entry = (ts, tid);
                }
            }
            for &(cv, seq, ts) in &idx.signals {
                signals.push(cv.index(), (ts, tid, seq));
                if seq != SEQ_UNKNOWN {
                    signals_by_seq.insert((cv, seq), (ts, tid));
                }
            }
            for &(child, ts) in &idx.creates {
                slot(&mut creates, child.index()).get_or_insert((tid, ts));
            }
            if idx.exit.is_some() {
                *slot(&mut exits, tid.index()) = idx.exit;
            }
        }
        let mut releases = releases.finish();
        for r in 0..releases.num_rows() {
            releases.row_mut(r).sort_by_key(|&(ts, tid)| (ts, tid));
        }
        let mut signals = signals.finish();
        for r in 0..signals.num_rows() {
            signals.row_mut(r).sort_by_key(|&(ts, tid, seq)| (ts, tid, seq));
        }
        let segments = SlabArena::from_lists(scanned.into_iter().map(|(segs, _)| segs).collect());

        SegmentedTrace {
            segments,
            releases,
            last_arrivers,
            signals,
            signals_by_seq,
            creates,
            exits,
            trace_start: trace.start_ts(),
        }
    }

    /// Like [`SegmentedTrace::build`], but respecting the budget's
    /// wall-clock deadline at this stage boundary: if the deadline has
    /// already expired the scan is skipped entirely and every thread
    /// gets an empty segment list. Returns `true` in the second slot
    /// when that degradation happened.
    pub fn build_bounded(trace: &Trace, budget: &critlock_trace::Budget) -> (Self, bool) {
        if !budget.deadline_expired() {
            return (Self::build(trace), false);
        }
        let n = trace.threads.len();
        let degraded = SegmentedTrace {
            segments: SlabArena::empty_lists(n),
            releases: CsrIndex::default(),
            last_arrivers: FxHashMap::default(),
            signals: CsrIndex::default(),
            signals_by_seq: FxHashMap::default(),
            creates: Vec::new(),
            exits: vec![None; n],
            trace_start: trace.start_ts(),
        };
        (degraded, true)
    }

    /// The segment list of one thread; empty for unknown thread ids.
    pub fn thread(&self, tid: ThreadId) -> &[Segment] {
        self.segments.list(tid.index())
    }

    /// Number of threads (segment lists).
    pub fn num_threads(&self) -> usize {
        self.segments.num_lists()
    }

    /// Iterate the per-thread segment lists in thread-id order.
    pub fn iter_threads(&self) -> impl Iterator<Item = &[Segment]> + '_ {
        self.segments.iter_lists()
    }

    /// Total number of segments across all threads.
    pub fn num_segments(&self) -> usize {
        self.segments.total()
    }

    /// The latest release of `lock` at `ts <= at` by a thread other than
    /// `exclude`.
    pub fn latest_release_before(
        &self,
        lock: ObjId,
        at: Ts,
        exclude: ThreadId,
    ) -> Option<(Ts, ThreadId)> {
        let list = self.releases.row(lock.index());
        // Index of the first release with ts > at.
        let mut i = list.partition_point(|(ts, _)| *ts <= at);
        while i > 0 {
            i -= 1;
            let (ts, tid) = list[i];
            if tid != exclude {
                return Some((ts, tid));
            }
        }
        None
    }

    /// The last arriver of a barrier episode.
    pub fn last_arriver(&self, barrier: ObjId, epoch: u32) -> Option<(Ts, ThreadId)> {
        self.last_arrivers.get(&(barrier, epoch)).copied()
    }

    /// The signal that woke a condvar wait: exact by sequence if known,
    /// otherwise the latest signal at `ts <= wakeup` by another thread.
    pub fn matching_signal(
        &self,
        cv: ObjId,
        signal_seq: u64,
        wakeup: Ts,
        exclude: ThreadId,
    ) -> Option<(Ts, ThreadId)> {
        if signal_seq != SEQ_UNKNOWN {
            if let Some(&found) = self.signals_by_seq.get(&(cv, signal_seq)) {
                return Some(found);
            }
        }
        let list = self.signals.row(cv.index());
        let mut i = list.partition_point(|(ts, _, _)| *ts <= wakeup);
        while i > 0 {
            i -= 1;
            let (ts, tid, _) = list[i];
            if tid != exclude {
                return Some((ts, tid));
            }
        }
        None
    }

    /// The creation edge of a thread, if recorded.
    pub fn creator_of(&self, tid: ThreadId) -> Option<(ThreadId, Ts)> {
        self.creates.get(tid.index()).copied().flatten()
    }

    /// The exit timestamp of a thread.
    pub fn exit_ts(&self, tid: ThreadId) -> Option<Ts> {
        self.exits.get(tid.index()).copied().flatten()
    }

    /// The segment of `tid` whose running interval contains `ts`.
    ///
    /// When several segments touch `ts` (zero-length segments arise at
    /// barrier episodes whose arrival and departure coincide), the
    /// *earliest* containing segment is returned: an enabling event at
    /// `ts` was executed no later than the first segment that reaches
    /// `ts`, and preferring the earliest keeps the backward walk
    /// monotone — jumping to a later same-instant segment can cycle.
    pub fn segment_at(&self, tid: ThreadId, ts: Ts) -> Option<&Segment> {
        let segs = self.thread(tid);
        let i = segs.partition_point(|s| s.end < ts);
        if i < segs.len() && segs[i].start <= ts {
            return Some(&segs[i]);
        }
        // `ts` falls in a blocked gap or beyond the last segment (possible
        // in real-clock traces): fall back to the last segment starting at
        // or before it.
        let j = segs.partition_point(|s| s.start <= ts);
        if j == 0 {
            None
        } else {
            Some(&segs[j - 1])
        }
    }
}

/// Scan one thread's event stream once, producing both its segment list
/// and its index contributions.
fn scan_thread(stream: &critlock_trace::ThreadStream) -> (Vec<Segment>, ThreadIndex) {
    let tid = stream.tid;
    let mut segs: Vec<Segment> = Vec::new();
    let mut idx = ThreadIndex::default();
    let Some(first) = stream.events.first() else {
        return (segs, idx);
    };

    let mut seg_start: Ts = first.ts;
    let mut cause = StartCause::ThreadStart;
    // Block-begin timestamps for the pending blocking operations, one
    // `(lock, acquire_ts, contended)` entry per outstanding acquire.
    // Nesting depth is tiny, so a linear-scanned Vec beats any map. Plain
    // locks and rwlocks share the list (their ids never collide).
    let mut pending_lock: Vec<(ObjId, Ts, bool)> = Vec::new();
    let mut pending_barrier: Option<(ObjId, u32, Ts)> = None;
    let mut pending_cond: Option<(ObjId, Ts)> = None;
    let mut pending_join: Option<(ThreadId, Ts)> = None;

    let close_open = |segs: &mut Vec<Segment>,
                      seg_start: &mut Ts,
                      cause: &mut StartCause,
                      end: Ts,
                      resume: Ts,
                      new_cause: StartCause| {
        segs.push(Segment { tid, index: segs.len(), start: *seg_start, end, start_cause: *cause });
        *seg_start = resume;
        *cause = new_cause;
    };

    for ev in &stream.events {
        match ev.kind {
            EventKind::LockAcquire { lock } | EventKind::RwAcquire { lock, .. } => {
                // A re-acquire of an outstanding lock replaces its entry
                // (matching map-insert semantics).
                if let Some(pos) = pending_lock.iter().rposition(|p| p.0 == lock) {
                    pending_lock.remove(pos);
                }
                pending_lock.push((lock, ev.ts, false));
            }
            EventKind::LockContended { lock } | EventKind::RwContended { lock, .. } => {
                if let Some(p) = pending_lock.iter_mut().rev().find(|p| p.0 == lock) {
                    p.2 = true;
                }
            }
            EventKind::LockObtain { lock } | EventKind::RwObtain { lock, .. } => {
                if let Some(pos) = pending_lock.iter().rposition(|p| p.0 == lock) {
                    let (_, acq, contended) = pending_lock.remove(pos);
                    if contended {
                        // The thread blocked from the contention point
                        // (== acquire ts) until the obtain.
                        close_open(
                            &mut segs,
                            &mut seg_start,
                            &mut cause,
                            acq,
                            ev.ts,
                            StartCause::LockGranted { lock, acquire: acq },
                        );
                    }
                }
            }
            EventKind::LockRelease { lock } | EventKind::RwRelease { lock, .. } => {
                idx.releases.push((lock, ev.ts));
            }
            EventKind::CondSignal { cv, signal_seq }
            | EventKind::CondBroadcast { cv, signal_seq } => {
                idx.signals.push((cv, signal_seq, ev.ts));
            }
            EventKind::ThreadCreate { child } => {
                idx.creates.push((child, ev.ts));
            }
            EventKind::BarrierArrive { barrier, epoch } => {
                idx.arrivals.push((barrier, epoch, ev.ts));
                pending_barrier = Some((barrier, epoch, ev.ts));
            }
            EventKind::BarrierDepart { barrier, epoch } => {
                if let Some((b, e, arrive)) = pending_barrier.take() {
                    if b == barrier && e == epoch {
                        close_open(
                            &mut segs,
                            &mut seg_start,
                            &mut cause,
                            arrive,
                            ev.ts,
                            StartCause::BarrierDeparted { barrier, epoch, arrive },
                        );
                    }
                }
            }
            EventKind::CondWaitBegin { cv } => {
                pending_cond = Some((cv, ev.ts));
            }
            EventKind::CondWakeup { cv, signal_seq } => {
                if let Some((c, wait_begin)) = pending_cond.take() {
                    if c == cv {
                        close_open(
                            &mut segs,
                            &mut seg_start,
                            &mut cause,
                            wait_begin,
                            ev.ts,
                            StartCause::CondWoken { cv, signal_seq, wait_begin },
                        );
                    }
                }
            }
            EventKind::JoinBegin { child } => {
                pending_join = Some((child, ev.ts));
            }
            EventKind::JoinEnd { child } => {
                if let Some((c, begin)) = pending_join.take() {
                    if c == child {
                        close_open(
                            &mut segs,
                            &mut seg_start,
                            &mut cause,
                            begin,
                            ev.ts,
                            StartCause::JoinReturned { child, begin },
                        );
                    }
                }
            }
            EventKind::ThreadExit => {
                segs.push(Segment {
                    tid,
                    index: segs.len(),
                    start: seg_start,
                    end: ev.ts,
                    start_cause: cause,
                });
                idx.exit = Some(ev.ts);
            }
            _ => {}
        }
    }
    (segs, idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_trace::TraceBuilder;

    #[test]
    fn single_thread_one_segment() {
        let mut b = TraceBuilder::new("s");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        b.on(t0).work(2).cs(l, 3).work(1).exit();
        let t = b.build().unwrap();
        let st = SegmentedTrace::build(&t);
        assert_eq!(st.thread(ThreadId(0)).len(), 1);
        let seg = st.thread(ThreadId(0))[0];
        assert_eq!(seg.start, 0);
        assert_eq!(seg.end, 6);
        assert_eq!(seg.start_cause, StartCause::ThreadStart);
        assert_eq!(seg.duration(), 6);
    }

    #[test]
    fn contended_lock_splits_segment() {
        let mut b = TraceBuilder::new("s");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 4).exit_at(5);
        b.on(t1).work(1).cs_blocked(l, 4, 2).exit();
        let t = b.build().unwrap();
        let st = SegmentedTrace::build(&t);
        assert_eq!(st.thread(ThreadId(0)).len(), 1);
        assert_eq!(st.thread(ThreadId(1)).len(), 2);
        let s0 = st.thread(ThreadId(1))[0];
        let s1 = st.thread(ThreadId(1))[1];
        assert_eq!((s0.start, s0.end), (0, 1));
        assert_eq!((s1.start, s1.end), (4, 6));
        assert_eq!(s1.start_cause, StartCause::LockGranted { lock: l, acquire: 1 });
    }

    #[test]
    fn uncontended_lock_does_not_split() {
        let mut b = TraceBuilder::new("s");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        b.on(t0).cs(l, 2).work(1).cs(l, 2).exit();
        let t = b.build().unwrap();
        let st = SegmentedTrace::build(&t);
        assert_eq!(st.thread(ThreadId(0)).len(), 1);
    }

    #[test]
    fn barrier_splits_and_last_arriver_found() {
        let mut b = TraceBuilder::new("s");
        let bar = b.barrier("B");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).work(3).barrier(bar, 0, 5).work(1).exit();
        b.on(t1).work(5).barrier(bar, 0, 5).work(2).exit();
        let t = b.build().unwrap();
        let st = SegmentedTrace::build(&t);
        assert_eq!(st.thread(ThreadId(0)).len(), 2);
        assert_eq!(st.thread(ThreadId(1)).len(), 2);
        assert_eq!(st.last_arriver(bar, 0), Some((5, ThreadId(1))));
        let s = st.thread(ThreadId(0))[1];
        assert_eq!(s.start, 5);
        assert!(matches!(s.start_cause, StartCause::BarrierDeparted { arrive: 3, .. }));
    }

    #[test]
    fn release_lookup_excludes_self_and_respects_time() {
        let mut b = TraceBuilder::new("s");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 2).work(1).cs(l, 2).exit(); // releases at 2 and 5
        b.on(t1).work(10).cs(l, 1).exit(); // release at 11
        let t = b.build().unwrap();
        let st = SegmentedTrace::build(&t);
        assert_eq!(st.latest_release_before(l, 5, ThreadId(1)), Some((5, ThreadId(0))));
        assert_eq!(st.latest_release_before(l, 4, ThreadId(1)), Some((2, ThreadId(0))));
        // Excluding T0 skips both of its releases.
        assert_eq!(st.latest_release_before(l, 5, ThreadId(0)), None);
        assert_eq!(st.latest_release_before(l, 20, ThreadId(0)), Some((11, ThreadId(1))));
        assert_eq!(st.latest_release_before(l, 1, ThreadId(1)), None);
    }

    #[test]
    fn signal_matching_by_seq_and_time() {
        let mut b = TraceBuilder::new("s");
        let cv = b.condvar("CV");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).work(4).cond_signal(cv, 1).work(2).cond_signal(cv, 2).exit();
        b.on(t1).cond_wait(cv, 4, 1).work(1).cond_wait_unmatched(cv, 7).exit();
        let t = b.build().unwrap();
        let st = SegmentedTrace::build(&t);
        assert_eq!(st.matching_signal(cv, 1, 4, ThreadId(1)), Some((4, ThreadId(0))));
        // Unmatched: the latest signal at ts <= 7 is seq 2 at ts 6.
        assert_eq!(st.matching_signal(cv, SEQ_UNKNOWN, 7, ThreadId(1)), Some((6, ThreadId(0))));
        assert_eq!(st.matching_signal(cv, SEQ_UNKNOWN, 0, ThreadId(1)), None);
    }

    #[test]
    fn creates_and_exits_recorded() {
        let mut b = TraceBuilder::new("s");
        let main = b.thread("main", 0);
        let w = b.thread("w", 2);
        b.on(w).work(3).exit(); // exit at 5
        b.on(main).work(2).create(w).join(w, 5).exit_at(6);
        let t = b.build().unwrap();
        let st = SegmentedTrace::build(&t);
        assert_eq!(st.creator_of(ThreadId(1)), Some((ThreadId(0), 2)));
        assert_eq!(st.creator_of(ThreadId(0)), None);
        assert_eq!(st.exit_ts(ThreadId(1)), Some(5));
        // main: [0,2] then join-blocked, [5,6]
        assert_eq!(st.thread(ThreadId(0)).len(), 2);
        assert!(matches!(
            st.thread(ThreadId(0))[1].start_cause,
            StartCause::JoinReturned { child: ThreadId(1), begin: 2 }
        ));
    }

    #[test]
    fn segment_at_lookup() {
        let mut b = TraceBuilder::new("s");
        let bar = b.barrier("B");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).work(3).barrier(bar, 0, 5).work(5).exit();
        b.on(t1).work(5).barrier(bar, 0, 5).work(1).exit();
        let t = b.build().unwrap();
        let st = SegmentedTrace::build(&t);
        assert_eq!(st.segment_at(ThreadId(0), 2).unwrap().index, 0);
        assert_eq!(st.segment_at(ThreadId(0), 7).unwrap().index, 1);
        // Boundary: ts 5 belongs to the later segment (start <= ts).
        assert_eq!(st.segment_at(ThreadId(0), 5).unwrap().index, 1);
        assert_eq!(st.num_segments(), 4);
    }
}

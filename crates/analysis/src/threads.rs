//! Per-thread criticality.
//!
//! The paper's related work points at thread-criticality predictors
//! (Bhattacharjee & Martonosi) as consumers of this kind of information:
//! how much of the critical path each thread carries. The same
//! quantities also answer a practical tuning question — is one thread the
//! bottleneck (pipeline imbalance), or does the path hop between threads
//! (shared-resource contention)?

use crate::cp::CriticalPath;
use crate::segments::SegmentedTrace;
use critlock_trace::{ThreadId, Trace, Ts};
use serde::{Deserialize, Serialize};

/// Criticality of one thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadCriticality {
    /// The thread.
    pub tid: ThreadId,
    /// Its name, if recorded.
    pub name: Option<String>,
    /// Time this thread carries the critical path.
    pub cp_time: Ts,
    /// `cp_time` as a fraction of the critical-path length.
    pub cp_frac: f64,
    /// Number of distinct critical-path slices on this thread (how often
    /// the path enters it).
    pub slices: usize,
    /// Total running (non-blocked) time of the thread.
    pub busy: Ts,
    /// `busy / lifetime`.
    pub busy_frac: f64,
}

/// Per-thread criticality report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadReport {
    /// One row per thread, sorted by `cp_time` descending.
    pub threads: Vec<ThreadCriticality>,
    /// Number of distinct threads that carry any of the critical path.
    pub carriers: usize,
}

impl ThreadReport {
    /// The most critical thread.
    pub fn top(&self) -> Option<&ThreadCriticality> {
        self.threads.first().filter(|t| t.cp_time > 0)
    }

    /// Render as an aligned text table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>8} {:>7} {:>8}",
            "thread", "cp time", "cp %", "slices", "busy %"
        );
        for t in &self.threads {
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>7.2}% {:>7} {:>7.2}%",
                t.name.clone().unwrap_or_else(|| t.tid.to_string()),
                t.cp_time,
                t.cp_frac * 100.0,
                t.slices,
                t.busy_frac * 100.0,
            );
        }
        out
    }
}

/// Compute per-thread criticality for a trace and its critical path.
pub fn thread_report(trace: &Trace, cp: &CriticalPath) -> ThreadReport {
    let st = SegmentedTrace::build(trace);

    let mut threads: Vec<ThreadCriticality> = trace
        .threads
        .iter()
        .map(|stream| {
            let tid = stream.tid;
            let slices: Vec<_> = cp.slices.iter().filter(|s| s.tid == tid).collect();
            let cp_time: Ts = slices.iter().map(|s| s.duration()).sum();
            let busy: Ts = st.thread(tid).iter().map(|s| s.duration()).sum();
            let lifetime =
                stream.end_ts().unwrap_or(0).saturating_sub(stream.start_ts().unwrap_or(0));
            ThreadCriticality {
                tid,
                name: stream.name.clone(),
                cp_time,
                cp_frac: if cp.length > 0 { cp_time as f64 / cp.length as f64 } else { 0.0 },
                slices: slices.len(),
                busy,
                busy_frac: if lifetime > 0 { busy as f64 / lifetime as f64 } else { 0.0 },
            }
        })
        .collect();

    let carriers = threads.iter().filter(|t| t.cp_time > 0).count();
    threads.sort_by(|a, b| b.cp_time.cmp(&a.cp_time).then_with(|| a.tid.cmp(&b.tid)));
    ThreadReport { threads, carriers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::critical_path;
    use critlock_trace::TraceBuilder;

    #[test]
    fn per_thread_cp_shares_sum_to_one() {
        let mut b = TraceBuilder::new("threads");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 4).exit_at(5);
        b.on(t1).work(1).cs_blocked(l, 4, 2).work(3).exit(); // exit 9
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        let rep = thread_report(&t, &cp);
        let total: u64 = rep.threads.iter().map(|t| t.cp_time).sum();
        assert_eq!(total, cp.length);
        assert_eq!(rep.carriers, 2);
        // T1 carries [4,9] = 5, T0 carries [0,4] = 4.
        assert_eq!(rep.top().unwrap().tid, critlock_trace::ThreadId(1));
        assert_eq!(rep.top().unwrap().cp_time, 5);
        assert!(rep.render_text().contains("T0"));
    }

    #[test]
    fn laggard_carries_everything_in_imbalanced_run() {
        let mut b = TraceBuilder::new("imbalance");
        let t0 = b.thread("short", 0);
        let t1 = b.thread("long", 0);
        b.on(t0).work(5).exit();
        b.on(t1).work(50).exit();
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        let rep = thread_report(&t, &cp);
        assert_eq!(rep.carriers, 1);
        let top = rep.top().unwrap();
        assert_eq!(top.name.as_deref(), Some("long"));
        assert!((top.cp_frac - 1.0).abs() < 1e-9);
        // The short thread is fully busy yet carries nothing: criticality
        // and utilization are different questions.
        let short = rep.threads.iter().find(|t| t.name.as_deref() == Some("short")).unwrap();
        assert_eq!(short.cp_time, 0);
        assert!((short.busy_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_excludes_blocked_time() {
        let mut b = TraceBuilder::new("busy");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 10).exit_at(10);
        b.on(t1).cs_blocked(l, 10, 2).exit(); // blocked [0,10], runs [10,12]
        let t = b.build().unwrap();
        let cp = critical_path(&t);
        let rep = thread_report(&t, &cp);
        let t1r = rep.threads.iter().find(|t| t.tid == critlock_trace::ThreadId(1)).unwrap();
        assert_eq!(t1r.busy, 2);
        assert!((t1r.busy_frac - 2.0 / 12.0).abs() < 1e-9);
    }
}

//! Cross-thread consistency checks for traces and critical paths.
//!
//! [`critlock_trace::Trace::validate`] checks the *per-thread* event
//! protocol; this module adds the *cross-thread* invariants the analysis
//! relies on, and sanity checks on the analysis output itself. Violations
//! are reported as typed [`Anomaly`] warnings rather than errors: real-
//! clock traces can legitimately contain small anomalies (wakeup
//! latencies, clock skew between cores) that the analysis tolerates.
//! JSON reports carry the anomalies machine-readably; their
//! [`std::fmt::Display`] form is the human-readable warning text.

use crate::cp::CriticalPath;
use critlock_trace::{
    barrier_episodes, cond_wait_episodes, join_episodes, lock_episodes, rw_episodes, Anomaly,
    ClockDomain, EventKind, Trace,
};
use std::collections::HashMap;

/// Check cross-thread consistency of a trace. Returns typed warnings;
/// empty means clean.
pub fn check_trace(trace: &Trace) -> Vec<Anomaly> {
    let mut warnings = Vec::new();

    // Creation edges: child must start at or after its creation.
    let mut created: HashMap<u32, u64> = HashMap::new();
    for stream in &trace.threads {
        for ev in &stream.events {
            if let EventKind::ThreadCreate { child } = ev.kind {
                created.insert(child.0, ev.ts);
            }
        }
    }
    for stream in &trace.threads {
        if let (Some(&create_ts), Some(start_ts)) = (created.get(&stream.tid.0), stream.start_ts())
        {
            if start_ts < create_ts {
                warnings.push(Anomaly::StartBeforeCreation {
                    tid: stream.tid,
                    start: start_ts,
                    create: create_ts,
                });
            }
        }
    }

    // Join edges: join cannot return before the child exits.
    let exits: HashMap<u32, u64> =
        trace.threads.iter().filter_map(|s| s.end_ts().map(|ts| (s.tid.0, ts))).collect();
    for j in join_episodes(trace) {
        if let Some(&exit_ts) = exits.get(&j.child.0) {
            if j.end < exit_ts {
                warnings.push(Anomaly::JoinBeforeChildExit {
                    tid: j.tid,
                    child: j.child,
                    join_end: j.end,
                    child_exit: exit_ts,
                });
            }
        } else {
            warnings.push(Anomaly::JoinOfNonExitingThread { tid: j.tid, child: j.child });
        }
    }

    // Contended obtains must have an enabling release by another thread.
    let st = crate::segments::SegmentedTrace::build(trace);
    for ep in lock_episodes(trace) {
        if ep.contended && st.latest_release_before(ep.lock, ep.obtain, ep.tid).is_none() {
            warnings.push(Anomaly::OrphanContendedObtain {
                tid: ep.tid,
                lock: trace.object_name(ep.lock),
                obtain: ep.obtain,
                rw: false,
            });
        }
    }
    for ep in rw_episodes(trace) {
        if ep.contended && st.latest_release_before(ep.lock, ep.obtain, ep.tid).is_none() {
            warnings.push(Anomaly::OrphanContendedObtain {
                tid: ep.tid,
                lock: trace.object_name(ep.lock),
                obtain: ep.obtain,
                rw: true,
            });
        }
    }

    // Mutual exclusion: hold intervals of the same lock must not overlap
    // across threads (zero-length touching at handoff points is fine).
    let mut holds: HashMap<critlock_trace::ObjId, Vec<(u64, u64, u32)>> = HashMap::new();
    for ep in lock_episodes(trace) {
        holds.entry(ep.lock).or_default().push((ep.obtain, ep.release, ep.tid.0));
    }
    for (lock, mut ivs) in holds {
        ivs.sort();
        for w in ivs.windows(2) {
            let (_, end_a, tid_a) = w[0];
            let (start_b, _, tid_b) = w[1];
            if start_b < end_a && tid_a != tid_b {
                warnings.push(Anomaly::OverlappingHolds {
                    lock: trace.object_name(lock),
                    first: critlock_trace::ThreadId(tid_a),
                    second: critlock_trace::ThreadId(tid_b),
                    start: start_b,
                    end: end_a,
                });
            }
        }
    }

    // Reader-writer exclusion: a write hold may not overlap any other
    // hold of the same rwlock.
    let mut rw_holds: HashMap<critlock_trace::ObjId, Vec<(u64, u64, bool, u32)>> = HashMap::new();
    for ep in rw_episodes(trace) {
        rw_holds.entry(ep.lock).or_default().push((ep.obtain, ep.release, ep.write, ep.tid.0));
    }
    for (lock, mut ivs) in rw_holds {
        ivs.sort();
        for a in 0..ivs.len() {
            for b in (a + 1)..ivs.len() {
                let (sa, ea, wa, ta) = ivs[a];
                let (sb, eb, wb, tb) = ivs[b];
                if sb >= ea {
                    break;
                }
                if (wa || wb) && sb < ea && sa < eb && ta != tb {
                    warnings.push(Anomaly::RwWriteOverlap {
                        lock: trace.object_name(lock),
                        first: critlock_trace::ThreadId(ta),
                        second: critlock_trace::ThreadId(tb),
                    });
                }
            }
        }
    }

    // Barrier episodes: all participants of one (barrier, epoch) must
    // depart at the same time — the last arrival.
    let mut by_episode: HashMap<(u32, u32), (u64, u64)> = HashMap::new(); // (max arrive, depart)
    for ep in barrier_episodes(trace) {
        let e = by_episode.entry((ep.barrier.0, ep.epoch)).or_insert((0, ep.depart));
        e.0 = e.0.max(ep.arrive);
        if ep.depart != e.1 {
            warnings.push(Anomaly::InconsistentBarrierDeparts {
                barrier: ep.barrier,
                epoch: ep.epoch,
                depart: ep.depart,
                expected: e.1,
            });
        }
    }
    for ((b, epoch), (max_arrive, depart)) in by_episode {
        if depart < max_arrive {
            warnings.push(Anomaly::BarrierDepartBeforeArrival {
                barrier: critlock_trace::ObjId(b),
                epoch,
                depart,
                last_arrival: max_arrive,
            });
        }
    }

    // Condvar waits should not end before the trace's earliest matching
    // signal (weak check: only when a sequence number is present).
    let st_signals = critlock_trace::signal_records(trace);
    let by_seq: HashMap<(u32, u64), u64> = st_signals
        .iter()
        .filter(|s| s.signal_seq != critlock_trace::SEQ_UNKNOWN)
        .map(|s| ((s.cv.0, s.signal_seq), s.ts))
        .collect();
    for w in cond_wait_episodes(trace) {
        if w.signal_seq != critlock_trace::SEQ_UNKNOWN {
            match by_seq.get(&(w.cv.0, w.signal_seq)) {
                Some(&sig_ts) if w.wakeup < sig_ts => warnings.push(Anomaly::WakeupBeforeSignal {
                    tid: w.tid,
                    wakeup: w.wakeup,
                    signal_seq: w.signal_seq,
                    signal_ts: sig_ts,
                }),
                None => warnings.push(Anomaly::UnrecordedSignal {
                    tid: w.tid,
                    cv: w.cv,
                    signal_seq: w.signal_seq,
                }),
                _ => {}
            }
        }
    }

    warnings
}

/// Check the invariants of a computed critical path against its trace.
pub fn check_critical_path(trace: &Trace, cp: &CriticalPath) -> Vec<Anomaly> {
    let mut warnings = Vec::new();

    if cp.length > cp.makespan {
        warnings.push(Anomaly::PathLongerThanMakespan { length: cp.length, makespan: cp.makespan });
    }

    // Chronology and (for virtual-time traces) exact tiling.
    let strict = trace.meta.clock == ClockDomain::VirtualNs && cp.complete;
    if let Err(e) = cp.check_tiling(strict) {
        warnings.push(Anomaly::BrokenTiling { detail: e });
    }

    // Every slice must lie within its thread's lifetime.
    for s in &cp.slices {
        if let Some(stream) = trace.thread(s.tid) {
            let (start, end) =
                (stream.start_ts().unwrap_or(0), stream.end_ts().unwrap_or(u64::MAX));
            if s.start < start || s.end > end {
                warnings.push(Anomaly::SliceOutsideLifetime {
                    tid: s.tid,
                    slice_start: s.start,
                    slice_end: s.end,
                    start,
                    end,
                });
            }
        } else {
            warnings.push(Anomaly::SliceUnknownThread { tid: s.tid });
        }
    }

    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::critical_path;
    use critlock_trace::{Event, ThreadId, TraceBuilder};

    fn clean_trace() -> Trace {
        let mut b = TraceBuilder::new("clean");
        let l = b.lock("L");
        let bar = b.barrier("B");
        let main = b.thread("main", 0);
        let w = b.thread("w", 1);
        b.on(w).work(1).cs_blocked(l, 4, 2).barrier(bar, 0, 8).exit_at(9);
        b.on(main).create(w).cs(l, 4).work(4).barrier(bar, 0, 8).join(w, 9).exit_at(10);
        b.build().unwrap()
    }

    #[test]
    fn clean_trace_no_warnings() {
        let t = clean_trace();
        assert!(check_trace(&t).is_empty(), "{:?}", check_trace(&t));
        let cp = critical_path(&t);
        assert!(check_critical_path(&t, &cp).is_empty(), "{:?}", check_critical_path(&t, &cp));
    }

    #[test]
    fn child_starting_before_create_flagged() {
        let mut b = TraceBuilder::new("bad");
        let main = b.thread("main", 0);
        let w = b.thread("w", 0); // starts at 0 ...
        b.on(w).work(1).exit();
        b.on(main).work(5).create(w).exit_at(6); // ... created at 5
        let t = b.build().unwrap();
        let w = check_trace(&t);
        assert!(w.iter().any(|m| m.to_string().contains("before its creation")), "{w:?}");
        assert!(w.iter().any(|m| matches!(m, Anomaly::StartBeforeCreation { .. })));
    }

    #[test]
    fn contended_obtain_without_release_flagged() {
        let mut b = TraceBuilder::new("orphan");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        b.on(t0).cs_blocked(l, 5, 2).exit();
        let t = b.build().unwrap();
        let w = check_trace(&t);
        assert!(w.iter().any(|m| m.to_string().contains("no prior release")), "{w:?}");
        assert!(w.iter().any(|m| matches!(m, Anomaly::OrphanContendedObtain { rw: false, .. })));
    }

    #[test]
    fn overlapping_holds_flagged() {
        // Construct raw streams that individually validate but violate
        // mutual exclusion across threads.
        let mut t = Trace::new(critlock_trace::TraceMeta::named("overlap"));
        let l = t.register_object(critlock_trace::ObjKind::Lock, "L");
        for tid in 0..2u32 {
            let mut s = critlock_trace::ThreadStream::new(ThreadId(tid));
            s.events = vec![
                Event::new(0, EventKind::ThreadStart),
                Event::new(1, EventKind::LockAcquire { lock: l }),
                Event::new(1, EventKind::LockObtain { lock: l }),
                Event::new(5, EventKind::LockRelease { lock: l }),
                Event::new(6, EventKind::ThreadExit),
            ];
            t.push_thread(s);
        }
        t.validate().unwrap();
        let w = check_trace(&t);
        assert!(w.iter().any(|m| m.to_string().contains("held concurrently")), "{w:?}");
        assert!(w.iter().any(|m| matches!(m, Anomaly::OverlappingHolds { .. })));
    }

    #[test]
    fn join_of_never_exiting_child() {
        // A child with an empty stream.
        let mut t = Trace::new(critlock_trace::TraceMeta::named("nojoin"));
        let mut main = critlock_trace::ThreadStream::new(ThreadId(0));
        main.events = vec![
            Event::new(0, EventKind::ThreadStart),
            Event::new(1, EventKind::JoinBegin { child: ThreadId(1) }),
            Event::new(2, EventKind::JoinEnd { child: ThreadId(1) }),
            Event::new(3, EventKind::ThreadExit),
        ];
        t.push_thread(main);
        t.push_thread(critlock_trace::ThreadStream::new(ThreadId(1)));
        t.validate().unwrap();
        let w = check_trace(&t);
        assert!(w.iter().any(|m| m.to_string().contains("never exits")), "{w:?}");
        assert!(w.iter().any(|m| matches!(m, Anomaly::JoinOfNonExitingThread { .. })));
    }

    #[test]
    fn cp_invariants_on_clean_trace() {
        let t = clean_trace();
        let cp = critical_path(&t);
        assert!(cp.complete);
        assert_eq!(cp.length, t.makespan());
        assert!(check_critical_path(&t, &cp).is_empty());
    }

    #[test]
    fn corrupted_cp_flagged() {
        let t = clean_trace();
        let mut cp = critical_path(&t);
        // Inflate a slice beyond the thread lifetime.
        if let Some(s) = cp.slices.last_mut() {
            s.end += 1000;
        }
        cp.length += 1000;
        let w = check_critical_path(&t, &cp);
        assert!(!w.is_empty());
    }
}

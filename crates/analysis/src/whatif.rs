//! First-order what-if projection: how much would the completion time
//! improve if a given lock's critical sections were optimized?
//!
//! The projection removes the saved fraction of the lock's *critical-path*
//! time from the makespan. As the paper observes when validating on
//! Radiosity (§V.D.3), this is an **upper bound**: after an optimization,
//! segments that were off the critical path can move onto it, so the real
//! gain is smaller (they measured 7% end-to-end for a lock with 39% CP
//! time). For a simulated ground truth, re-run the workload through
//! `critlock-sim` with the optimization applied (see the bench harness).
//!
//! The module also computes the projection a *wait-time-based* tool would
//! make — assuming the saved wait time converts into saved completion time
//! — so the ranking disagreement between the two methods (the paper's core
//! claim) can be quantified.

use crate::metrics::AnalysisReport;
use critlock_trace::{ObjId, Ts};
use serde::{Deserialize, Serialize};

/// Projected effect of shrinking one lock's critical sections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    /// The lock being optimized.
    pub lock: ObjId,
    /// Its name.
    pub name: String,
    /// Remaining fraction of each critical section (0.5 = halved).
    pub factor: f64,
    /// Critical-path time saved: `cp_time * (1 - factor)`.
    pub cp_time_saved: Ts,
    /// Projected new makespan.
    pub projected_makespan: Ts,
    /// `makespan / projected_makespan`.
    pub projected_speedup: f64,
}

/// Projected effect under the classical wait-time model: the average
/// per-thread wait for the lock shrinks by `1 - factor` and is assumed to
/// convert 1:1 into completion time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaitProjection {
    /// The lock being optimized.
    pub lock: ObjId,
    /// Its name.
    pub name: String,
    /// Remaining fraction of wait time.
    pub factor: f64,
    /// Average per-thread wait time saved, in makespan units.
    pub wait_saved: Ts,
    /// Projected speedup under the wait-time model.
    pub projected_speedup: f64,
}

/// Project shrinking one lock's critical sections to `factor` of their
/// size (e.g. `factor = 0.5` halves every hot critical section).
pub fn project_shrink(report: &AnalysisReport, lock_name: &str, factor: f64) -> Option<Projection> {
    assert!((0.0..=1.0).contains(&factor), "factor must be in [0,1]");
    let l = report.lock_by_name(lock_name)?;
    let saved = (l.cp_time as f64 * (1.0 - factor)).round() as Ts;
    let saved = saved.min(report.makespan);
    let projected = report.makespan - saved;
    Some(Projection {
        lock: l.lock,
        name: l.name.clone(),
        factor,
        cp_time_saved: saved,
        projected_makespan: projected,
        projected_speedup: if projected > 0 {
            report.makespan as f64 / projected as f64
        } else {
            f64::INFINITY
        },
    })
}

/// Project every lock at the same shrink factor, sorted by projected
/// speedup descending — the optimization priority list critical lock
/// analysis recommends.
pub fn rank_targets(report: &AnalysisReport, factor: f64) -> Vec<Projection> {
    let mut out: Vec<Projection> =
        report.locks.iter().filter_map(|l| project_shrink(report, &l.name, factor)).collect();
    out.sort_by(|a, b| {
        b.projected_speedup
            .partial_cmp(&a.projected_speedup)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

/// The ranking a wait-time ("idleness") based tool would produce, for
/// contrast: locks sorted by average wait fraction.
pub fn rank_targets_by_wait(report: &AnalysisReport, factor: f64) -> Vec<WaitProjection> {
    let mut out: Vec<WaitProjection> = report
        .locks
        .iter()
        .map(|l| {
            let avg_wait = l.avg_wait_frac * report.makespan as f64;
            let saved = (avg_wait * (1.0 - factor)).round() as Ts;
            let saved = saved.min(report.makespan);
            let projected = report.makespan - saved;
            WaitProjection {
                lock: l.lock,
                name: l.name.clone(),
                factor,
                wait_saved: saved,
                projected_speedup: if projected > 0 {
                    report.makespan as f64 / projected as f64
                } else {
                    f64::INFINITY
                },
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.projected_speedup
            .partial_cmp(&a.projected_speedup)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

/// Do the two methods pick a different #1 optimization target? Returns
/// `(cp_choice, wait_choice)` when they disagree.
pub fn ranking_disagreement(report: &AnalysisReport) -> Option<(String, String)> {
    let cp = rank_targets(report, 0.5);
    let wait = rank_targets_by_wait(report, 0.5);
    match (cp.first(), wait.first()) {
        (Some(c), Some(w)) if c.name != w.name => Some((c.name.clone(), w.name.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::analyze;
    use critlock_trace::TraceBuilder;

    /// Build the paper's discriminating scenario: `hot` on the CP with no
    /// wait, `idle` heavily waited but off the CP.
    fn discriminating_report() -> AnalysisReport {
        let mut b = TraceBuilder::new("whatif");
        let hot = b.lock("hot");
        let idle = b.lock("idle");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        let t2 = b.thread("T2", 0);
        b.on(t0).cs(hot, 60).work(40).exit(); // exit 100, finishes last
        b.on(t1).cs(idle, 30).exit_at(40);
        b.on(t2).cs_blocked(idle, 30, 10).exit_at(45);
        analyze(&b.build().unwrap())
    }

    #[test]
    fn shrink_projection_numbers() {
        let rep = discriminating_report();
        let p = project_shrink(&rep, "hot", 0.5).unwrap();
        assert_eq!(p.cp_time_saved, 30);
        assert_eq!(p.projected_makespan, 70);
        assert!((p.projected_speedup - 100.0 / 70.0).abs() < 1e-9);

        // idle has zero CP time: no projected gain.
        let p = project_shrink(&rep, "idle", 0.5).unwrap();
        assert_eq!(p.cp_time_saved, 0);
        assert!((p.projected_speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn factor_one_is_noop() {
        let rep = discriminating_report();
        let p = project_shrink(&rep, "hot", 1.0).unwrap();
        assert_eq!(p.cp_time_saved, 0);
        assert_eq!(p.projected_makespan, rep.makespan);
    }

    #[test]
    fn factor_zero_removes_all_cp_time() {
        let rep = discriminating_report();
        let p = project_shrink(&rep, "hot", 0.0).unwrap();
        assert_eq!(p.cp_time_saved, 60);
        assert_eq!(p.projected_makespan, 40);
    }

    #[test]
    fn unknown_lock_is_none() {
        let rep = discriminating_report();
        assert!(project_shrink(&rep, "nope", 0.5).is_none());
    }

    #[test]
    fn methods_disagree_on_this_scenario() {
        let rep = discriminating_report();
        let cp_rank = rank_targets(&rep, 0.5);
        assert_eq!(cp_rank[0].name, "hot");
        let wait_rank = rank_targets_by_wait(&rep, 0.5);
        assert_eq!(wait_rank[0].name, "idle");
        let (c, w) = ranking_disagreement(&rep).expect("methods should disagree");
        assert_eq!(c, "hot");
        assert_eq!(w, "idle");
    }

    #[test]
    fn agreement_when_one_lock() {
        let mut b = TraceBuilder::new("agree");
        let l = b.lock("only");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 10).exit_at(11);
        b.on(t1).cs_blocked(l, 10, 10).exit(); // exit 20
        let rep = analyze(&b.build().unwrap());
        assert!(ranking_disagreement(&rep).is_none());
    }

    #[test]
    #[should_panic(expected = "factor must be in [0,1]")]
    fn invalid_factor_panics() {
        let rep = discriminating_report();
        let _ = project_shrink(&rep, "hot", 1.5);
    }
}

//! Phase-window analysis.
//!
//! The paper profiles "the parallel phase of Radiosity" (§V.D), not the
//! whole process: initialization and teardown would dilute every
//! statistic. This module clips a trace to a time window — repairing the
//! event protocol at the cut edges — so the standard analysis can run on
//! any phase, typically delimited by [`critlock_trace::EventKind::Marker`]
//! events.
//!
//! Clip semantics at the window edges:
//!
//! * threads alive in the window get synthetic `ThreadStart`/`ThreadExit`
//!   records at the boundaries;
//! * locks (and rwlocks) held across the leading edge get synthetic
//!   acquire/obtain records at the window start, so their in-window hold
//!   time is preserved;
//! * waits still pending at the trailing edge are dropped (their blocked
//!   time has no enabling release inside the window);
//! * barrier arrivals pending at the trailing edge depart at the window
//!   end, keeping episodes consistent across threads.

use crate::digest::digest_window;
use crate::metrics::{analyze, AnalysisReport};
use critlock_trace::rollup::WindowDigest;
use critlock_trace::{Event, EventKind, ObjId, ThreadStream, Trace, Ts};
use std::collections::VecDeque;

/// Clip a trace to the window `[lo, hi]`.
pub fn clip(trace: &Trace, lo: Ts, hi: Ts) -> Trace {
    assert!(lo <= hi, "window must be ordered");
    let mut out = Trace::new(trace.meta.clone());
    out.meta.params.insert("window_lo".into(), lo.to_string());
    out.meta.params.insert("window_hi".into(), hi.to_string());
    out.objects = trace.objects.clone();
    for stream in &trace.threads {
        out.threads.push(clip_stream(stream, lo, hi));
    }
    out
}

fn clip_stream(stream: &ThreadStream, lo: Ts, hi: Ts) -> ThreadStream {
    let mut cs = ThreadStream::new(stream.tid);
    cs.name = stream.name.clone();

    let (Some(start), Some(end)) = (stream.start_ts(), stream.end_ts()) else {
        return cs;
    };
    // Entirely outside the window: an empty stream keeps ids dense.
    if end < lo || start > hi {
        return cs;
    }

    // Pass 1: pre-window state. Held locks in obtain order.
    let mut held: Vec<(ObjId, bool, bool)> = Vec::new(); // (lock, write, is_rw)
    let mut in_barrier: Option<(ObjId, u32)> = None;
    let mut in_wait = false;
    let mut first_in_window = stream.events.len();
    for (i, ev) in stream.events.iter().enumerate() {
        if ev.ts >= lo {
            first_in_window = i;
            break;
        }
        match ev.kind {
            EventKind::LockObtain { lock } => held.push((lock, false, false)),
            EventKind::RwObtain { lock, write } => held.push((lock, write, true)),
            EventKind::LockRelease { lock } | EventKind::RwRelease { lock, .. } => {
                if let Some(pos) = held.iter().rposition(|&(l, _, _)| l == lock) {
                    held.remove(pos);
                }
            }
            EventKind::BarrierArrive { barrier, epoch } => in_barrier = Some((barrier, epoch)),
            EventKind::BarrierDepart { .. } => in_barrier = None,
            EventKind::CondWaitBegin { .. } => in_wait = true,
            EventKind::CondWakeup { .. } => in_wait = false,
            _ => {}
        }
    }

    // Prologue: re-materialize carried-in state at the leading edge.
    let mut body: Vec<Event> = Vec::new();
    for &(lock, write, is_rw) in &held {
        if is_rw {
            body.push(Event::new(lo, EventKind::RwAcquire { lock, write }));
            body.push(Event::new(lo, EventKind::RwObtain { lock, write }));
        } else {
            body.push(Event::new(lo, EventKind::LockAcquire { lock }));
            body.push(Event::new(lo, EventKind::LockObtain { lock }));
        }
    }
    if let Some((barrier, epoch)) = in_barrier {
        body.push(Event::new(lo, EventKind::BarrierArrive { barrier, epoch }));
    }

    // Pass 2: in-window events. Pending blocking prologues are tracked by
    // body index so they can be dropped if their completion lies past hi.
    let mut pending_acq: Vec<(ObjId, Vec<usize>)> = Vec::new();
    let mut pending_wait: Option<Vec<usize>> = None;
    let mut pending_join: Option<usize> = None;

    for ev in &stream.events[first_in_window..] {
        if ev.ts > hi {
            break;
        }
        match ev.kind {
            EventKind::ThreadStart | EventKind::ThreadExit => {
                // Re-synthesized at the boundaries below.
                continue;
            }
            EventKind::LockAcquire { lock } | EventKind::RwAcquire { lock, .. } => {
                pending_acq.push((lock, vec![body.len()]));
            }
            EventKind::LockContended { lock } | EventKind::RwContended { lock, .. } => {
                if let Some(p) = pending_acq.iter_mut().rev().find(|p| p.0 == lock) {
                    p.1.push(body.len());
                }
            }
            EventKind::LockObtain { lock } => {
                if let Some(pos) = pending_acq.iter().rposition(|p| p.0 == lock) {
                    pending_acq.remove(pos);
                } else {
                    // Requested before the window: the wait crossed the
                    // leading edge, so the request is re-issued at lo.
                    body.push(Event::new(lo, EventKind::LockAcquire { lock }));
                    if ev.ts > lo {
                        body.push(Event::new(lo, EventKind::LockContended { lock }));
                    }
                }
                held.push((lock, false, false));
            }
            EventKind::RwObtain { lock, write } => {
                if let Some(pos) = pending_acq.iter().rposition(|p| p.0 == lock) {
                    pending_acq.remove(pos);
                } else {
                    body.push(Event::new(lo, EventKind::RwAcquire { lock, write }));
                    if ev.ts > lo {
                        body.push(Event::new(lo, EventKind::RwContended { lock, write }));
                    }
                }
                held.push((lock, write, true));
            }
            EventKind::LockRelease { lock } | EventKind::RwRelease { lock, .. } => {
                if let Some(pos) = held.iter().rposition(|&(l, _, _)| l == lock) {
                    held.remove(pos);
                }
            }
            EventKind::BarrierArrive { barrier, epoch } => {
                in_barrier = Some((barrier, epoch));
            }
            EventKind::BarrierDepart { .. } => {
                in_barrier = None;
            }
            EventKind::CondWaitBegin { .. } => {
                pending_wait = Some(vec![body.len()]);
                in_wait = true;
            }
            EventKind::CondWakeup { .. } => {
                if in_wait && pending_wait.is_none() {
                    // Wait began before the window; represent the resume as
                    // plain running time (no wait-begin edge available).
                    in_wait = false;
                    continue;
                }
                pending_wait = None;
                in_wait = false;
            }
            EventKind::JoinBegin { .. } => pending_join = Some(body.len()),
            EventKind::JoinEnd { .. } if pending_join.take().is_none() => continue,
            EventKind::JoinEnd { .. } => {}
            _ => {}
        }
        body.push(*ev);
    }

    // Trailing repairs: drop pending blocking prologues whose completion
    // lies beyond the window.
    let mut drop_idx: Vec<usize> = Vec::new();
    for (_, idxs) in pending_acq {
        drop_idx.extend(idxs);
    }
    if let Some(idxs) = pending_wait {
        drop_idx.extend(idxs);
    }
    if let Some(idx) = pending_join {
        drop_idx.push(idx);
    }
    drop_idx.sort_unstable();
    for idx in drop_idx.into_iter().rev() {
        body.remove(idx);
    }

    // Assemble with boundary lifecycle events.
    let w_start = start.max(lo);
    let w_end = end.min(hi).max(w_start);
    let mut events = Vec::with_capacity(body.len() + held.len() + 4);
    events.push(Event::new(w_start, EventKind::ThreadStart));
    events.extend(body);
    // Close holds still open at the trailing edge.
    for &(lock, write, is_rw) in held.iter().rev() {
        let kind = if is_rw {
            EventKind::RwRelease { lock, write }
        } else {
            EventKind::LockRelease { lock }
        };
        events.push(Event::new(w_end, kind));
    }
    if let Some((barrier, epoch)) = in_barrier {
        events.push(Event::new(w_end, EventKind::BarrierDepart { barrier, epoch }));
    }
    events.push(Event::new(w_end, EventKind::ThreadExit));
    cs.events = events;
    cs
}

/// A bounded ring of *closed* sliding-window digests over a live trace.
///
/// Time is divided into aligned spans `[k·width, (k+1)·width]` (inclusive
/// bounds, matching [`clip`]). Window `k` **closes** once the caller's
/// conservative watermark — a timestamp no future event can precede —
/// moves strictly past its trailing edge; a closed window is clipped and
/// analyzed exactly once and its digest cached, so steady-state per-frame
/// cost is independent of session history. The ring keeps the most recent
/// `cap` closed windows ("critical locks over the last N seconds"); when
/// the watermark jumps far ahead, windows that would immediately fall off
/// the ring are skipped, never analyzed.
///
/// Invariants:
/// * every stored digest covers `[index·width, (index+1)·width]` with
///   consecutive indices ending at `next_index - 1`;
/// * a stored digest equals `analyze(&clip(trace, lo, hi))` of the final
///   trace — guaranteed by only closing below the watermark, and restored
///   by [`recompute`] when the caller detects a late event below
///   [`closed_lo`] (the ring itself cannot see ingestion order).
///
/// [`recompute`]: WindowRing::recompute
/// [`closed_lo`]: WindowRing::closed_lo
#[derive(Debug, Clone)]
pub struct WindowRing {
    width: Ts,
    cap: usize,
    next_index: u64,
    windows: VecDeque<WindowDigest>,
}

impl WindowRing {
    /// A ring of at most `cap` windows of `width` time units each.
    /// `width` must be positive, `cap` at least 1.
    pub fn new(width: Ts, cap: usize) -> Self {
        assert!(width > 0, "window width must be positive");
        assert!(cap > 0, "window ring capacity must be positive");
        Self { width, cap, next_index: 0, windows: VecDeque::new() }
    }

    /// Rebuild a ring from externally persisted state (a durable
    /// checkpoint): the configured `width`/`cap`, the next window ordinal
    /// to close, and the retained digests oldest first. Digests beyond
    /// `cap` are dropped from the front, mirroring normal eviction.
    pub fn restore(width: Ts, cap: usize, next_index: u64, digests: Vec<WindowDigest>) -> Self {
        assert!(width > 0, "window width must be positive");
        assert!(cap > 0, "window ring capacity must be positive");
        let mut windows: VecDeque<WindowDigest> = digests.into();
        while windows.len() > cap {
            windows.pop_front();
        }
        Self { width, cap, next_index, windows }
    }

    /// The configured window width.
    pub fn width(&self) -> Ts {
        self.width
    }

    /// Ordinal of the next window to close — persisted by checkpoints so
    /// [`restore`](WindowRing::restore) resumes exactly where it left off.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// First timestamp not yet covered by a closed window: an event below
    /// this lands inside closed territory and requires [`recompute`].
    ///
    /// [`recompute`]: WindowRing::recompute
    pub fn closed_lo(&self) -> Ts {
        self.next_index.saturating_mul(self.width)
    }

    /// The closed windows currently retained, oldest first.
    pub fn closed(&self) -> impl Iterator<Item = &WindowDigest> {
        self.windows.iter()
    }

    /// The most recently closed window.
    pub fn latest(&self) -> Option<&WindowDigest> {
        self.windows.back()
    }

    /// Close every window whose trailing edge lies strictly below
    /// `watermark` (and that starts at or before the trace's last event),
    /// clipping and analyzing each exactly once. Pass `Ts::MAX` once the
    /// session has ended to close through the final event.
    pub fn advance(&mut self, trace: &Trace, watermark: Ts) {
        if trace.num_events() == 0 || watermark == 0 {
            return;
        }
        let end = trace.end_ts();
        // close(i) ⟺ (i+1)·width < watermark  ∧  i·width ≤ end
        let by_wm = match ((watermark - 1) / self.width).checked_sub(1) {
            Some(i) => i,
            None => return,
        };
        let last = by_wm.min(end / self.width);
        if last < self.next_index {
            return;
        }
        // Windows that would be evicted before anyone could read them are
        // skipped outright.
        let start = (last + 1).saturating_sub(self.cap as u64).max(self.next_index);
        self.next_index = start;
        for index in start..=last {
            let digest = self.compute(trace, index);
            self.windows.push_back(digest);
            while self.windows.len() > self.cap {
                self.windows.pop_front();
            }
            self.next_index = index + 1;
        }
    }

    /// Re-derive every retained digest from the (re-assembled) trace —
    /// the full-rebuild fallback for out-of-order arrivals that landed
    /// below [`closed_lo`](WindowRing::closed_lo).
    pub fn recompute(&mut self, trace: &Trace) {
        let indices: Vec<u64> = self.windows.iter().map(|w| w.index).collect();
        self.windows.clear();
        for index in indices {
            let digest = self.compute(trace, index);
            self.windows.push_back(digest);
        }
    }

    fn compute(&self, trace: &Trace, index: u64) -> WindowDigest {
        let lo = index.saturating_mul(self.width);
        let hi = lo.saturating_add(self.width);
        let report = analyze(&clip(trace, lo, hi));
        digest_window(index, lo, hi, &report)
    }
}

/// The time window spanned by a named marker: from its first to its last
/// occurrence across all threads. Returns `None` when the marker never
/// fires (or fires only once — a single instant is not a window).
pub fn marker_window(trace: &Trace, marker_name: &str) -> Option<(Ts, Ts)> {
    let id = trace.object_by_name(marker_name)?;
    let mut times: Vec<Ts> = Vec::new();
    for stream in &trace.threads {
        for ev in &stream.events {
            if ev.kind == (EventKind::Marker { id }) {
                times.push(ev.ts);
            }
        }
    }
    let (lo, hi) = (times.iter().min()?, times.iter().max()?);
    if lo < hi {
        Some((*lo, *hi))
    } else {
        None
    }
}

/// Clip the trace to the window of a named marker and analyze it.
pub fn analyze_phase(trace: &Trace, marker_name: &str) -> Option<AnalysisReport> {
    let (lo, hi) = marker_window(trace, marker_name)?;
    let clipped = clip(trace, lo, hi);
    Some(analyze(&clipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_trace::TraceBuilder;

    fn phased_trace() -> Trace {
        let mut b = TraceBuilder::new("phased");
        let l = b.lock("L");
        let m = b.marker("phase");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        // Init [0,10] (serial, lock-free on T0 only), parallel phase
        // [10,30] with contention, teardown [30,40].
        b.on(t0)
            .work(10)
            .mark(m)
            .cs(l, 8) // [10,18]
            .work(2)
            .mark(m) // at 20... adjust below
            .work(20)
            .exit(); // exit 40
        b.on(t1).work(11).cs_blocked(l, 18, 6).exit_at(30);
        b.build().unwrap()
    }

    #[test]
    fn marker_window_found() {
        let t = phased_trace();
        let (lo, hi) = marker_window(&t, "phase").unwrap();
        assert_eq!(lo, 10);
        assert_eq!(hi, 20);
        assert!(marker_window(&t, "nope").is_none());
    }

    #[test]
    fn clip_preserves_protocol_and_window_times() {
        let t = phased_trace();
        let c = clip(&t, 10, 20);
        c.validate().expect("clipped trace must validate");
        assert_eq!(c.start_ts(), 10);
        assert_eq!(c.end_ts(), 20);
        // The contended episode's wait is inside the window.
        let eps = critlock_trace::lock_episodes(&c);
        assert_eq!(eps.len(), 2);
        let blocked = eps.iter().find(|e| e.contended).unwrap();
        assert_eq!(blocked.acquire, 11);
        assert_eq!(blocked.obtain, 18);
        // Its hold is clipped at the window end.
        assert_eq!(blocked.release, 20);
    }

    #[test]
    fn clip_synthesizes_holds_crossing_leading_edge() {
        let mut b = TraceBuilder::new("crossing");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        b.on(t0).acquire(l).work(30).release(l).work(10).exit();
        let t = b.build().unwrap();
        // Window [10,20] lies fully inside the hold [0,30].
        let c = clip(&t, 10, 20);
        c.validate().unwrap();
        let eps = critlock_trace::lock_episodes(&c);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].obtain, 10);
        assert_eq!(eps[0].release, 20);
    }

    #[test]
    fn clip_drops_pending_waits_at_trailing_edge() {
        let mut b = TraceBuilder::new("pending");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 30).exit_at(35);
        b.on(t1).work(5).cs_blocked(l, 30, 2).exit_at(35);
        let t = b.build().unwrap();
        // Window ends while T1 is still waiting.
        let c = clip(&t, 0, 20);
        c.validate().unwrap();
        let eps = critlock_trace::lock_episodes(&c);
        // Only T0's (clipped) hold remains.
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].tid, critlock_trace::ThreadId(0));
    }

    #[test]
    fn phase_analysis_sees_only_in_window_contention() {
        let t = phased_trace();
        let full = analyze(&t);
        let phase = analyze_phase(&t, "phase").unwrap();
        // The phase is 10 units shorter at each end.
        assert_eq!(phase.makespan, 10);
        assert!(phase.cp_complete);
        // The lock's share of the phase path is much larger than its share
        // of the whole run (init/teardown dilute it).
        let full_l = full.lock_by_name("L").unwrap();
        let phase_l = phase.lock_by_name("L").unwrap();
        assert!(phase_l.cp_time_frac > full_l.cp_time_frac);
    }

    #[test]
    fn rw_holds_cross_edges() {
        let mut b = TraceBuilder::new("rw-cross");
        let r = b.rwlock("R");
        let t0 = b.thread("T0", 0);
        b.on(t0).rw(r, true, 30).work(5).exit();
        let t = b.build().unwrap();
        let c = clip(&t, 5, 10);
        c.validate().unwrap();
        let eps = critlock_trace::rw_episodes(&c);
        assert_eq!(eps.len(), 1);
        assert!(eps[0].write);
        assert_eq!((eps[0].obtain, eps[0].release), (5, 10));
    }

    #[test]
    fn barrier_crossing_edges() {
        let mut b = TraceBuilder::new("bar-cross");
        let bar = b.barrier("B");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).work(3).barrier(bar, 0, 8).work(10).exit();
        b.on(t1).work(8).barrier(bar, 0, 8).work(2).exit();
        let t = b.build().unwrap();
        // Leading edge inside the wait: arrive synthesized at lo.
        let c = clip(&t, 5, 15);
        c.validate().unwrap();
        // Trailing edge inside the wait: depart synthesized at hi.
        let c2 = clip(&t, 0, 6);
        c2.validate().unwrap();
    }

    #[test]
    fn empty_window_is_valid() {
        let t = phased_trace();
        let c = clip(&t, 1000, 2000);
        c.validate().unwrap();
        assert_eq!(c.num_events(), 0);
    }

    #[test]
    fn ring_closes_only_below_watermark_and_matches_clip_oracle() {
        let t = phased_trace(); // events span [0, 40]
        let mut ring = WindowRing::new(10, 8);
        ring.advance(&t, 0);
        assert_eq!(ring.closed().count(), 0);

        // Watermark 21 guarantees no future event at ts <= 20, so windows
        // [0,10] and [10,20] close; [20,30] stays open (an event at 21
        // would belong to it).
        ring.advance(&t, 21);
        let idx: Vec<u64> = ring.closed().map(|w| w.index).collect();
        assert_eq!(idx, [0, 1]);
        assert_eq!(ring.closed_lo(), 20);

        // Watermark past everything: closes through the last event.
        ring.advance(&t, Ts::MAX);
        let idx: Vec<u64> = ring.closed().map(|w| w.index).collect();
        assert_eq!(idx, [0, 1, 2, 3, 4]);

        // Oracle: every closed window equals clip + analyze + digest.
        for w in ring.closed() {
            let report = analyze(&clip(&t, w.lo, w.hi));
            let expect = crate::digest::digest_window(w.index, w.lo, w.hi, &report);
            assert_eq!(*w, expect);
        }
        // The parallel phase's contention shows up in its windows only.
        let w1 = ring.closed().find(|w| w.index == 1).unwrap();
        assert!(w1.locks.iter().any(|l| l.name == "L"));
        let w3 = ring.closed().find(|w| w.index == 3).unwrap();
        assert!(w3.locks.is_empty(), "teardown window has no lock activity");
    }

    #[test]
    fn ring_caps_retention_and_skips_evicted_windows() {
        let mut b = TraceBuilder::new("long");
        let t0 = b.thread("T0", 0);
        b.on(t0).work(1000).exit();
        let t = b.build().unwrap();
        let mut ring = WindowRing::new(10, 4);
        ring.advance(&t, Ts::MAX);
        let idx: Vec<u64> = ring.closed().map(|w| w.index).collect();
        // 0..=100 close; only the last 4 are retained (and only those
        // were ever analyzed).
        assert_eq!(idx, [97, 98, 99, 100]);
        assert_eq!(ring.closed_lo(), 1010);
        assert_eq!(ring.latest().unwrap().index, 100);
    }

    #[test]
    fn ring_recompute_rederives_from_trace() {
        let t = phased_trace();
        let mut ring = WindowRing::new(10, 8);
        ring.advance(&t, Ts::MAX);
        let before: Vec<WindowDigest> = ring.closed().cloned().collect();
        ring.recompute(&t);
        let after: Vec<WindowDigest> = ring.closed().cloned().collect();
        assert_eq!(before, after, "recompute from the same trace is identity");
    }

    #[test]
    fn ring_advance_is_incremental_and_idempotent() {
        let t = phased_trace();
        let mut step = WindowRing::new(10, 8);
        for wm in 0..=45 {
            step.advance(&t, wm);
            step.advance(&t, wm); // same watermark twice: no-op
        }
        step.advance(&t, Ts::MAX);
        let mut once = WindowRing::new(10, 8);
        once.advance(&t, Ts::MAX);
        let a: Vec<WindowDigest> = step.closed().cloned().collect();
        let b: Vec<WindowDigest> = once.closed().cloned().collect();
        assert_eq!(a, b);
    }
}

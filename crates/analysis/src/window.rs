//! Phase-window analysis.
//!
//! The paper profiles "the parallel phase of Radiosity" (§V.D), not the
//! whole process: initialization and teardown would dilute every
//! statistic. This module clips a trace to a time window — repairing the
//! event protocol at the cut edges — so the standard analysis can run on
//! any phase, typically delimited by [`critlock_trace::EventKind::Marker`]
//! events.
//!
//! Clip semantics at the window edges:
//!
//! * threads alive in the window get synthetic `ThreadStart`/`ThreadExit`
//!   records at the boundaries;
//! * locks (and rwlocks) held across the leading edge get synthetic
//!   acquire/obtain records at the window start, so their in-window hold
//!   time is preserved;
//! * waits still pending at the trailing edge are dropped (their blocked
//!   time has no enabling release inside the window);
//! * barrier arrivals pending at the trailing edge depart at the window
//!   end, keeping episodes consistent across threads.

use crate::metrics::{analyze, AnalysisReport};
use critlock_trace::{Event, EventKind, ObjId, ThreadStream, Trace, Ts};

/// Clip a trace to the window `[lo, hi]`.
pub fn clip(trace: &Trace, lo: Ts, hi: Ts) -> Trace {
    assert!(lo <= hi, "window must be ordered");
    let mut out = Trace::new(trace.meta.clone());
    out.meta.params.insert("window_lo".into(), lo.to_string());
    out.meta.params.insert("window_hi".into(), hi.to_string());
    out.objects = trace.objects.clone();
    for stream in &trace.threads {
        out.threads.push(clip_stream(stream, lo, hi));
    }
    out
}

fn clip_stream(stream: &ThreadStream, lo: Ts, hi: Ts) -> ThreadStream {
    let mut cs = ThreadStream::new(stream.tid);
    cs.name = stream.name.clone();

    let (Some(start), Some(end)) = (stream.start_ts(), stream.end_ts()) else {
        return cs;
    };
    // Entirely outside the window: an empty stream keeps ids dense.
    if end < lo || start > hi {
        return cs;
    }

    // Pass 1: pre-window state. Held locks in obtain order.
    let mut held: Vec<(ObjId, bool, bool)> = Vec::new(); // (lock, write, is_rw)
    let mut in_barrier: Option<(ObjId, u32)> = None;
    let mut in_wait = false;
    let mut first_in_window = stream.events.len();
    for (i, ev) in stream.events.iter().enumerate() {
        if ev.ts >= lo {
            first_in_window = i;
            break;
        }
        match ev.kind {
            EventKind::LockObtain { lock } => held.push((lock, false, false)),
            EventKind::RwObtain { lock, write } => held.push((lock, write, true)),
            EventKind::LockRelease { lock } | EventKind::RwRelease { lock, .. } => {
                if let Some(pos) = held.iter().rposition(|&(l, _, _)| l == lock) {
                    held.remove(pos);
                }
            }
            EventKind::BarrierArrive { barrier, epoch } => in_barrier = Some((barrier, epoch)),
            EventKind::BarrierDepart { .. } => in_barrier = None,
            EventKind::CondWaitBegin { .. } => in_wait = true,
            EventKind::CondWakeup { .. } => in_wait = false,
            _ => {}
        }
    }

    // Prologue: re-materialize carried-in state at the leading edge.
    let mut body: Vec<Event> = Vec::new();
    for &(lock, write, is_rw) in &held {
        if is_rw {
            body.push(Event::new(lo, EventKind::RwAcquire { lock, write }));
            body.push(Event::new(lo, EventKind::RwObtain { lock, write }));
        } else {
            body.push(Event::new(lo, EventKind::LockAcquire { lock }));
            body.push(Event::new(lo, EventKind::LockObtain { lock }));
        }
    }
    if let Some((barrier, epoch)) = in_barrier {
        body.push(Event::new(lo, EventKind::BarrierArrive { barrier, epoch }));
    }

    // Pass 2: in-window events. Pending blocking prologues are tracked by
    // body index so they can be dropped if their completion lies past hi.
    let mut pending_acq: Vec<(ObjId, Vec<usize>)> = Vec::new();
    let mut pending_wait: Option<Vec<usize>> = None;
    let mut pending_join: Option<usize> = None;

    for ev in &stream.events[first_in_window..] {
        if ev.ts > hi {
            break;
        }
        match ev.kind {
            EventKind::ThreadStart | EventKind::ThreadExit => {
                // Re-synthesized at the boundaries below.
                continue;
            }
            EventKind::LockAcquire { lock } | EventKind::RwAcquire { lock, .. } => {
                pending_acq.push((lock, vec![body.len()]));
            }
            EventKind::LockContended { lock } | EventKind::RwContended { lock, .. } => {
                if let Some(p) = pending_acq.iter_mut().rev().find(|p| p.0 == lock) {
                    p.1.push(body.len());
                }
            }
            EventKind::LockObtain { lock } => {
                if let Some(pos) = pending_acq.iter().rposition(|p| p.0 == lock) {
                    pending_acq.remove(pos);
                } else {
                    // Requested before the window: the wait crossed the
                    // leading edge, so the request is re-issued at lo.
                    body.push(Event::new(lo, EventKind::LockAcquire { lock }));
                    if ev.ts > lo {
                        body.push(Event::new(lo, EventKind::LockContended { lock }));
                    }
                }
                held.push((lock, false, false));
            }
            EventKind::RwObtain { lock, write } => {
                if let Some(pos) = pending_acq.iter().rposition(|p| p.0 == lock) {
                    pending_acq.remove(pos);
                } else {
                    body.push(Event::new(lo, EventKind::RwAcquire { lock, write }));
                    if ev.ts > lo {
                        body.push(Event::new(lo, EventKind::RwContended { lock, write }));
                    }
                }
                held.push((lock, write, true));
            }
            EventKind::LockRelease { lock } | EventKind::RwRelease { lock, .. } => {
                if let Some(pos) = held.iter().rposition(|&(l, _, _)| l == lock) {
                    held.remove(pos);
                }
            }
            EventKind::BarrierArrive { barrier, epoch } => {
                in_barrier = Some((barrier, epoch));
            }
            EventKind::BarrierDepart { .. } => {
                in_barrier = None;
            }
            EventKind::CondWaitBegin { .. } => {
                pending_wait = Some(vec![body.len()]);
                in_wait = true;
            }
            EventKind::CondWakeup { .. } => {
                if in_wait && pending_wait.is_none() {
                    // Wait began before the window; represent the resume as
                    // plain running time (no wait-begin edge available).
                    in_wait = false;
                    continue;
                }
                pending_wait = None;
                in_wait = false;
            }
            EventKind::JoinBegin { .. } => pending_join = Some(body.len()),
            EventKind::JoinEnd { .. } if pending_join.take().is_none() => continue,
            EventKind::JoinEnd { .. } => {}
            _ => {}
        }
        body.push(*ev);
    }

    // Trailing repairs: drop pending blocking prologues whose completion
    // lies beyond the window.
    let mut drop_idx: Vec<usize> = Vec::new();
    for (_, idxs) in pending_acq {
        drop_idx.extend(idxs);
    }
    if let Some(idxs) = pending_wait {
        drop_idx.extend(idxs);
    }
    if let Some(idx) = pending_join {
        drop_idx.push(idx);
    }
    drop_idx.sort_unstable();
    for idx in drop_idx.into_iter().rev() {
        body.remove(idx);
    }

    // Assemble with boundary lifecycle events.
    let w_start = start.max(lo);
    let w_end = end.min(hi).max(w_start);
    let mut events = Vec::with_capacity(body.len() + held.len() + 4);
    events.push(Event::new(w_start, EventKind::ThreadStart));
    events.extend(body);
    // Close holds still open at the trailing edge.
    for &(lock, write, is_rw) in held.iter().rev() {
        let kind = if is_rw {
            EventKind::RwRelease { lock, write }
        } else {
            EventKind::LockRelease { lock }
        };
        events.push(Event::new(w_end, kind));
    }
    if let Some((barrier, epoch)) = in_barrier {
        events.push(Event::new(w_end, EventKind::BarrierDepart { barrier, epoch }));
    }
    events.push(Event::new(w_end, EventKind::ThreadExit));
    cs.events = events;
    cs
}

/// The time window spanned by a named marker: from its first to its last
/// occurrence across all threads. Returns `None` when the marker never
/// fires (or fires only once — a single instant is not a window).
pub fn marker_window(trace: &Trace, marker_name: &str) -> Option<(Ts, Ts)> {
    let id = trace.object_by_name(marker_name)?;
    let mut times: Vec<Ts> = Vec::new();
    for stream in &trace.threads {
        for ev in &stream.events {
            if ev.kind == (EventKind::Marker { id }) {
                times.push(ev.ts);
            }
        }
    }
    let (lo, hi) = (times.iter().min()?, times.iter().max()?);
    if lo < hi {
        Some((*lo, *hi))
    } else {
        None
    }
}

/// Clip the trace to the window of a named marker and analyze it.
pub fn analyze_phase(trace: &Trace, marker_name: &str) -> Option<AnalysisReport> {
    let (lo, hi) = marker_window(trace, marker_name)?;
    let clipped = clip(trace, lo, hi);
    Some(analyze(&clipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_trace::TraceBuilder;

    fn phased_trace() -> Trace {
        let mut b = TraceBuilder::new("phased");
        let l = b.lock("L");
        let m = b.marker("phase");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        // Init [0,10] (serial, lock-free on T0 only), parallel phase
        // [10,30] with contention, teardown [30,40].
        b.on(t0)
            .work(10)
            .mark(m)
            .cs(l, 8) // [10,18]
            .work(2)
            .mark(m) // at 20... adjust below
            .work(20)
            .exit(); // exit 40
        b.on(t1).work(11).cs_blocked(l, 18, 6).exit_at(30);
        b.build().unwrap()
    }

    #[test]
    fn marker_window_found() {
        let t = phased_trace();
        let (lo, hi) = marker_window(&t, "phase").unwrap();
        assert_eq!(lo, 10);
        assert_eq!(hi, 20);
        assert!(marker_window(&t, "nope").is_none());
    }

    #[test]
    fn clip_preserves_protocol_and_window_times() {
        let t = phased_trace();
        let c = clip(&t, 10, 20);
        c.validate().expect("clipped trace must validate");
        assert_eq!(c.start_ts(), 10);
        assert_eq!(c.end_ts(), 20);
        // The contended episode's wait is inside the window.
        let eps = critlock_trace::lock_episodes(&c);
        assert_eq!(eps.len(), 2);
        let blocked = eps.iter().find(|e| e.contended).unwrap();
        assert_eq!(blocked.acquire, 11);
        assert_eq!(blocked.obtain, 18);
        // Its hold is clipped at the window end.
        assert_eq!(blocked.release, 20);
    }

    #[test]
    fn clip_synthesizes_holds_crossing_leading_edge() {
        let mut b = TraceBuilder::new("crossing");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        b.on(t0).acquire(l).work(30).release(l).work(10).exit();
        let t = b.build().unwrap();
        // Window [10,20] lies fully inside the hold [0,30].
        let c = clip(&t, 10, 20);
        c.validate().unwrap();
        let eps = critlock_trace::lock_episodes(&c);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].obtain, 10);
        assert_eq!(eps[0].release, 20);
    }

    #[test]
    fn clip_drops_pending_waits_at_trailing_edge() {
        let mut b = TraceBuilder::new("pending");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 30).exit_at(35);
        b.on(t1).work(5).cs_blocked(l, 30, 2).exit_at(35);
        let t = b.build().unwrap();
        // Window ends while T1 is still waiting.
        let c = clip(&t, 0, 20);
        c.validate().unwrap();
        let eps = critlock_trace::lock_episodes(&c);
        // Only T0's (clipped) hold remains.
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].tid, critlock_trace::ThreadId(0));
    }

    #[test]
    fn phase_analysis_sees_only_in_window_contention() {
        let t = phased_trace();
        let full = analyze(&t);
        let phase = analyze_phase(&t, "phase").unwrap();
        // The phase is 10 units shorter at each end.
        assert_eq!(phase.makespan, 10);
        assert!(phase.cp_complete);
        // The lock's share of the phase path is much larger than its share
        // of the whole run (init/teardown dilute it).
        let full_l = full.lock_by_name("L").unwrap();
        let phase_l = phase.lock_by_name("L").unwrap();
        assert!(phase_l.cp_time_frac > full_l.cp_time_frac);
    }

    #[test]
    fn rw_holds_cross_edges() {
        let mut b = TraceBuilder::new("rw-cross");
        let r = b.rwlock("R");
        let t0 = b.thread("T0", 0);
        b.on(t0).rw(r, true, 30).work(5).exit();
        let t = b.build().unwrap();
        let c = clip(&t, 5, 10);
        c.validate().unwrap();
        let eps = critlock_trace::rw_episodes(&c);
        assert_eq!(eps.len(), 1);
        assert!(eps[0].write);
        assert_eq!((eps[0].obtain, eps[0].release), (5, 10));
    }

    #[test]
    fn barrier_crossing_edges() {
        let mut b = TraceBuilder::new("bar-cross");
        let bar = b.barrier("B");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).work(3).barrier(bar, 0, 8).work(10).exit();
        b.on(t1).work(8).barrier(bar, 0, 8).work(2).exit();
        let t = b.build().unwrap();
        // Leading edge inside the wait: arrive synthesized at lo.
        let c = clip(&t, 5, 15);
        c.validate().unwrap();
        // Trailing edge inside the wait: depart synthesized at hi.
        let c2 = clip(&t, 0, 6);
        c2.validate().unwrap();
    }

    #[test]
    fn empty_window_is_valid() {
        let t = phased_trace();
        let c = clip(&t, 1000, 2000);
        c.validate().unwrap();
        assert_eq!(c.num_events(), 0);
    }
}

//! `cargo bench` entry point that regenerates every paper artifact.
//! (Custom harness: the "benchmark" is the reproduction itself.)

fn main() {
    // When cargo passes `--bench`/filter arguments, honor a simple filter.
    let filter: Option<String> = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    for (id, gen) in critlock_bench::generators() {
        if let Some(f) = &filter {
            if !id.contains(f.as_str()) {
                continue;
            }
        }
        let start = std::time::Instant::now();
        let artifact = gen();
        print!("{}", artifact.render());
        println!("[generated {} in {:.2?}]\n", id, start.elapsed());
    }
}

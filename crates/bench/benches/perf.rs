//! Criterion micro-benchmarks for the toolkit itself: simulator
//! throughput, analysis throughput and trace codec speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use critlock_analysis::{analyze, critical_path, online_analyze};
use critlock_workloads::{radiosity, tsp, WorkloadCfg};

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for threads in [8usize, 24] {
        g.bench_with_input(BenchmarkId::new("radiosity", threads), &threads, |b, &t| {
            b.iter(|| radiosity::run(&WorkloadCfg::with_threads(t).with_scale(0.5)).unwrap())
        });
    }
    g.bench_function("tsp-24t", |b| {
        b.iter(|| tsp::run(&WorkloadCfg::with_threads(24).with_scale(0.55)).unwrap())
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let trace = radiosity::run(&WorkloadCfg::with_threads(24)).unwrap();
    let events = trace.num_events() as u64;
    let mut g = c.benchmark_group("analysis");
    g.sample_size(20);
    g.throughput(Throughput::Elements(events));
    g.bench_function("critical_path", |b| b.iter(|| critical_path(&trace)));
    g.bench_function("full_analyze", |b| b.iter(|| analyze(&trace)));
    g.bench_function("online_analyze", |b| b.iter(|| online_analyze(&trace)));
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let trace = radiosity::run(&WorkloadCfg::with_threads(8)).unwrap();
    let mut buf = Vec::new();
    critlock_trace::codec::write_trace(&trace, &mut buf).unwrap();
    let mut g = c.benchmark_group("codec");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            critlock_trace::codec::write_trace(&trace, &mut out).unwrap();
            out
        })
    });
    g.bench_function("decode", |b| {
        b.iter(|| critlock_trace::codec::read_trace(&mut std::io::Cursor::new(&buf)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_analysis, bench_codec);
criterion_main!(benches);

//! `bench_analyze` — regenerate `BENCH_ANALYZE.json`.
//!
//! ```text
//! cargo run --release -p critlock-bench --bin bench_analyze
//! cargo run --release -p critlock-bench --bin bench_analyze -- \
//!     --scale 8 --app-threads 16 --seed 42 --reps 3 --threads 1,2,8 \
//!     --out BENCH_ANALYZE.json
//! ```
//!
//! With no `--out` the JSON goes to stdout; the summary table always goes
//! to stderr so the two can be piped separately.

use critlock_bench::perfbench::{self, BenchConfig};
use std::process::ExitCode;

fn parse_args(argv: &[String]) -> Result<(BenchConfig, Option<String>), String> {
    let mut cfg = BenchConfig::default();
    let mut out = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--scale" => {
                cfg.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--app-threads" => {
                cfg.app_threads =
                    value("--app-threads")?.parse().map_err(|e| format!("--app-threads: {e}"))?
            }
            "--seed" => cfg.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--reps" => cfg.reps = value("--reps")?.parse().map_err(|e| format!("--reps: {e}"))?,
            "--threads" => {
                cfg.thread_counts = value("--threads")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
                if cfg.thread_counts.is_empty() || cfg.thread_counts.contains(&0) {
                    return Err("--threads expects a comma list of positive counts".into());
                }
            }
            "--out" => out = Some(value("--out")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((cfg, out))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, out) = match parse_args(&argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = perfbench::run(&cfg);
    let json = perfbench::to_json(&report);
    if let Err(e) = perfbench::validate_schema(&json) {
        eprintln!("error: generated report fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    eprint!("{}", perfbench::render_text(&report));
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

//! `figures` — regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p critlock-bench --bin figures -- all
//! cargo run --release -p critlock-bench --bin figures -- fig9 fig12
//! cargo run --release -p critlock-bench --bin figures -- --list
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures [--list] <all | fig-id ...>");
        eprintln!("known ids:");
        for (id, _) in critlock_bench::generators() {
            eprintln!("  {id}");
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for (id, _) in critlock_bench::generators() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        critlock_bench::generators().iter().map(|(id, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let mut failed = false;
    for id in ids {
        match critlock_bench::generate(id) {
            Some(artifact) => print!("{}", artifact.render()),
            None => {
                eprintln!("unknown figure id `{id}`");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

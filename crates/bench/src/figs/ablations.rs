//! Ablations beyond the paper (DESIGN.md §6): robustness of the
//! conclusions to machine-model choices, and validation of the what-if
//! projection against replayed ground truth.

use crate::{pct, Artifact, Table};
use critlock_analysis::{analyze, project_shrink, rank_targets, rank_targets_by_wait};
use critlock_sim::replay::{replay, ReplayConfig};
use critlock_sim::{LockPolicy, MachineConfig};
use critlock_workloads::{micro, radiosity, suite, WorkloadCfg};
use std::fmt::Write as _;

/// Lock hand-off policy ablation: does the critical-lock ranking survive
/// FIFO vs LIFO vs random hand-off?
pub fn generate_handoff() -> Artifact {
    let mut t = Table::new(&["Policy", "top lock", "CP %", "makespan"]);
    for (name, policy) in [
        ("FIFO", LockPolicy::FifoHandoff),
        ("LIFO", LockPolicy::LifoHandoff),
        ("Random", LockPolicy::RandomHandoff),
    ] {
        let mut cfg = WorkloadCfg::with_threads(16);
        cfg.machine = cfg.machine.with_policy(policy);
        cfg.machine.max_events = 4_000_000;
        match radiosity::run(&cfg) {
            Ok(trace) => {
                let rep = analyze(&trace);
                let top = rep.top_critical_lock().expect("has a top lock");
                t.row(vec![
                    name.to_string(),
                    top.name.clone(),
                    pct(top.cp_time_frac),
                    trace.makespan().to_string(),
                ]);
            }
            Err(e) => {
                t.row(vec![name.to_string(), format!("aborted: {e}"), "-".into(), "-".into()]);
            }
        }
    }
    let mut body = t.render();
    let _ = writeln!(
        body,
        "\nThe identification is robust: the same lock tops the critical \
         path under every policy that completes. The unfair LIFO hand-off \
         can *livelock* the run outright — freshly-arriving pollers barge \
         ahead of the master-queue enqueuer forever — which the engine's \
         event-limit valve surfaces as an abort; starvation-prone hand-off \
         is itself a finding of this ablation."
    );
    Artifact {
        id: "ablation-handoff",
        title: "radiosity @16 under different lock hand-off policies".into(),
        body,
    }
}

/// Oversubscription ablation: 24 simulated threads time-sharing fewer
/// hardware contexts (preemptive round-robin).
pub fn generate_oversubscription() -> Artifact {
    let mut t = Table::new(&["Contexts", "makespan", "top lock", "CP %", "coverage"]);
    for contexts in [24usize, 12, 8] {
        let mut cfg = WorkloadCfg::with_threads(24);
        cfg.machine = cfg.machine.with_contexts(contexts);
        cfg.machine.quantum = 2_000;
        let trace = radiosity::run(&cfg).expect("radiosity runs");
        let rep = analyze(&trace);
        let top = rep.top_critical_lock().expect("has a top lock");
        t.row(vec![
            contexts.to_string(),
            trace.makespan().to_string(),
            top.name.clone(),
            pct(top.cp_time_frac),
            format!("{:.1}%", rep.coverage * 100.0),
        ]);
    }
    let mut body = t.render();
    let _ = writeln!(
        body,
        "\nTime-sharing inflates the makespan — and shifts the bottleneck: \
         under oversubscription a thread can be preempted *while holding* a \
         lock, so the many small freeInter allocations (taken by every \
         task) balloon into dominant critical sections. The analysis \
         surfaces classic lock-holder preemption without being told about \
         it."
    );
    Artifact {
        id: "ablation-oversub",
        title: "radiosity: 24 threads on 24/12/8 hardware contexts".into(),
        body,
    }
}

/// How often do the CP-time and wait-time rankings disagree on the #1
/// optimization target? (The quantified version of the paper's core
/// claim.)
pub fn generate_ranking_disagreement() -> Artifact {
    let apps = ["micro", "radiosity", "tsp", "uts", "water-nsquared", "volrend", "raytrace"];
    let seeds = [42u64, 7, 1234];
    let mut t = Table::new(&["App", "#1 by CP time", "#1 by wait time", "disagree (of 3 seeds)"]);
    let mut disagreements = 0usize;
    let mut total = 0usize;
    for app in apps {
        let mut cp_names = Vec::new();
        let mut wait_names = Vec::new();
        let mut app_disagree = 0;
        for seed in seeds {
            let cfg = WorkloadCfg::with_threads(16).with_seed(seed).with_scale(0.6);
            let trace = suite::run_workload(app, &cfg).expect("registered").expect("runs");
            let rep = analyze(&trace);
            let by_cp = rank_targets(&rep, 0.5);
            let by_wait = rank_targets_by_wait(&rep, 0.5);
            let (c, w) = (
                by_cp.first().map(|p| p.name.clone()).unwrap_or_default(),
                by_wait.first().map(|p| p.name.clone()).unwrap_or_default(),
            );
            total += 1;
            if c != w {
                disagreements += 1;
                app_disagree += 1;
            }
            cp_names.push(c);
            wait_names.push(w);
        }
        cp_names.dedup();
        wait_names.dedup();
        t.row(vec![
            app.to_string(),
            cp_names.join("/"),
            wait_names.join("/"),
            format!("{app_disagree}/3"),
        ]);
    }
    let mut body = t.render();
    let _ = writeln!(
        body,
        "\nOverall: the two methods pick different #1 targets in {} of {} \
         runs — optimizing by idleness alone would misdirect that share \
         of the tuning effort.",
        disagreements, total
    );
    Artifact {
        id: "ablation-ranking",
        title: "CP-time vs wait-time: #1-target disagreement across seeds".into(),
        body,
    }
}

/// What-if projection vs replayed ground truth.
pub fn generate_whatif_vs_replay() -> Artifact {
    let mut t =
        Table::new(&["Scenario", "lock", "projected speedup", "replayed speedup", "bound holds"]);

    // Micro-benchmark, both locks.
    let cfg = WorkloadCfg::with_threads(4);
    let trace = micro::run(&cfg).expect("micro runs");
    let rep = analyze(&trace);
    for name in ["L1", "L2"] {
        let lock = trace.object_by_name(name).expect("lock exists");
        let proj = project_shrink(&rep, name, 0.5).expect("lock known");
        let ground = replay(&trace, MachineConfig::ideal(), &ReplayConfig::shrink_lock(lock, 0.5))
            .expect("replay runs");
        let real = trace.makespan() as f64 / ground.makespan() as f64;
        t.row(vec![
            "micro@4".into(),
            name.to_string(),
            format!("{:.3}x", proj.projected_speedup),
            format!("{real:.3}x"),
            (proj.projected_speedup >= real - 1e-9).to_string(),
        ]);
    }

    // Radiosity at 16 threads, the bottleneck lock.
    let cfg = WorkloadCfg::with_threads(16).with_scale(0.6);
    let trace = radiosity::run(&cfg).expect("radiosity runs");
    let rep = analyze(&trace);
    let top = rep.top_critical_lock().expect("has top").name.clone();
    let lock = trace.object_by_name(&top).expect("lock exists");
    let proj = project_shrink(&rep, &top, 0.5).expect("lock known");
    let machine = cfg.machine.clone();
    let ground =
        replay(&trace, machine, &ReplayConfig::shrink_lock(lock, 0.5)).expect("replay runs");
    let real = trace.makespan() as f64 / ground.makespan() as f64;
    t.row(vec![
        "radiosity@16".into(),
        top,
        format!("{:.3}x", proj.projected_speedup),
        format!("{real:.3}x"),
        (proj.projected_speedup >= real - 1e-9).to_string(),
    ]);

    let mut body = t.render();
    let _ = writeln!(
        body,
        "\nThe first-order projection is an upper bound; replay resolves \
         the post-optimization schedule (segments migrating onto the \
         path), mirroring the paper's observation that the measured 7% \
         gain undershoots tq[0].qlock's 39% CP share."
    );
    Artifact {
        id: "ablation-whatif",
        title: "what-if projection vs replayed ground truth".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_ranking_is_stable() {
        // 8 threads: low enough that the unfair LIFO policy cannot starve
        // the master-queue enqueuer forever (at 16+ threads it livelocks,
        // which generate_handoff reports as a finding).
        let mut tops = Vec::new();
        for policy in [LockPolicy::FifoHandoff, LockPolicy::LifoHandoff, LockPolicy::RandomHandoff]
        {
            let mut cfg = WorkloadCfg::with_threads(8).with_scale(0.5);
            cfg.machine = cfg.machine.with_policy(policy);
            let rep = analyze(&radiosity::run(&cfg).unwrap());
            tops.push(rep.top_critical_lock().unwrap().name.clone());
        }
        assert!(tops.iter().all(|t| t == &tops[0]), "tops {tops:?}");
    }

    #[test]
    fn oversubscription_still_analyzes() {
        let mut cfg = WorkloadCfg::with_threads(12).with_scale(0.4);
        cfg.machine = cfg.machine.with_contexts(4);
        cfg.machine.quantum = 1_000;
        let trace = radiosity::run(&cfg).unwrap();
        let rep = analyze(&trace);
        assert!(rep.cp_complete);
        // Oversubscribed runs take longer than fully-parallel ones.
        let full = radiosity::run(&WorkloadCfg::with_threads(12).with_scale(0.4)).unwrap();
        assert!(trace.makespan() > full.makespan());
    }

    #[test]
    fn micro_projection_bounds_replay() {
        let cfg = WorkloadCfg::with_threads(4);
        let trace = micro::run(&cfg).unwrap();
        let rep = analyze(&trace);
        for name in ["L1", "L2"] {
            let lock = trace.object_by_name(name).unwrap();
            let proj = project_shrink(&rep, name, 0.5).unwrap();
            let ground =
                replay(&trace, MachineConfig::ideal(), &ReplayConfig::shrink_lock(lock, 0.5))
                    .unwrap();
            let real = trace.makespan() as f64 / ground.makespan() as f64;
            assert!(proj.projected_speedup >= real - 1e-9, "{name}: {proj:?} vs {real}");
            assert!(real >= 1.0);
        }
    }

    #[test]
    fn artifacts_render() {
        assert!(generate_handoff().body.contains("FIFO"));
    }
}

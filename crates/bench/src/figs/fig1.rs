//! Fig. 1 — the paper's illustrative execution, analyzed exactly.

use crate::{pct, Artifact, Table};
use critlock_analysis::gantt::{render as gantt, GanttOptions};
use critlock_analysis::{analyze, critical_path};
use critlock_workloads::fig1_trace;
use std::fmt::Write as _;

/// Generate the Fig. 1 artifact.
pub fn generate() -> Artifact {
    let trace = fig1_trace();
    let cp = critical_path(&trace);
    let rep = analyze(&trace);

    let mut body = String::new();
    let _ = writeln!(
        body,
        "hand-encoded 4-thread execution; makespan {}, critical path {} ({} complete)",
        trace.makespan(),
        cp.length,
        cp.complete
    );
    let _ = writeln!(body);
    body.push_str(&gantt(&trace, &cp, &GanttOptions { width: 66, show_cp: true }));
    let _ = writeln!(body);

    let mut t =
        Table::new(&["Lock", "CP Time %", "Invo# on CP", "Cont.Prob on CP %", "paper says"]);
    for l in &rep.locks {
        let paper = match l.name.as_str() {
            "L1" => "3.03%, 1 invocation, 0% contention",
            "L2" => "36.36%, 4 invocations, 75% contention",
            "L3" => "critical despite zero contention",
            "L4" => "longest idle time, yet OFF the path",
            _ => "",
        };
        t.row(vec![
            l.name.clone(),
            pct(l.cp_time_frac),
            l.invocations_on_cp.to_string(),
            pct(l.cont_prob_on_cp),
            paper.to_string(),
        ]);
    }
    body.push_str(&t.render());

    Artifact { id: "fig1", title: "illustrative execution and its critical path".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_analysis::analyze;
    use critlock_workloads::fig1_trace;

    /// Pin the paper's exact Fig. 1 numbers.
    #[test]
    fn fig1_matches_paper_exactly() {
        let trace = fig1_trace();
        let rep = analyze(&trace);
        assert_eq!(rep.makespan, 33);
        assert_eq!(rep.cp_length, 33);

        let l1 = rep.lock_by_name("L1").unwrap();
        assert_eq!(l1.cp_time, 1);
        assert!((l1.cp_time_frac - 1.0 / 33.0).abs() < 1e-9); // 3.03%
        assert_eq!(l1.invocations_on_cp, 1);
        assert_eq!(l1.cont_prob_on_cp, 0.0);

        let l2 = rep.lock_by_name("L2").unwrap();
        assert_eq!(l2.cp_time, 12);
        assert!((l2.cp_time_frac - 12.0 / 33.0).abs() < 1e-9); // 36.36%
        assert_eq!(l2.invocations_on_cp, 4);
        assert!((l2.cont_prob_on_cp - 0.75).abs() < 1e-9);

        // L3: uncontended but critical (5 units on the path).
        let l3 = rep.lock_by_name("L3").unwrap();
        assert_eq!(l3.cp_time, 5);
        assert_eq!(l3.cont_prob_on_cp, 0.0);

        // L4: heavily waited, zero CP time — a normal lock.
        let l4 = rep.lock_by_name("L4").unwrap();
        assert_eq!(l4.cp_time, 0);
        assert_eq!(l4.invocations_on_cp, 0);
        assert!(l4.total_wait >= 10, "L4 must carry the longest idle time");

        // Six hot critical sections in total.
        let hot: u64 = rep.locks.iter().map(|l| l.invocations_on_cp).sum();
        assert_eq!(hot, 6);
    }

    #[test]
    fn artifact_renders() {
        let a = generate();
        assert!(a.render().contains("36.36%"));
        assert!(a.body.contains("L4"));
    }
}

//! Fig. 8 — the two most critical locks of every application: CP Time
//! (TYPE 1) versus Wait Time (TYPE 2).

use crate::{pct, Artifact, Table};
use critlock_analysis::analyze;
use critlock_workloads::{suite, WorkloadCfg};
use std::fmt::Write as _;

/// Paper-side annotations for the headline locks.
fn paper_note(app: &str, lock: &str) -> &'static str {
    match (app, lock) {
        ("radiosity", l) if l.starts_with("tq[0]") => "wait-time badly underestimates it",
        ("radiosity", "freeInter") => "",
        ("raytrace", "mem") => "wait-time badly underestimates it",
        ("tsp", "Qlock") => "68% of the critical path in the paper",
        ("uts", l) if l.starts_with("stackLock") => "~5% CP with no contention at all",
        ("openldap", _) => "no significant bottleneck (tuned server)",
        _ => "",
    }
}

/// Generate the Fig. 8 artifact: each app at its paper configuration
/// (16 worker threads for OpenLDAP, 24 for the rest).
pub fn generate() -> Artifact {
    let apps = [
        ("radiosity", 24),
        ("water-nsquared", 24),
        ("volrend", 24),
        ("raytrace", 24),
        ("tsp", 24),
        ("uts", 24),
        ("openldap", 16),
    ];
    let mut t = Table::new(&["App", "Lock", "CP Time %", "Wait Time %", "note"]);
    for (app, threads) in apps {
        let cfg = WorkloadCfg::with_threads(threads);
        let trace =
            suite::run_workload(app, &cfg).expect("workload registered").expect("workload runs");
        let rep = analyze(&trace);
        let mut shown = 0;
        for l in rep.locks.iter().take(2) {
            t.row(vec![
                if shown == 0 { app.to_string() } else { String::new() },
                l.name.clone(),
                pct(l.cp_time_frac),
                pct(l.avg_wait_frac),
                paper_note(app, &l.name).to_string(),
            ]);
            shown += 1;
        }
        if shown == 0 {
            t.row(vec![
                app.to_string(),
                "(no locks)".into(),
                "-".into(),
                "-".into(),
                String::new(),
            ]);
        }
    }
    let mut body = t.render();
    let _ = writeln!(
        body,
        "\nShape targets reproduced: CP-time exceeds wait-time for the \
         serialization bottlenecks (radiosity tq[0], raytrace mem, tsp \
         Qlock); UTS stack locks appear on the path with ~zero waiting; \
         the LDAP-like server shows no bottleneck."
    );
    Artifact {
        id: "fig8",
        title: "two most critical locks per application (24 threads; LDAP 16)".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cross-application shape claims of Fig. 8, at full scale.
    #[test]
    fn fig8_shape_assertions() {
        // radiosity: tq[0].qlock top, CP >> wait.
        let rep = analyze(
            &suite::run_workload("radiosity", &WorkloadCfg::with_threads(24)).unwrap().unwrap(),
        );
        let tq0 = rep.lock_by_name("tq[0].qlock").unwrap();
        assert_eq!(rep.rank_by_cp_time("tq[0].qlock"), Some(1));
        assert!(tq0.cp_time_frac > 2.0 * tq0.avg_wait_frac);

        // raytrace: mem top, CP >> wait.
        let rep = analyze(
            &suite::run_workload("raytrace", &WorkloadCfg::with_threads(24)).unwrap().unwrap(),
        );
        let mem = rep.lock_by_name("mem").unwrap();
        assert_eq!(rep.rank_by_cp_time("mem"), Some(1));
        assert!(mem.cp_time_frac > 2.0 * mem.avg_wait_frac);

        // tsp: Qlock dominates outright.
        let rep =
            analyze(&suite::run_workload("tsp", &WorkloadCfg::with_threads(24)).unwrap().unwrap());
        assert!(rep.lock_by_name("Qlock").unwrap().cp_time_frac > 0.5);

        // uts: a stackLock on the path, essentially no waiting.
        let rep =
            analyze(&suite::run_workload("uts", &WorkloadCfg::with_threads(24)).unwrap().unwrap());
        let top = rep.top_critical_lock().unwrap();
        assert!(top.name.starts_with("stackLock["));
        assert!(top.cp_time_frac > 0.02);
        assert!(top.avg_wait_frac < 0.005);

        // openldap: nothing above 5%.
        let rep = analyze(
            &suite::run_workload("openldap", &WorkloadCfg::with_threads(16)).unwrap().unwrap(),
        );
        if let Some(top) = rep.top_critical_lock() {
            assert!(top.cp_time_frac < 0.05, "{} {:.2}%", top.name, top.cp_time_frac * 100.0);
        }
    }

    #[test]
    fn artifact_renders() {
        let a = generate();
        assert!(a.body.contains("radiosity"));
        assert!(a.body.contains("openldap"));
    }
}

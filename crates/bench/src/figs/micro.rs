//! Figs. 5–7 — the micro-benchmark: identification table, optimization
//! validation and execution Gantt.

use crate::{pct, Artifact, Table};
use critlock_analysis::gantt::{render as gantt, GanttOptions};
use critlock_analysis::{analyze, critical_path};
use critlock_workloads::{micro, WorkloadCfg};
use std::fmt::Write as _;

fn cfg4() -> WorkloadCfg {
    WorkloadCfg::with_threads(4)
}

/// Fig. 6: CP Time vs Wait Time for L1/L2 plus measured speedups after
/// equal-effort optimization of each lock.
pub fn generate_fig6() -> Artifact {
    let base = micro::run(&cfg4()).expect("micro runs");
    let rep = analyze(&base);
    let opt1 = micro::run_l1_optimized(&cfg4()).expect("micro l1-opt runs");
    let opt2 = micro::run_l2_optimized(&cfg4()).expect("micro l2-opt runs");
    let s1 = base.makespan() as f64 / opt1.makespan() as f64;
    let s2 = base.makespan() as f64 / opt2.makespan() as f64;

    let mut t = Table::new(&[
        "Lock",
        "CP Time % (TYPE 1)",
        "Wait Time % (TYPE 2)",
        "Speedup after optimization",
        "paper",
    ]);
    for (name, speedup, paper) in
        [("L1", s1, "16.67% / 36.53% / 1.26"), ("L2", s2, "83.33% / 9.02% / 1.37")]
    {
        let l = rep.lock_by_name(name).expect("lock present");
        t.row(vec![
            name.to_string(),
            pct(l.cp_time_frac),
            pct(l.avg_wait_frac),
            format!("{speedup:.3}x"),
            paper.to_string(),
        ]);
    }

    let mut body = t.render();
    let _ = writeln!(body);
    let _ = writeln!(
        body,
        "CP-time ranks L2 first; wait-time ranks L1 first; the measured \
         speedups confirm L2 is the better target (paper's conclusion)."
    );
    let _ = writeln!(
        body,
        "makespans: base {}, L1-optimized {}, L2-optimized {}",
        base.makespan(),
        opt1.makespan(),
        opt2.makespan()
    );

    Artifact {
        id: "fig6",
        title: "micro-benchmark: the two methods disagree, CP-time is right".into(),
        body,
    }
}

/// Fig. 7: the micro-benchmark execution rendered as a Gantt chart.
pub fn generate_fig7() -> Artifact {
    let trace = micro::run(&cfg4()).expect("micro runs");
    let cp = critical_path(&trace);
    let mut body = gantt(&trace, &cp, &GanttOptions { width: 72, show_cp: true });
    let _ = writeln!(
        body,
        "\nL1's idleness is overlapped by the critical path, which CS2 \
         (under L2) dominates — the paper's Fig. 7 observation."
    );
    Artifact { id: "fig7", title: "micro-benchmark execution and critical path".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_assertions() {
        let base = micro::run(&cfg4()).unwrap();
        let rep = analyze(&base);
        let l1 = rep.lock_by_name("L1").unwrap();
        let l2 = rep.lock_by_name("L2").unwrap();
        // Exact idealized-machine values.
        assert!((l1.cp_time_frac - 1.0 / 6.0).abs() < 1e-9);
        assert!((l2.cp_time_frac - 5.0 / 6.0).abs() < 1e-9);
        assert!(l1.avg_wait_frac > l2.avg_wait_frac);

        let s1 =
            base.makespan() as f64 / micro::run_l1_optimized(&cfg4()).unwrap().makespan() as f64;
        let s2 =
            base.makespan() as f64 / micro::run_l2_optimized(&cfg4()).unwrap().makespan() as f64;
        assert!(s2 > s1, "L2 wins: {s1:.3} vs {s2:.3}");
        // Idealized machine: 12/11 and 12/9.5.
        assert!((s1 - 12.0 / 11.0).abs() < 1e-6);
        assert!((s2 - 12.0 / 9.5).abs() < 1e-6);
    }

    #[test]
    fn artifacts_render() {
        assert!(generate_fig6().render().contains("Speedup"));
        assert!(generate_fig7().render().contains("cp |"));
    }
}

//! Figure and ablation generators.

pub mod ablations;
pub mod fig1;
pub mod fig8;
pub mod micro;
pub mod overhead;
pub mod radiosity;
pub mod tsp;

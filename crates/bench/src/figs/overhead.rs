//! §IV — instrumentation overhead: the paper reports ~5% at 24 threads
//! thanks to user-space timestamp reads. This measures the Rust
//! equivalent: instrumented `critlock_instrument::Mutex` versus a raw
//! `parking_lot::Mutex` on real threads, across critical-section sizes.

use crate::{Artifact, Table};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const ITERS_PER_THREAD: u64 = 20_000;
/// Critical-section size used by the smoke test.
#[cfg(test)]
const SMOKE_WORK: u64 = 40;

fn run_plain(threads: usize, work_per_cs: u64) -> std::time::Duration {
    let m = Arc::new(parking_lot::Mutex::new(0u64));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                for _ in 0..ITERS_PER_THREAD {
                    let mut g = m.lock();
                    for _ in 0..work_per_cs {
                        *g = std::hint::black_box(*g + 1);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("plain worker");
    }
    start.elapsed()
}

fn run_instrumented(threads: usize, work_per_cs: u64) -> (std::time::Duration, usize) {
    let session = critlock_instrument::Session::new("overhead");
    let m = Arc::new(session.mutex("L", 0u64));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let m = Arc::clone(&m);
            critlock_instrument::spawn(&session, format!("w{i}"), move || {
                for _ in 0..ITERS_PER_THREAD {
                    let mut g = m.lock();
                    for _ in 0..work_per_cs {
                        *g = std::hint::black_box(*g + 1);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("instrumented worker");
    }
    let elapsed = start.elapsed();
    let trace = session.finish().expect("session finishes");
    (elapsed, trace.num_events())
}

/// Measure instrumentation overhead across critical-section sizes.
///
/// The per-invocation tracing cost is a few timestamp reads plus buffer
/// pushes (fixed, ~100ns); what fraction of the run that represents
/// depends on how much work each critical section does. The paper's
/// applications carry large sections (its whole-app overhead was ~5%),
/// so the sweep reports the break-even curve explicitly.
pub fn generate() -> Artifact {
    let threads = 4usize.min(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2));
    let mut t = Table::new(&["CS size (iters)", "plain", "instrumented", "overhead", "events"]);
    for work in [40u64, 400, 4_000] {
        // Median of 3 to tame scheduler noise.
        let mut plain: Vec<_> = (0..3).map(|_| run_plain(threads, work)).collect();
        plain.sort();
        let mut inst: Vec<_> = (0..3).map(|_| run_instrumented(threads, work)).collect();
        inst.sort_by_key(|(d, _)| *d);
        let p = plain[1];
        let (i, events) = inst[1];
        let overhead = i.as_secs_f64() / p.as_secs_f64() - 1.0;
        t.row(vec![
            work.to_string(),
            format!("{:.2?}", p),
            format!("{:.2?}", i),
            format!("{:+.1}%", overhead * 100.0),
            events.to_string(),
        ]);
    }
    let mut body = t.render();
    let _ = writeln!(
        body,
        "\npaper: ~5% whole-application overhead at 24 threads with mftb \
         timestamp reads. The fixed per-invocation tracing cost shrinks \
         into the single-digit-percent range once critical sections carry \
         real work (bottom row); pathological lock-per-nanosecond loops \
         (top row) pay proportionally more, as any tracing tool does."
    );
    Artifact {
        id: "overhead",
        title: format!(
            "instrumentation overhead vs critical-section size ({threads} thread{})",
            if threads == 1 { "" } else { "s" }
        ),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_bounded() {
        // Smoke check at 2 threads: instrumentation must not blow up the
        // run (generous factor: debug builds inflate the recording cost
        // and CI hosts are noisy; release overhead at realistic CS sizes
        // is single-digit percent).
        let plain = run_plain(2, SMOKE_WORK);
        let (inst, events) = run_instrumented(2, SMOKE_WORK);
        assert!(events >= 2 * 3 * 20_000, "events {events}"); // >=3 records per invocation
        assert!(inst < plain * 12, "instrumented {inst:?} vs plain {plain:?}");
    }

    #[test]
    fn artifact_renders() {
        let a = generate();
        assert!(a.body.contains("CS size") || a.body.contains("overhead"));
    }
}

//! Figs. 9–14 — the Radiosity case study: identification across thread
//! counts, quantification at 24 threads, and validation of the two-lock
//! queue optimization.

use crate::{pct, Artifact, Table};
use critlock_analysis::{analyze, AnalysisReport};
use critlock_trace::Trace;
use critlock_workloads::{radiosity, WorkloadCfg};
use std::fmt::Write as _;

fn run(threads: usize) -> Trace {
    radiosity::run(&WorkloadCfg::with_threads(threads)).expect("radiosity runs")
}

fn run_opt(threads: usize) -> Trace {
    radiosity::run_optimized(&WorkloadCfg::with_threads(threads)).expect("radiosity-opt runs")
}

/// Fig. 9: CP Time vs Wait Time of the two headline locks at 4/8/16/24
/// threads.
pub fn generate_fig9() -> Artifact {
    let mut t = Table::new(&[
        "Threads",
        "tq[0].qlock CP %",
        "tq[0].qlock Wait %",
        "freeInter CP %",
        "freeInter Wait %",
        "top by CP",
    ]);
    for threads in [4, 8, 16, 24] {
        let rep = analyze(&run(threads));
        let tq0 = rep.lock_by_name("tq[0].qlock");
        let fi = rep.lock_by_name("freeInter");
        t.row(vec![
            threads.to_string(),
            tq0.map(|l| pct(l.cp_time_frac)).unwrap_or_default(),
            tq0.map(|l| pct(l.avg_wait_frac)).unwrap_or_default(),
            fi.map(|l| pct(l.cp_time_frac)).unwrap_or_default(),
            fi.map(|l| pct(l.avg_wait_frac)).unwrap_or_default(),
            rep.top_critical_lock().map(|l| l.name.clone()).unwrap_or_default(),
        ]);
    }
    let mut body = t.render();
    let _ = writeln!(
        body,
        "\npaper: freInter most critical at <=8 threads; tq[0].qlock \
         dominates beyond 8, reaching 39.15% CP (vs 6.40% wait) at 24."
    );
    Artifact { id: "fig9", title: "radiosity: top-2 locks across thread counts".into(), body }
}

fn contention_table(rep: &AnalysisReport, top: usize) -> String {
    let mut t = Table::new(&[
        "Lock",
        "Invo# on CP",
        "Cont.Prob on CP %",
        "Avg Invo#",
        "Avg Cont.Prob %",
        "Incr x Invo",
    ]);
    for l in rep.locks.iter().take(top) {
        t.row(vec![
            l.name.clone(),
            l.invocations_on_cp.to_string(),
            pct(l.cont_prob_on_cp),
            format!("{:.1}", l.avg_invocations_per_thread),
            pct(l.avg_cont_prob),
            format!("{:.2}", l.incr_invocations),
        ]);
    }
    t.render()
}

fn size_table(rep: &AnalysisReport, top: usize) -> String {
    let mut t = Table::new(&["Lock", "CP Time %", "Avg Hold Time %", "Incr x CS Size"]);
    for l in rep.locks.iter().take(top) {
        t.row(vec![
            l.name.clone(),
            pct(l.cp_time_frac),
            pct(l.avg_hold_frac),
            format!("{:.2}", l.incr_cs_size),
        ]);
    }
    t.render()
}

/// Fig. 10: contention-probability statistics at 24 threads.
pub fn generate_fig10() -> Artifact {
    let rep = analyze(&run(24));
    let mut body = contention_table(&rep, 3);
    let _ = writeln!(
        body,
        "\npaper @24: tq[0].qlock 78.69% contended on CP, 26298 CP \
         invocations vs 3751 avg (7.01x); freInter only 9.31% contended."
    );
    Artifact {
        id: "fig10",
        title: "radiosity @24: contention probability of critical locks".into(),
        body,
    }
}

/// Fig. 11: critical-section size statistics at 24 threads.
pub fn generate_fig11() -> Artifact {
    let rep = analyze(&run(24));
    let mut body = size_table(&rep, 3);
    let _ = writeln!(
        body,
        "\npaper @24: tq[0].qlock 39.15% CP from 4.76% per-thread hold; \
         small-hold locks stay negligible even when contended."
    );
    Artifact {
        id: "fig11",
        title: "radiosity @24: critical section sizes of critical locks".into(),
        body,
    }
}

/// Fig. 12: speedups of original vs optimized Radiosity.
pub fn generate_fig12() -> Artifact {
    let base = run(1).makespan() as f64;
    let mut t = Table::new(&["Threads", "Speedup (original)", "Speedup (optimized)", "gain"]);
    for threads in [4, 8, 16, 24] {
        let orig = run(threads).makespan() as f64;
        let opt = run_opt(threads).makespan() as f64;
        t.row(vec![
            threads.to_string(),
            format!("{:.2}x", base / orig),
            format!("{:.2}x", base / opt),
            format!("{:+.1}%", (orig / opt - 1.0) * 100.0),
        ]);
    }
    let mut body = t.render();
    let _ = writeln!(
        body,
        "\npaper: the two-lock queue gives up to 7% end-to-end at 24 \
         threads — far below tq[0].qlock's 39% CP share, because other \
         segments move onto the critical path after the optimization."
    );
    Artifact { id: "fig12", title: "radiosity: original vs two-lock-queue speedups".into(), body }
}

/// Fig. 13: critical-section size statistics of the optimized version.
pub fn generate_fig13() -> Artifact {
    let rep = analyze(&run_opt(24));
    let mut body = size_table(&rep, 3);
    let _ = writeln!(
        body,
        "\npaper @24 (optimized): tq[0].q_head_lock drops to 2.53% CP \
         (0.73% hold); freeInter becomes the residual top lock."
    );
    Artifact { id: "fig13", title: "optimized radiosity @24: critical section sizes".into(), body }
}

/// Fig. 14: contention-probability statistics of the optimized version.
pub fn generate_fig14() -> Artifact {
    let rep = analyze(&run_opt(24));
    let mut body = contention_table(&rep, 3);
    let _ = writeln!(
        body,
        "\npaper @24 (optimized): tq[0].q_head_lock contention on CP \
         falls to 53.62% with invocation inflation 3.34x."
    );
    Artifact { id: "fig14", title: "optimized radiosity @24: contention probability".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 9 crossover at full scale.
    #[test]
    fn fig9_crossover() {
        for (threads, expect_top) in
            [(4, "freeInter"), (8, "freeInter"), (16, "tq[0].qlock"), (24, "tq[0].qlock")]
        {
            let rep = analyze(&run(threads));
            assert_eq!(rep.top_critical_lock().unwrap().name, expect_top, "at {threads} threads");
        }
    }

    /// Fig. 9's magnitude claims at 24 threads.
    #[test]
    fn fig9_magnitudes_at_24() {
        let rep = analyze(&run(24));
        let tq0 = rep.lock_by_name("tq[0].qlock").unwrap();
        // Paper: 39.15% CP vs 6.40% wait. Accept the same regime.
        assert!(tq0.cp_time_frac > 0.25, "cp {:.1}%", tq0.cp_time_frac * 100.0);
        assert!(tq0.cp_time_frac < 0.55);
        assert!(
            tq0.avg_wait_frac < tq0.cp_time_frac / 2.0,
            "wait must underestimate: {:.1}% vs {:.1}%",
            tq0.avg_wait_frac * 100.0,
            tq0.cp_time_frac * 100.0
        );
    }

    /// Fig. 10's mechanisms: high contention probability on the CP and
    /// invocation-count inflation for tq[0].
    #[test]
    fn fig10_contention_mechanisms() {
        let rep = analyze(&run(24));
        let tq0 = rep.lock_by_name("tq[0].qlock").unwrap();
        assert!(tq0.cont_prob_on_cp > 0.6);
        assert!(tq0.incr_invocations > 2.0);
        let fi = rep.lock_by_name("freeInter").unwrap();
        assert!(fi.cont_prob_on_cp < tq0.cont_prob_on_cp);
    }

    /// Fig. 12: the optimization helps and the gain is far below the
    /// removed lock's CP share (path migration).
    #[test]
    fn fig12_optimization_validates() {
        let rep = analyze(&run(24));
        let cp_share = rep.lock_by_name("tq[0].qlock").unwrap().cp_time_frac;
        let orig = run(24).makespan() as f64;
        let opt = run_opt(24).makespan() as f64;
        let gain = orig / opt - 1.0;
        assert!(gain > 0.02, "gain {:.1}%", gain * 100.0);
        assert!(
            gain < cp_share,
            "gain {:.1}% must undershoot the {:.1}% CP share",
            gain * 100.0,
            cp_share * 100.0
        );
    }

    /// Figs. 13/14: the optimized queue locks collapse.
    #[test]
    fn fig13_14_optimized_stats() {
        let orig = analyze(&run(24));
        let rep = analyze(&run_opt(24));
        let before = orig.lock_by_name("tq[0].qlock").unwrap().cp_time_frac;
        let head = rep.lock_by_name("tq[0].q_head_lock").unwrap();
        assert!(head.cp_time_frac < before / 4.0);
        let tq0_orig = orig.lock_by_name("tq[0].qlock").unwrap();
        assert!(head.avg_hold_frac < tq0_orig.avg_hold_frac);
    }

    #[test]
    fn artifacts_render() {
        assert!(generate_fig9().body.contains("tq[0].qlock"));
        assert!(generate_fig12().body.contains("Speedup"));
    }
}

//! §V.E — TSP: `Qlock` dominance and the split-queue optimization.

use crate::{pct, Artifact, Table};
use critlock_analysis::analyze;
use critlock_workloads::{tsp, WorkloadCfg};
use std::fmt::Write as _;

/// Generate the TSP artifact (Fig. 8's TSP row plus the §V.E
/// optimization result).
pub fn generate() -> Artifact {
    let mut t =
        Table::new(&["Threads", "Qlock CP %", "Qlock Wait %", "makespan", "optimized", "gain"]);
    for threads in [4, 8, 16, 24] {
        let cfg = WorkloadCfg::with_threads(threads);
        let orig = tsp::run(&cfg).expect("tsp runs");
        let opt = tsp::run_optimized(&cfg).expect("tsp-opt runs");
        let rep = analyze(&orig);
        let q = rep.lock_by_name("Qlock").expect("Qlock present");
        t.row(vec![
            threads.to_string(),
            pct(q.cp_time_frac),
            pct(q.avg_wait_frac),
            orig.makespan().to_string(),
            opt.makespan().to_string(),
            format!("{:+.1}%", (orig.makespan() as f64 / opt.makespan() as f64 - 1.0) * 100.0),
        ]);
    }
    let mut body = t.render();
    let _ = writeln!(
        body,
        "\npaper @24: Qlock contributes 68% of the critical path; the \
         Q_headlock/Q_taillock split improves end-to-end time by 19%."
    );
    Artifact {
        id: "tsp",
        title: "TSP: global queue lock dominance and the split-queue fix".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §V.E numbers at full scale: Qlock ~68% CP, split gain ~19%.
    #[test]
    fn tsp_full_scale_matches_paper_shape() {
        let cfg = WorkloadCfg::with_threads(24);
        let orig = tsp::run(&cfg).unwrap();
        let opt = tsp::run_optimized(&cfg).unwrap();
        let rep = analyze(&orig);
        let q = rep.lock_by_name("Qlock").unwrap();
        assert!(
            (0.5..0.9).contains(&q.cp_time_frac),
            "Qlock CP {:.1}% (paper 68%)",
            q.cp_time_frac * 100.0
        );
        let gain = orig.makespan() as f64 / opt.makespan() as f64 - 1.0;
        assert!((0.08..0.45).contains(&gain), "split gain {:.1}% (paper 19%)", gain * 100.0);
        // Both solve the same instance.
        assert_eq!(orig.meta.params.get("best_tour"), opt.meta.params.get("best_tour"));
    }

    #[test]
    fn artifact_renders() {
        assert!(generate().body.contains("Qlock"));
    }
}

//! # critlock-bench
//!
//! Regenerates **every table and figure** of the paper's evaluation
//! (§V), plus the ablations called out in `DESIGN.md` §6. Each generator
//! returns its report as text (also printed by the `figures` binary and
//! the `cargo bench` harness) so `EXPERIMENTS.md` can quote it directly.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p critlock-bench --bin figures -- all
//! cargo bench -p critlock-bench
//! ```

#![warn(missing_docs)]

pub mod figs;
pub mod perfbench;

use std::fmt::Write as _;

/// One generated artifact: an id (`fig6`), a title and the report text.
pub struct Artifact {
    /// Identifier matching the paper's numbering (`fig1`..`fig14`,
    /// `tsp`, `ablation-*`, `overhead`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// The report body.
    pub body: String,
}

impl Artifact {
    /// Render with a banner, ready for printing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", "=".repeat(72));
        let _ = writeln!(out, "{}  —  {}", self.id, self.title);
        let _ = writeln!(out, "{}", "=".repeat(72));
        let _ = writeln!(out, "{}", self.body);
        out
    }
}

/// An artifact generator function.
pub type Generator = fn() -> Artifact;

/// All artifact generators in paper order.
pub fn generators() -> Vec<(&'static str, Generator)> {
    vec![
        ("fig1", figs::fig1::generate as Generator),
        ("fig6", figs::micro::generate_fig6),
        ("fig7", figs::micro::generate_fig7),
        ("fig8", figs::fig8::generate),
        ("fig9", figs::radiosity::generate_fig9),
        ("fig10", figs::radiosity::generate_fig10),
        ("fig11", figs::radiosity::generate_fig11),
        ("fig12", figs::radiosity::generate_fig12),
        ("fig13", figs::radiosity::generate_fig13),
        ("fig14", figs::radiosity::generate_fig14),
        ("tsp", figs::tsp::generate),
        ("ablation-handoff", figs::ablations::generate_handoff),
        ("ablation-oversub", figs::ablations::generate_oversubscription),
        ("ablation-ranking", figs::ablations::generate_ranking_disagreement),
        ("ablation-whatif", figs::ablations::generate_whatif_vs_replay),
        ("overhead", figs::overhead::generate),
    ]
}

/// Run one generator by id.
pub fn generate(id: &str) -> Option<Artifact> {
    generators().into_iter().find(|(gid, _)| *gid == id).map(|(_, f)| f())
}

/// Helper: format a percentage.
pub(crate) fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Helper: a fixed-width table renderer used by all figure generators.
pub(crate) struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub(crate) fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub(crate) fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    pub(crate) fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(line, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(line, "  {:>w$}", c, w = widths[i]);
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_ids_unique_and_lookup_works() {
        let gens = generators();
        let mut ids: Vec<_> = gens.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), gens.len());
        assert!(generate("fig6").is_some());
        assert!(generate("nope").is_none());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Lock", "CP %"]);
        t.row(vec!["a-very-long-lock-name".into(), "1.00%".into()]);
        t.row(vec!["b".into(), "99.99%".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }
}

//! Per-stage performance benchmark for the analysis pipeline.
//!
//! Generates a large synthetic trace (a scaled-up run of the built-in
//! workloads), then times each pipeline stage — frame decode, segment
//! construction, the critical-path walk, metric accumulation, and the
//! end-to-end `bytes → report` path — at several analysis thread counts.
//! Results are written as a versioned, machine-readable JSON document
//! (`BENCH_ANALYZE.json` at the repo root) so regressions show up in
//! review diffs.
//!
//! Timing uses the `critlock-obs` span recorder: each repetition records
//! one [`critlock_obs::SpanProfile`] of the pipeline and the profiles are
//! min-merged, so the benchmark and `analyze --self-profile` share one
//! clock-reading code path.
//!
//! Two honesty rules govern the output:
//!
//! * every stage is timed as the **minimum over `reps` repetitions** (the
//!   least-noise estimator for a deterministic computation);
//! * the host's `available_parallelism` is recorded next to the numbers,
//!   because speedup claims are meaningless without it — a 1-CPU host
//!   cannot show wall-clock scaling no matter how parallel the code is.
//!
//! The analysis itself is bit-identical at every thread count (see
//! `DESIGN.md`); this harness asserts that on every run.

use critlock_analysis::{analyze, analyze_with, critical_path, OnlineState, SegmentedTrace};
use critlock_obs::{SpanProfile, SpanRecorder};
use critlock_trace::{codec, Event, ThreadId, Trace};
use critlock_workloads::{suite, WorkloadCfg};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Schema version of [`BenchReport`]; bump on any incompatible change.
/// v2 added the [`LiveIngestion`] section (incremental vs full-rebuild
/// live maintenance); v3 added the [`DecodeThroughput`] section (owned
/// materializing decode vs the borrowed zero-copy event walk).
pub const SCHEMA_VERSION: u32 = 3;

/// Batches the live-ingestion benchmark replays the trace in (one
/// report per batch — the collector's snapshot cadence in miniature).
pub const LIVE_BATCHES: usize = 32;

/// Configuration for one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Workload scale factor (event count grows roughly linearly).
    pub scale: f64,
    /// Simulated application threads in the synthetic trace.
    pub app_threads: usize,
    /// Workload RNG seed (the trace is deterministic given this).
    pub seed: u64,
    /// Repetitions per stage; the minimum is reported.
    pub reps: usize,
    /// Analysis thread counts to measure.
    pub thread_counts: Vec<usize>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { scale: 8.0, app_threads: 16, seed: 42, reps: 3, thread_counts: vec![1, 2, 8] }
    }
}

/// Host facts that speedup numbers cannot be interpreted without.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostInfo {
    /// `std::thread::available_parallelism()` at run time. Wall-clock
    /// speedup is bounded by this regardless of the requested pool size.
    pub available_parallelism: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
}

impl HostInfo {
    fn detect() -> Self {
        HostInfo {
            available_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }
}

/// Minimum wall-clock time of each pipeline stage, in nanoseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// `codec::read_trace_bytes`: encoded bytes → `Trace`.
    pub decode_ns: u64,
    /// `SegmentedTrace::build`: trace → segments + dependence indexes.
    pub segment_ns: u64,
    /// `critical_path`: the backward CP walk (serial by design).
    pub cp_ns: u64,
    /// `analyze_with`: episode extraction + metric accumulation, given
    /// a precomputed critical path.
    pub metrics_ns: u64,
    /// Encoded bytes → full `AnalysisReport` (decode + analyze).
    pub end_to_end_ns: u64,
}

/// Timings measured inside a pool of `threads` workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadRun {
    /// Requested analysis pool size.
    pub threads: usize,
    /// Per-stage minimum times at this pool size.
    pub timings: StageTimings,
}

/// Live-ingestion comparison: replay the trace in arrival order as
/// [`LIVE_BATCHES`] batches with a report after every batch — once
/// maintaining one incremental [`OnlineState`] (O(delta) per batch) and
/// once rebuilding the state from scratch per batch (O(history), what
/// the collector did before incremental maintenance existed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveIngestion {
    /// Events replayed.
    pub events: u64,
    /// Batches the replay was split into (== reports computed per pass).
    pub batches: usize,
    /// Minimum total wall time of the incremental pass, ns.
    pub incremental_ns: u64,
    /// Minimum total wall time of the rebuild-per-batch pass, ns.
    pub full_ns: u64,
    /// Sustained incremental ingestion rate, events per second.
    pub incremental_events_per_sec: u64,
    /// Sustained rebuild-per-batch rate, events per second.
    pub full_events_per_sec: u64,
    /// `full_ns / incremental_ns` — how much incremental maintenance
    /// beats per-snapshot full re-analysis at this batch cadence.
    pub speedup: f64,
    /// Whether the incremental pass's final report was bit-identical to
    /// a one-shot [`online_analyze`] of the whole trace (it must be).
    ///
    /// [`online_analyze`]: critlock_analysis::online_analyze
    pub incremental_exact: bool,
}

/// Decode-throughput comparison (schema v3): the owned decoder
/// (`codec::read_trace_bytes`, materializing a full [`Trace`]) against
/// the borrowed zero-copy walk (`RawTraceView::parse` + `validate`,
/// which decodes and checks every event record in place without building
/// one). The borrowed walk does strictly less work, so its rate is the
/// ceiling the owned path is converging toward — CI gates borrowed ≥
/// owned to keep the zero-copy layer from regressing below the path it
/// exists to beat.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeThroughput {
    /// Events in the encoded trace.
    pub events: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// Minimum wall time of the owned materializing decode, ns.
    pub owned_ns: u64,
    /// Minimum wall time of the borrowed parse + full event walk, ns.
    pub borrowed_ns: u64,
    /// Owned decode rate, events per second.
    pub owned_events_per_sec: u64,
    /// Borrowed walk rate, events per second.
    pub borrowed_events_per_sec: u64,
    /// `owned_ns / borrowed_ns`.
    pub speedup: f64,
    /// Whether materializing through the borrowed view reproduced the
    /// owned decoder's trace bit for bit (it must).
    pub borrowed_exact: bool,
}

/// The versioned document written to `BENCH_ANALYZE.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Must equal [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Exact command that regenerates this file.
    pub command: String,
    /// Host facts the numbers were measured on.
    pub host: HostInfo,
    /// Workload generator name.
    pub workload: String,
    /// Workload scale factor used.
    pub scale: f64,
    /// Simulated application threads in the trace.
    pub app_threads: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Events in the synthetic trace.
    pub trace_events: u64,
    /// Encoded trace size in bytes.
    pub trace_bytes: u64,
    /// Repetitions per stage (minimum reported).
    pub reps: usize,
    /// Whether every thread count produced a bit-identical report.
    pub deterministic: bool,
    /// One entry per measured pool size.
    pub runs: Vec<ThreadRun>,
    /// Incremental-vs-full live maintenance comparison (schema v2).
    pub live: LiveIngestion,
    /// Owned-vs-borrowed decode throughput (schema v3).
    pub decode: DecodeThroughput,
}

/// The workload the benchmark scales up.
pub const BENCH_WORKLOAD: &str = "radiosity";

/// Generate the deterministic synthetic trace the benchmark measures.
pub fn synth_trace(cfg: &BenchConfig) -> Trace {
    suite::run_workload(
        BENCH_WORKLOAD,
        &WorkloadCfg::with_threads(cfg.app_threads).with_scale(cfg.scale).with_seed(cfg.seed),
    )
    .expect("bench workload must exist")
    .expect("bench workload must simulate cleanly")
}

/// Time one repetition of every pipeline stage into a span profile.
fn profile_stages(
    bytes: &[u8],
    trace: &Trace,
    cp: &critlock_analysis::CriticalPath,
) -> SpanProfile {
    let rec = SpanRecorder::new("bench_analyze");
    rec.time("decode", || codec::read_trace_bytes(bytes).unwrap());
    rec.time("segment", || SegmentedTrace::build(trace));
    rec.time("cp", || critical_path(trace));
    rec.time("metrics", || analyze_with(trace, cp));
    rec.time("end_to_end", || analyze(&codec::read_trace_bytes(bytes).unwrap()));
    rec.finish()
}

/// Measure every stage as the per-span minimum over `reps` profiled
/// repetitions (the `critlock-obs` span recorder does the timing; this
/// merely merges and flattens the tree into the stable v1 schema).
fn measure_stages(bytes: &[u8], trace: &Trace, reps: usize) -> StageTimings {
    let cp = critical_path(trace);
    let mut merged: Option<SpanProfile> = None;
    for _ in 0..reps.max(1) {
        let profile = profile_stages(bytes, trace, &cp);
        merged = Some(match merged {
            Some(best) => best.merge_min(&profile),
            None => profile,
        });
    }
    let merged = merged.expect("at least one repetition runs");
    // Clamp to 1ns: a stage too fast for the clock still counts as ran
    // (the schema treats 0 as "never measured").
    let stage = |name: &str| merged.child(name).map_or(1, |s| s.duration_ns.max(1));
    StageTimings {
        decode_ns: stage("decode"),
        segment_ns: stage("segment"),
        cp_ns: stage("cp"),
        metrics_ns: stage("metrics"),
        end_to_end_ns: stage("end_to_end"),
    }
}

/// Merge the trace's per-thread streams into global arrival order and
/// split into `batches` chunks of per-thread runs — the shape a live
/// collector feeds [`OnlineState::ingest`].
fn live_plan(trace: &Trace, batches: usize) -> Vec<Vec<(ThreadId, Vec<Event>)>> {
    let mut merged: Vec<(ThreadId, Event)> = Vec::with_capacity(trace.num_events());
    for stream in &trace.threads {
        for ev in &stream.events {
            merged.push((stream.tid, *ev));
        }
    }
    // Stable sort: equal (ts, tid) keys keep per-stream order.
    merged.sort_by_key(|(tid, ev)| (ev.ts, *tid));
    let per = merged.len().div_ceil(batches.max(1)).max(1);
    merged
        .chunks(per)
        .map(|chunk| {
            let mut runs: Vec<(ThreadId, Vec<Event>)> = Vec::new();
            for (tid, ev) in chunk {
                match runs.last_mut() {
                    Some((t, evs)) if t == tid => evs.push(*ev),
                    _ => runs.push((*tid, vec![*ev])),
                }
            }
            runs
        })
        .collect()
}

/// One incremental pass over the batch plan: ingest + report per batch.
fn live_incremental(trace: &Trace, plan: &[Vec<(ThreadId, Vec<Event>)>]) -> OnlineState {
    let mut state = OnlineState::new();
    for stream in &trace.threads {
        state.declare(stream.tid);
    }
    for batch in plan {
        for (tid, evs) in batch {
            state.ingest(*tid, evs);
        }
        std::hint::black_box(state.report(trace).cp_length);
    }
    state
}

/// One full pass: a from-scratch state per batch boundary (the old
/// "re-analyze the whole session every snapshot" behavior).
fn live_full(trace: &Trace, plan: &[Vec<(ThreadId, Vec<Event>)>]) {
    for k in 1..=plan.len() {
        let mut state = OnlineState::new();
        for stream in &trace.threads {
            state.declare(stream.tid);
        }
        for batch in &plan[..k] {
            for (tid, evs) in batch {
                state.ingest(*tid, evs);
            }
        }
        std::hint::black_box(state.report(trace).cp_length);
    }
}

/// Measure the live-ingestion comparison: minimum over `reps` of each
/// pass's total wall time, plus the exactness cross-check.
fn measure_live(trace: &Trace, reps: usize) -> LiveIngestion {
    let plan = live_plan(trace, LIVE_BATCHES);
    let one_shot = critlock_analysis::online_analyze(trace);
    let mut incremental_ns = u64::MAX;
    let mut full_ns = u64::MAX;
    let mut incremental_exact = true;
    for _ in 0..reps.max(1) {
        let start = std::time::Instant::now();
        let mut state = live_incremental(trace, &plan);
        incremental_ns = incremental_ns.min((start.elapsed().as_nanos() as u64).max(1));
        incremental_exact &= state.report(trace) == one_shot;

        let start = std::time::Instant::now();
        live_full(trace, &plan);
        full_ns = full_ns.min((start.elapsed().as_nanos() as u64).max(1));
    }
    let events = trace.num_events() as u64;
    let rate = |ns: u64| (events as u128 * 1_000_000_000 / ns.max(1) as u128) as u64;
    LiveIngestion {
        events,
        batches: plan.len(),
        incremental_ns,
        full_ns,
        incremental_events_per_sec: rate(incremental_ns),
        full_events_per_sec: rate(full_ns),
        speedup: full_ns as f64 / incremental_ns as f64,
        incremental_exact,
    }
}

/// Measure the owned-vs-borrowed decode comparison: minimum over `reps`
/// of each path's wall time over the same encoded bytes, plus the
/// bit-identity cross-check.
fn measure_decode(bytes: &[u8], trace: &Trace, reps: usize) -> DecodeThroughput {
    let mut owned_ns = u64::MAX;
    let mut borrowed_ns = u64::MAX;
    for _ in 0..reps.max(1) {
        let start = std::time::Instant::now();
        std::hint::black_box(codec::read_trace_bytes(bytes).expect("bench trace decodes"));
        owned_ns = owned_ns.min((start.elapsed().as_nanos() as u64).max(1));

        let start = std::time::Instant::now();
        let view = codec::RawTraceView::parse(bytes).expect("bench trace parses");
        std::hint::black_box(view.validate().expect("bench trace validates"));
        borrowed_ns = borrowed_ns.min((start.elapsed().as_nanos() as u64).max(1));
    }
    let borrowed_exact = codec::RawTraceView::parse(bytes)
        .and_then(|view| view.to_trace())
        .is_ok_and(|back| back == *trace);
    let events = trace.num_events() as u64;
    let rate = |ns: u64| (events as u128 * 1_000_000_000 / ns.max(1) as u128) as u64;
    DecodeThroughput {
        events,
        bytes: bytes.len() as u64,
        owned_ns,
        borrowed_ns,
        owned_events_per_sec: rate(owned_ns),
        borrowed_events_per_sec: rate(borrowed_ns),
        speedup: owned_ns as f64 / borrowed_ns as f64,
        borrowed_exact,
    }
}

/// Run the benchmark and collect the report.
pub fn run(cfg: &BenchConfig) -> BenchReport {
    let trace = synth_trace(cfg);
    let mut bytes = Vec::new();
    codec::write_trace(&trace, &mut bytes).expect("in-memory encode cannot fail");

    let mut runs = Vec::new();
    let mut reports: Vec<String> = Vec::new();
    for &threads in &cfg.thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pool build cannot fail");
        let timings = pool.install(|| measure_stages(&bytes, &trace, cfg.reps));
        reports.push(pool.install(|| serde_json::to_string(&analyze(&trace)).unwrap()));
        runs.push(ThreadRun { threads, timings });
    }
    let deterministic = reports.windows(2).all(|w| w[0] == w[1]);
    let live = measure_live(&trace, cfg.reps);
    let decode = measure_decode(&bytes, &trace, cfg.reps);

    BenchReport {
        schema_version: SCHEMA_VERSION,
        command: format!(
            "cargo run --release -p critlock-bench --bin bench_analyze -- --scale {} --app-threads {} --seed {} --reps {}",
            cfg.scale, cfg.app_threads, cfg.seed, cfg.reps
        ),
        host: HostInfo::detect(),
        workload: BENCH_WORKLOAD.to_string(),
        scale: cfg.scale,
        app_threads: cfg.app_threads,
        seed: cfg.seed,
        trace_events: trace.num_events() as u64,
        trace_bytes: bytes.len() as u64,
        reps: cfg.reps,
        deterministic,
        runs,
        live,
        decode,
    }
}

/// Serialize a report as the pretty JSON committed to the repo.
pub fn to_json(report: &BenchReport) -> String {
    let mut json = serde_json::to_string_pretty(report).expect("bench report serializes");
    json.push('\n');
    json
}

/// Validate that a JSON document is a well-formed current-schema bench
/// report. Used by the CI bench-smoke job; checks shape, not speed.
pub fn validate_schema(json: &str) -> Result<BenchReport, String> {
    let report: BenchReport =
        serde_json::from_str(json).map_err(|e| format!("not a bench report: {e}"))?;
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {} (this build understands {SCHEMA_VERSION})",
            report.schema_version
        ));
    }
    if report.runs.is_empty() {
        return Err("no thread runs recorded".into());
    }
    if report.host.available_parallelism == 0 {
        return Err("host.available_parallelism must be >= 1".into());
    }
    if report.trace_events == 0 || report.trace_bytes == 0 {
        return Err("empty benchmark trace".into());
    }
    for run in &report.runs {
        if run.threads == 0 {
            return Err("a run with 0 threads".into());
        }
        let t = &run.timings;
        if [t.decode_ns, t.segment_ns, t.cp_ns, t.metrics_ns, t.end_to_end_ns].contains(&0) {
            return Err(format!("zero timing in the {}-thread run", run.threads));
        }
    }
    if !report.deterministic {
        return Err("analysis output differed across thread counts".into());
    }
    let live = &report.live;
    if live.events == 0 || live.batches == 0 {
        return Err("empty live-ingestion section".into());
    }
    if live.incremental_ns == 0 || live.full_ns == 0 {
        return Err("zero timing in the live-ingestion section".into());
    }
    if live.incremental_events_per_sec == 0 || !live.speedup.is_finite() || live.speedup <= 0.0 {
        return Err("implausible live-ingestion rates".into());
    }
    if !live.incremental_exact {
        return Err("incremental live pass diverged from one-shot online analysis".into());
    }
    let decode = &report.decode;
    if decode.events == 0 || decode.bytes == 0 {
        return Err("empty decode section".into());
    }
    if decode.owned_ns == 0 || decode.borrowed_ns == 0 {
        return Err("zero timing in the decode section".into());
    }
    if decode.owned_events_per_sec == 0
        || decode.borrowed_events_per_sec == 0
        || !decode.speedup.is_finite()
        || decode.speedup <= 0.0
    {
        return Err("implausible decode rates".into());
    }
    if !decode.borrowed_exact {
        return Err("borrowed zero-copy decode diverged from the owned decoder".into());
    }
    Ok(report)
}

/// Human-readable summary of a report (printed after a bench run).
pub fn render_text(report: &BenchReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench_analyze: {} scale={} app_threads={} seed={} ({} events, {} KiB encoded)",
        report.workload,
        report.scale,
        report.app_threads,
        report.seed,
        report.trace_events,
        report.trace_bytes / 1024,
    );
    let _ = writeln!(
        out,
        "host: {}/{} available_parallelism={}  reps={}  deterministic={}",
        report.host.os,
        report.host.arch,
        report.host.available_parallelism,
        report.reps,
        report.deterministic,
    );
    let _ = writeln!(
        out,
        "{:>8}  {:>12} {:>12} {:>12} {:>12} {:>12}",
        "threads", "decode", "segment", "cp", "metrics", "end-to-end"
    );
    let ms = |ns: u64| format!("{:.2}ms", ns as f64 / 1e6);
    for run in &report.runs {
        let t = &run.timings;
        let _ = writeln!(
            out,
            "{:>8}  {:>12} {:>12} {:>12} {:>12} {:>12}",
            run.threads,
            ms(t.decode_ns),
            ms(t.segment_ns),
            ms(t.cp_ns),
            ms(t.metrics_ns),
            ms(t.end_to_end_ns),
        );
    }
    let live = &report.live;
    let _ = writeln!(
        out,
        "live ingestion: {} events in {} batches — incremental {} ev/s vs full-rebuild {} ev/s (speedup {:.2}x, exact={})",
        live.events,
        live.batches,
        live.incremental_events_per_sec,
        live.full_events_per_sec,
        live.speedup,
        live.incremental_exact,
    );
    let decode = &report.decode;
    let _ = writeln!(
        out,
        "decode: owned {} ev/s vs borrowed zero-copy {} ev/s (speedup {:.2}x, exact={})",
        decode.owned_events_per_sec,
        decode.borrowed_events_per_sec,
        decode.speedup,
        decode.borrowed_exact,
    );
    if report.host.available_parallelism < 2 {
        let _ = writeln!(
            out,
            "note: host has 1 CPU; pool-size runs measure overhead, not wall-clock scaling"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig { scale: 0.05, app_threads: 4, seed: 7, reps: 1, thread_counts: vec![1, 2] }
    }

    #[test]
    fn report_roundtrips_and_validates() {
        let report = run(&tiny());
        let json = to_json(&report);
        let back = validate_schema(&json).expect("fresh report must validate");
        assert_eq!(back, report);
        assert!(report.deterministic, "analysis must not depend on pool size");
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.runs[0].threads, 1);
        assert_eq!(report.runs[1].threads, 2);
    }

    #[test]
    fn schema_violations_are_rejected() {
        assert!(validate_schema("{}").is_err());
        assert!(validate_schema("not json").is_err());

        let mut report = run(&tiny());
        report.schema_version = 999;
        assert!(validate_schema(&to_json(&report)).is_err());
        report.schema_version = SCHEMA_VERSION;
        report.runs.clear();
        assert!(validate_schema(&to_json(&report)).is_err());
    }

    #[test]
    fn live_section_is_exact_and_positive() {
        let report = run(&tiny());
        assert!(report.live.incremental_exact, "incremental pass must match one-shot");
        assert_eq!(report.live.events, report.trace_events);
        assert!(report.live.batches >= 1);
        assert!(report.live.speedup > 0.0);
        assert!(render_text(&report).contains("live ingestion:"));

        let mut broken = report;
        broken.live.incremental_exact = false;
        assert!(validate_schema(&to_json(&broken)).is_err());
    }

    #[test]
    fn decode_section_is_exact_and_positive() {
        let report = run(&tiny());
        assert!(report.decode.borrowed_exact, "borrowed view must reproduce the owned trace");
        assert_eq!(report.decode.events, report.trace_events);
        assert_eq!(report.decode.bytes, report.trace_bytes);
        assert!(report.decode.speedup > 0.0);
        assert!(render_text(&report).contains("borrowed zero-copy"));

        let mut broken = report;
        broken.decode.borrowed_exact = false;
        assert!(validate_schema(&to_json(&broken)).is_err());
    }

    #[test]
    fn committed_baseline_is_schema_valid() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ANALYZE.json");
        let json = std::fs::read_to_string(path)
            .expect("BENCH_ANALYZE.json must be committed at the repo root");
        let report = validate_schema(&json).expect("committed baseline must match the schema");
        assert_eq!(report.workload, BENCH_WORKLOAD);
    }

    #[test]
    fn render_mentions_host_parallelism() {
        let report = run(&tiny());
        let text = render_text(&report);
        assert!(text.contains("available_parallelism"));
        assert!(text.contains("end-to-end"));
    }
}

//! Minimal command-line argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, positional arguments and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Parsed {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Remaining positional arguments.
    pub positionals: Vec<String>,
    /// `--key value` options and bare `--flag`s (value `"true"`).
    pub options: BTreeMap<String, String>,
}

/// Options that never take a value.
const BARE_FLAGS: &[&str] =
    &["json", "csv", "no-type2", "help", "version", "strict", "self-profile"];

/// Parse an argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if key.is_empty() {
                return Err("unexpected bare `--`".into());
            }
            if let Some((k, v)) = key.split_once('=') {
                out.options.insert(k.to_string(), v.to_string());
            } else if BARE_FLAGS.contains(&key) {
                out.options.insert(key.to_string(), "true".into());
            } else {
                match it.next() {
                    Some(v) => {
                        out.options.insert(key.to_string(), v.clone());
                    }
                    None => return Err(format!("option --{key} expects a value")),
                }
            }
        } else if out.command.is_empty() {
            out.command = a.clone();
        } else {
            out.positionals.push(a.clone());
        }
    }
    Ok(out)
}

impl Parsed {
    /// A typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: {v}")),
            None => Ok(default),
        }
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).map(String::as_str) == Some("true")
    }

    /// A required positional argument.
    pub fn positional(&self, idx: usize, what: &str) -> Result<&str, String> {
        self.positionals.get(idx).map(String::as_str).ok_or_else(|| format!("missing {what}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_positionals() {
        let p = parse(&sv(&["analyze", "trace.cltr", "extra"])).unwrap();
        assert_eq!(p.command, "analyze");
        assert_eq!(p.positionals, vec!["trace.cltr", "extra"]);
        assert_eq!(p.positional(0, "trace").unwrap(), "trace.cltr");
        assert!(p.positional(5, "nope").is_err());
    }

    #[test]
    fn parses_options_and_flags() {
        let p = parse(&sv(&["run", "tsp", "--threads", "8", "--json", "--scale=0.5"])).unwrap();
        assert_eq!(p.get_or("threads", 1usize).unwrap(), 8);
        assert_eq!(p.get_or("scale", 1.0f64).unwrap(), 0.5);
        assert!(p.flag("json"));
        assert!(!p.flag("csv"));
        assert_eq!(p.get_or("seed", 42u64).unwrap(), 42);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse(&sv(&["run", "--threads"])).is_err());
    }

    #[test]
    fn invalid_typed_value_is_error() {
        let p = parse(&sv(&["run", "--threads", "abc"])).unwrap();
        assert!(p.get_or("threads", 1usize).is_err());
    }

    #[test]
    fn bare_double_dash_is_error() {
        assert!(parse(&sv(&["run", "--"])).is_err());
    }
}

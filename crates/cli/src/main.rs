//! `critlock` — the command-line frontend of the critical lock analysis
//! toolkit.
//!
//! ```text
//! critlock list
//! critlock run <workload> [--threads N] [--scale S] [--seed X] [-o|--out trace.cltr]
//! critlock analyze <trace> [--top N] [--csv|--json] [--no-type2] [--threads N]
//! critlock gantt <trace> [--width N]
//! critlock bench [--scale S] [--reps N] [--threads 1,2,8] [--out FILE]
//! critlock whatif <trace> --lock NAME [--factor F]
//! critlock online <trace>
//! critlock serve [--listen ADDR] [--status ADDR] [--metrics ADDR] [--queue N]
//!                [--backpressure block|drop] [--journal DIR] [--idle-timeout-ms N]
//!                [--shards N] [--forward ADDR] [--collector-id ID]
//!                [--window-secs N]
//! critlock push <trace> --to ADDR [--pace-ms N] [--timeout SECS] [--retries N]
//!                [--fault-plan NAME|SPEC]
//! critlock status --at ADDR [--json] [--timeout SECS]
//! critlock health <addr> [--json] [--timeout SECS]
//! critlock metrics <addr> [--timeout SECS]
//! critlock aggregate [INPUT...] [--at ADDR] [--json] [--top N] [--out FILE]
//! ```

mod args;

use critlock_analysis::report::{render_csv, render_text, to_json, RenderOptions};
use critlock_analysis::{
    analyze, analyze_phase, blocker_report, critical_path, online_analyze, project_shrink,
    thread_report,
};
use critlock_trace::Trace;
use critlock_workloads::{suite, WorkloadCfg};
use std::process::ExitCode;

const USAGE: &str = "critlock — critical lock analysis (Chen & Stenström, SC 2012)

USAGE:
  critlock list
      List the built-in workloads.
  critlock run <workload> [--threads N] [--scale S] [--seed X] [--out FILE]
      Run a workload on the simulator; print the analysis, optionally
      save the trace (.cltr binary, or .jsonl when the name ends so).
  critlock analyze <trace> [--top N] [--csv|--json] [--no-type2] [--phase MARKER]
                   [--threads N] [--strict] [--max-events N] [--max-threads N]
                   [--max-bytes N] [--deadline-ms N] [--self-profile]
      Run critical lock analysis on a recorded trace (optionally only on
      the window delimited by a named phase marker). --threads sizes the
      analysis worker pool (default: the host's available parallelism);
      the output is bit-identical at any thread count. By default a
      damaged trace is *salvaged* — each thread is truncated to its
      longest protocol-consistent prefix, unrepairable threads are
      quarantined — and the report carries a `salvage` section plus a
      `degraded` flag; --strict restores fail-fast loading instead. The
      --max-* / --deadline-ms budgets bound decode and analysis cost:
      oversized inputs are tail-truncated deterministically (degraded
      output), never an abort. --self-profile times each pipeline stage
      (decode, salvage, segments, CP walk, metrics) and embeds the span
      tree in the JSON report; the analysis numbers are bit-identical
      with or without it.
  critlock blockers <trace> [--top N]
      Show who-blocks-whom edges, heaviest waits first.
  critlock threads <trace>
      Show per-thread criticality (critical-path share vs busy time).
  critlock gantt <trace> [--width N]
      Render the execution and its critical path as ASCII art.
  critlock whatif <trace> --lock NAME [--factor F]
      Project the speedup from shrinking one lock's critical sections.
  critlock online <trace>
      Run the forward (online) critical-path profile.
  critlock bench [--scale S] [--app-threads N] [--seed X] [--reps N]
                 [--threads 1,2,8] [--out FILE]
      Time every analysis pipeline stage (decode, segment, critical-path
      walk, metrics, end-to-end) on a large synthetic trace at each
      requested pool size, and emit the machine-readable report that
      BENCH_ANALYZE.json at the repo root is generated from.
  critlock serve [--listen ADDR] [--status ADDR] [--metrics ADDR] [--queue N]
                 [--backpressure block|drop] [--interval-ms N]
                 [--journal DIR] [--journal-quota-bytes N]
                 [--journal-segment-bytes N] [--checkpoint-interval-ms N]
                 [--idle-timeout-ms N] [--threads N]
                 [--strict] [--max-sessions N] [--session-quota-bytes N]
                 [--max-events N] [--shards N] [--forward ADDR]
                 [--forward-interval-ms N] [--forward-fallback ADDR]
                 [--forward-timeout-ms N] [--forward-retries N]
                 [--forward-fault-plan NAME|SPEC] [--collector-id ID]
                 [--max-rollup-sessions N] [--window-secs N]
      Run the live collector daemon. ADDR is unix:/path/to.sock or
      host:port. Sessions stream in on --listen; snapshots are served on
      --status. With --journal, every accepted frame is logged to a
      crash-safe per-session journal in DIR and recovered on restart.
      Journals rotate into CRC-framed segments every
      --journal-segment-bytes (default: no rotation), and the analysis
      state is checkpointed every --checkpoint-interval-ms (default
      2000) so recovery replays only the un-checkpointed tail;
      fully-absorbed segments are pruned. --journal-quota-bytes caps
      the total durable bytes (journals + checkpoints + spool): at the
      quota — or on ENOSPC — a session's journaling degrades to
      in-memory-only (not crash-resumable, flagged in health and
      status) but ingestion and analysis continue unharmed.
      With --idle-timeout-ms, stalled connections are severed and their
      sessions finalized. --threads sizes the snapshot analysis pool
      (default: the host's available parallelism). --max-sessions caps
      concurrent sessions (excess connects are shed and counted in
      status); --session-quota-bytes caps per-session ingest bytes and
      --max-events caps per-session assembled events — over-quota
      sessions are truncated and marked degraded (default) or
      disconnected (--strict). With --metrics, collector-wide counters,
      gauges and latency histograms are served Prometheus-style on ADDR.
      --shards N splits ingestion into N independent worker shards
      (sessions route by resume-token hash; per-shard counters appear in
      status and as labelled metrics). --forward ADDR pushes this
      collector's rollup to a parent collector's status socket every
      --forward-interval-ms (default 500), forming an aggregation tree;
      give each child a distinct --collector-id so anonymous sessions
      stay distinct in the fleet aggregate. Failed pushes retry with
      capped exponential backoff, bounded per push by
      --forward-timeout-ms (default 5000); after --forward-retries
      (default 5) consecutive failures the forwarder fails over to
      --forward-fallback (when given) and probes its way back. With
      --journal, an undelivered rollup is spooled to
      <journal>/outbox.clag and re-forwarded after a restart.
      --max-rollup-sessions caps the sessions a parent retains from
      child pushes (default 65536); pushes past the cap are rejected
      whole. --window-secs N maintains sliding time windows per session:
      snapshots and rollups additionally report the critical locks of
      the most recently closed N-second window, so a never-ending
      service can be watched over the last N seconds instead of its
      whole history.
  critlock push <trace> --to ADDR [--pace-ms N] [--timeout SECS]
                [--retries N] [--fault-plan NAME|SPEC]
      Stream a recorded trace to a running collector, optionally pacing
      the event frames to emulate a live producer. Pushes are resumable:
      on transport errors the client reconnects (up to --retries times,
      default 5) and replays only what the collector has not
      acknowledged; --retries 0 pushes anonymously in a single attempt.
      --timeout bounds connect and socket I/O so a dead collector fails
      fast. --fault-plan injects deterministic transport faults
      (disconnect|truncation|bit-flip|stall|slow-loris, or a spec like
      `cut@900;flip@1200`) for testing the recovery path.
  critlock status --at ADDR [--json] [--timeout SECS]
      Query a collector's live analysis snapshots. --timeout bounds the
      query so a hung collector yields an error, not a hang.
  critlock health <addr> [--json] [--timeout SECS]
      Probe a collector's health over its status socket and classify it
      ok / degraded / unhealthy from queue saturation, shed and quota
      rates, journal write errors, analysis worker panics and forward
      staleness. Exit code is the classification, Nagios-style: 0 ok,
      1 degraded, 2 unhealthy, 3 unreachable — usable directly as a
      liveness/readiness probe. --timeout defaults to 5 seconds.
  critlock metrics <addr> [--timeout SECS]
      Scrape a collector's metrics endpoint (Prometheus exposition
      format). <addr> is the collector's --metrics address.
  critlock aggregate [INPUT...] [--at ADDR] [--json] [--top N] [--out FILE]
                     [--timeout SECS]
      Merge per-session critical-lock rankings into one fleet-wide
      report: which locks are critical in what fraction of sessions, and
      their mean critical-path share. INPUTs are CLAG rollup files
      (*.clag, as written by --out or a collector), directories — every
      *.clag underneath is merged, so a dead collector's journal
      directory (with its orphaned outbox.clag spool) aggregates
      directly — and/or recorded traces, which are analyzed and
      digested on the fly; --at fetches a
      live collector's rollup (repeatable via multiple invocations and
      --out, since merging is idempotent). --out saves the merged rollup
      as a CLAG file for later (re-)aggregation. The report is
      deterministic: byte-identical for the same set of sessions, no
      matter how they were sharded, ordered or batched.
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `health` is a probe with Nagios-style exit semantics (0 ok,
    // 1 degraded, 2 unhealthy, 3 unreachable), so it bypasses the
    // ordinary ok/err exit mapping.
    if argv.first().map(String::as_str) == Some("health") {
        match args::parse(&argv).and_then(|p| cmd_health(&p)) {
            Ok((output, code)) => {
                print!("{output}");
                return ExitCode::from(code);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(3);
            }
        }
    }
    match run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `critlock --help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<String, String> {
    let p = args::parse(argv)?;
    if p.flag("help") || p.command.is_empty() || p.command == "help" {
        return Ok(USAGE.to_string());
    }
    match p.command.as_str() {
        "list" => cmd_list(),
        "run" => cmd_run(&p),
        "analyze" => cmd_analyze(&p),
        "bench" => cmd_bench(&p),
        "blockers" => cmd_blockers(&p),
        "threads" => cmd_threads(&p),
        "gantt" => cmd_gantt(&p),
        "whatif" => cmd_whatif(&p),
        "online" => cmd_online(&p),
        "serve" => cmd_serve(&p),
        "push" => cmd_push(&p),
        "status" => cmd_status(&p),
        "health" => cmd_health(&p).map(|(output, _exit)| output),
        "metrics" => cmd_metrics(&p),
        "aggregate" => cmd_aggregate(&p),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn cmd_list() -> Result<String, String> {
    let mut out = String::from("built-in workloads:\n");
    for w in suite::all() {
        out.push_str(&format!("  {:<16} {}\n", w.name, w.description));
    }
    Ok(out)
}

fn load_trace(path: &str) -> Result<Trace, String> {
    critlock_trace::jsonl::load_auto(path).map_err(|e| format!("cannot load {path}: {e}"))
}

fn cmd_run(p: &args::Parsed) -> Result<String, String> {
    let name = p.positional(0, "workload name (see `critlock list`)")?;
    let threads: usize = p.get_or("threads", 8usize)?;
    let cfg = WorkloadCfg::with_threads(threads)
        .with_scale(p.get_or("scale", 1.0f64)?)
        .with_seed(p.get_or("seed", 42u64)?);

    let trace = suite::run_workload(name, &cfg)
        .ok_or_else(|| format!("unknown workload `{name}` (see `critlock list`)"))?
        .map_err(|e| format!("simulation failed: {e}"))?;

    let mut out = String::new();
    if let Some(path) = p.options.get("out") {
        if path.ends_with(".jsonl") {
            critlock_trace::jsonl::save(&trace, path)
        } else {
            critlock_trace::codec::save(&trace, path)
        }
        .map_err(|e| format!("cannot save {path}: {e}"))?;
        out.push_str(&format!(
            "saved trace ({} events, {} threads) to {path}\n\n",
            trace.num_events(),
            trace.num_threads()
        ));
    }
    let rep = analyze(&trace);
    out.push_str(&render_text(&rep, &RenderOptions { top: Some(10), ..Default::default() }));
    Ok(out)
}

/// Build the scoped analysis worker pool selected by `--threads`
/// (default: the host's available parallelism). Analysis output is
/// bit-identical at any pool size; the flag only trades CPU for latency.
fn analysis_pool(p: &args::Parsed) -> Result<rayon::ThreadPool, String> {
    let threads: usize = p.get_or("threads", 0usize)?;
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| format!("cannot build analysis pool: {e}"))
}

/// Build a [`critlock_trace::Budget`] from the `--max-*` / `--deadline-ms`
/// options. All limits default to unlimited.
fn budget_from(p: &args::Parsed) -> Result<critlock_trace::Budget, String> {
    let mut b = critlock_trace::Budget::unlimited();
    if let Some(v) = p.options.get("max-events") {
        b.max_events = Some(v.parse().map_err(|_| format!("invalid --max-events: {v}"))?);
    }
    if let Some(v) = p.options.get("max-threads") {
        b.max_threads = Some(v.parse().map_err(|_| format!("invalid --max-threads: {v}"))?);
    }
    if let Some(v) = p.options.get("max-bytes") {
        b.max_bytes = Some(v.parse().map_err(|_| format!("invalid --max-bytes: {v}"))?);
    }
    if let Some(v) = p.options.get("deadline-ms") {
        let ms: u64 = v.parse().map_err(|_| format!("invalid --deadline-ms: {v}"))?;
        b = b.with_deadline_in(std::time::Duration::from_millis(ms));
    }
    Ok(b)
}

fn cmd_analyze(p: &args::Parsed) -> Result<String, String> {
    let pool = analysis_pool(p)?;
    let path = p.positional(0, "trace file")?;
    let budget = budget_from(p)?;
    // --self-profile wraps every stage in a span; the recorder only
    // watches the clock, so the analysis output stays bit-identical.
    let profile = p.flag("self-profile").then(|| critlock_obs::SpanRecorder::new("analyze"));
    let (trace, salvage) = if p.flag("strict") {
        let started = std::time::Instant::now();
        let t = pool.install(|| load_trace(path))?;
        if let Some(rec) = &profile {
            rec.record_ns("decode", started.elapsed().as_nanos() as u64);
        }
        (t, None)
    } else {
        let s = pool
            .install(|| {
                critlock_trace::salvage::load_timed(path, &budget, &mut |stage, took| {
                    if let Some(rec) = &profile {
                        rec.record_ns(stage, took.as_nanos() as u64);
                    }
                })
            })
            .map_err(|e| format!("cannot load {path}: {e}"))?;
        (s.trace, Some(s.report))
    };
    let mut rep = match (p.options.get("phase"), &profile) {
        (Some(marker), rec) => {
            let started = std::time::Instant::now();
            let phased = pool
                .install(|| analyze_phase(&trace, marker))
                .ok_or_else(|| format!("marker `{marker}` not found (or fires only once)"))?;
            if let Some(rec) = rec {
                rec.record_ns("analyze_phase", started.elapsed().as_nanos() as u64);
            }
            phased
        }
        (None, Some(rec)) => pool.install(|| critlock_analysis::analyze_profiled(&trace, rec)),
        (None, None) => pool.install(|| analyze(&trace)),
    };
    if let Some(rec) = profile {
        rep.self_profile = Some(rec.finish());
    }
    let mut salvage_note = String::new();
    if let Some(report) = salvage {
        if !report.is_clean() {
            salvage_note = format!(
                "\nsalvage: kept {} events, dropped {}, synthesized {}, clamped {} \
                 timestamps, quarantined {} threads (confidence {:.3}{})\n",
                report.events_kept,
                report.events_dropped,
                report.events_synthesized,
                report.timestamps_clamped,
                report.threads_quarantined,
                report.confidence,
                if report.degraded { ", DEGRADED by budget" } else { "" },
            );
            rep.degraded = report.degraded;
            rep.salvage = Some(report);
        }
    }
    if p.flag("json") {
        return Ok(to_json(&rep));
    }
    if p.flag("csv") {
        return Ok(render_csv(&rep));
    }
    let top = p
        .options
        .get("top")
        .map(|v| v.parse::<usize>())
        .transpose()
        .map_err(|_| "invalid --top".to_string())?;
    let mut out =
        render_text(&rep, &RenderOptions { top, type2: !p.flag("no-type2"), derived: true });
    out.push_str(&salvage_note);
    Ok(out)
}

fn cmd_bench(p: &args::Parsed) -> Result<String, String> {
    use critlock_bench::perfbench::{self, BenchConfig};

    let mut cfg = BenchConfig::default();
    cfg.scale = p.get_or("scale", cfg.scale)?;
    cfg.app_threads = p.get_or("app-threads", cfg.app_threads)?;
    cfg.seed = p.get_or("seed", cfg.seed)?;
    cfg.reps = p.get_or("reps", cfg.reps)?;
    if let Some(list) = p.options.get("threads") {
        cfg.thread_counts = list
            .split(',')
            .map(|s| s.trim().parse::<usize>().map_err(|_| format!("invalid --threads: {list}")))
            .collect::<Result<Vec<_>, _>>()?;
        if cfg.thread_counts.is_empty() || cfg.thread_counts.contains(&0) {
            return Err("--threads expects a comma list of positive counts".into());
        }
    }

    let report = perfbench::run(&cfg);
    let json = perfbench::to_json(&report);
    perfbench::validate_schema(&json)
        .map_err(|e| format!("generated report fails its own schema: {e}"))?;
    let mut out = perfbench::render_text(&report);
    if let Some(path) = p.options.get("out") {
        std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    Ok(out)
}

fn cmd_blockers(p: &args::Parsed) -> Result<String, String> {
    let trace = load_trace(p.positional(0, "trace file")?)?;
    let rep = blocker_report(&trace);
    let top: usize = p.get_or("top", 15usize)?;
    let mut out = rep.render_text(top);
    if let Some(t) = rep.top_blocker() {
        out.push_str(&format!("\ntop blocker: {} (causes the most waiting in other threads)\n", t));
    }
    Ok(out)
}

fn cmd_threads(p: &args::Parsed) -> Result<String, String> {
    let trace = load_trace(p.positional(0, "trace file")?)?;
    let cp = critical_path(&trace);
    let rep = thread_report(&trace, &cp);
    let mut out = rep.render_text();
    out.push_str(&format!(
        "\n{} of {} threads carry part of the critical path\n",
        rep.carriers,
        trace.num_threads()
    ));
    Ok(out)
}

fn cmd_gantt(p: &args::Parsed) -> Result<String, String> {
    let trace = load_trace(p.positional(0, "trace file")?)?;
    let cp = critical_path(&trace);
    let width: usize = p.get_or("width", 100usize)?;
    Ok(critlock_analysis::gantt::render(
        &trace,
        &cp,
        &critlock_analysis::gantt::GanttOptions { width, show_cp: true },
    ))
}

fn cmd_whatif(p: &args::Parsed) -> Result<String, String> {
    let trace = load_trace(p.positional(0, "trace file")?)?;
    let lock = p.options.get("lock").ok_or_else(|| "missing --lock NAME".to_string())?;
    let factor: f64 = p.get_or("factor", 0.5f64)?;
    if !(0.0..=1.0).contains(&factor) {
        return Err("--factor must be in [0,1]".into());
    }
    let rep = analyze(&trace);
    let proj = project_shrink(&rep, lock, factor)
        .ok_or_else(|| format!("lock `{lock}` not found in trace"))?;
    Ok(format!(
        "shrinking critical sections of {} to {:.0}%:\n\
         critical-path time saved : {}\n\
         projected makespan       : {} (was {})\n\
         projected speedup        : {:.3}x (first-order upper bound)\n",
        proj.name,
        factor * 100.0,
        proj.cp_time_saved,
        proj.projected_makespan,
        rep.makespan,
        proj.projected_speedup,
    ))
}

fn cmd_online(p: &args::Parsed) -> Result<String, String> {
    let trace = load_trace(p.positional(0, "trace file")?)?;
    let rep = online_analyze(&trace);
    let mut out = format!(
        "online critical-path profile (forward pass)\ncp length {}  final thread {:?}\n",
        rep.cp_length, rep.final_thread
    );
    for l in rep.locks.iter().take(10) {
        out.push_str(&format!(
            "  {:<24} cp {:>10}  ({:.2}%)\n",
            l.name,
            l.cp_time,
            l.cp_time_frac * 100.0
        ));
    }
    Ok(out)
}

fn parse_addr(s: &str) -> Result<critlock_collector::Addr, String> {
    critlock_collector::Addr::parse(s).map_err(|e| e.to_string())
}

fn cmd_serve(p: &args::Parsed) -> Result<String, String> {
    use critlock_collector::{start, Backpressure, CollectorConfig};

    let listen = p.options.get("listen").map(String::as_str).unwrap_or("127.0.0.1:9797");
    let mut config = CollectorConfig::new(parse_addr(listen)?);
    if let Some(status) = p.options.get("status") {
        config.status_addr = Some(parse_addr(status)?);
    }
    if let Some(metrics) = p.options.get("metrics") {
        config.metrics_addr = Some(parse_addr(metrics)?);
    }
    config.queue_capacity = p.get_or("queue", config.queue_capacity)?;
    config.backpressure = match p.options.get("backpressure").map(String::as_str) {
        None | Some("block") => Backpressure::Block,
        Some("drop") => Backpressure::Drop,
        Some(other) => return Err(format!("invalid --backpressure `{other}` (block|drop)")),
    };
    config.snapshot_interval = std::time::Duration::from_millis(p.get_or("interval-ms", 200u64)?);
    if let Some(dir) = p.options.get("journal") {
        config.journal_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(v) = p.options.get("journal-quota-bytes") {
        let quota: u64 = v.parse().map_err(|_| format!("invalid --journal-quota-bytes: {v}"))?;
        if quota == 0 {
            return Err("--journal-quota-bytes must be >= 1".into());
        }
        config.journal_quota_bytes = Some(quota);
    }
    if let Some(v) = p.options.get("journal-segment-bytes") {
        let seg: u64 = v.parse().map_err(|_| format!("invalid --journal-segment-bytes: {v}"))?;
        if seg == 0 {
            return Err("--journal-segment-bytes must be >= 1".into());
        }
        config.journal_segment_bytes = Some(seg);
    }
    if let Some(ms) = p.options.get("checkpoint-interval-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("invalid --checkpoint-interval-ms: {ms}"))?;
        config.checkpoint_interval = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = p.options.get("idle-timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("invalid --idle-timeout-ms: {ms}"))?;
        config.idle_timeout = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(threads) = p.options.get("threads") {
        let threads: usize =
            threads.parse().map_err(|_| format!("invalid --threads: {threads}"))?;
        if threads == 0 {
            return Err("--threads must be >= 1".into());
        }
        config.analysis_threads = Some(threads);
    }
    if let Some(v) = p.options.get("max-sessions") {
        config.max_sessions = Some(v.parse().map_err(|_| format!("invalid --max-sessions: {v}"))?);
    }
    if let Some(v) = p.options.get("session-quota-bytes") {
        config.session_quota_bytes =
            Some(v.parse().map_err(|_| format!("invalid --session-quota-bytes: {v}"))?);
    }
    if let Some(v) = p.options.get("max-events") {
        config.max_events = Some(v.parse().map_err(|_| format!("invalid --max-events: {v}"))?);
    }
    config.strict = p.flag("strict");
    config.shards = p.get_or("shards", config.shards)?;
    if config.shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    if let Some(parent) = p.options.get("forward") {
        config.forward = Some(parse_addr(parent)?);
    }
    config.forward_interval =
        std::time::Duration::from_millis(p.get_or("forward-interval-ms", 500u64)?);
    if let Some(fallback) = p.options.get("forward-fallback") {
        config.forward_fallback = Some(parse_addr(fallback)?);
    }
    config.forward_timeout =
        std::time::Duration::from_millis(p.get_or("forward-timeout-ms", 5000u64)?);
    let retries: u32 = p.get_or("forward-retries", config.forward_retry.max_attempts)?;
    if retries == 0 {
        return Err("--forward-retries must be >= 1".into());
    }
    config.forward_retry = critlock_trace::RetryPolicy::with_attempts(retries);
    if let Some(spec) = p.options.get("forward-fault-plan") {
        config.forward_fault_plan = Some(
            critlock_trace::FaultPlan::resolve(spec)
                .map_err(|e| format!("invalid --forward-fault-plan: {e}"))?,
        );
    }
    if let Some(id) = p.options.get("collector-id") {
        config.collector_id = id.clone();
    }
    config.max_rollup_sessions = p.get_or("max-rollup-sessions", config.max_rollup_sessions)?;
    if config.max_rollup_sessions == 0 {
        return Err("--max-rollup-sessions must be >= 1".into());
    }
    if let Some(secs) = p.options.get("window-secs") {
        let secs: u64 = secs.parse().map_err(|_| format!("invalid --window-secs: {secs}"))?;
        if secs == 0 {
            return Err("--window-secs must be >= 1".into());
        }
        // Instrumented sessions timestamp events in nanoseconds.
        config.window_width = Some(secs.saturating_mul(1_000_000_000));
    }

    let handle = start(config).map_err(|e| format!("cannot start collector: {e}"))?;
    println!("critlock collector: ingest on {}", handle.ingest_addr());
    if let Some(status) = handle.status_addr() {
        println!("critlock collector: status on {status}");
    }
    if let Some(metrics) = handle.metrics_addr() {
        println!("critlock collector: metrics on {metrics}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // Foreground daemon: run until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_push(p: &args::Parsed) -> Result<String, String> {
    let trace = load_trace(p.positional(0, "trace file")?)?;
    let to = p.options.get("to").ok_or_else(|| "missing --to ADDR".to_string())?;
    let addr = parse_addr(to)?;
    let pace = match p.options.get("pace-ms") {
        Some(ms) => Some(std::time::Duration::from_millis(
            ms.parse().map_err(|_| format!("invalid --pace-ms: {ms}"))?,
        )),
        None => None,
    };
    let timeout = match p.options.get("timeout") {
        Some(s) => Some(std::time::Duration::from_secs(
            s.parse().map_err(|_| format!("invalid --timeout: {s}"))?,
        )),
        None => None,
    };
    let retries: u32 = p.get_or("retries", 5u32)?;
    let fault_plan = p
        .options
        .get("fault-plan")
        .map(|spec| critlock_trace::FaultPlan::resolve(spec))
        .transpose()
        .map_err(|e| format!("invalid --fault-plan: {e}"))?;
    let opts = critlock_collector::PushOptions {
        pace,
        timeout,
        retry: critlock_trace::RetryPolicy::with_attempts(retries),
        fault_plan,
        token: None,
    };
    let sent = critlock_collector::push_with(&addr, &trace, &opts)
        .map_err(|e| format!("push to {addr} failed: {e}"))?;
    Ok(format!(
        "pushed {sent} frames ({} events, {} threads) to {addr}\n",
        trace.num_events(),
        trace.num_threads()
    ))
}

fn cmd_status(p: &args::Parsed) -> Result<String, String> {
    let at = p.options.get("at").ok_or_else(|| "missing --at ADDR".to_string())?;
    let addr = parse_addr(at)?;
    let timeout = match p.options.get("timeout") {
        Some(s) => Some(std::time::Duration::from_secs(
            s.parse().map_err(|_| format!("invalid --timeout: {s}"))?,
        )),
        None => None,
    };
    let reply = critlock_collector::fetch_status_text_timeout(&addr, p.flag("json"), timeout)
        .map_err(|e| format!("status query to {addr} failed: {e}"))?;
    if reply.is_empty() {
        // The ingest socket (and anything else that is not a status
        // endpoint) hangs up without replying.
        return Err(format!("status query to {addr} failed: empty reply (not a status endpoint?)"));
    }
    Ok(reply)
}

/// `critlock health`: probe a collector and classify it. Returns the
/// rendered report plus the Nagios-style exit code (0 ok, 1 degraded,
/// 2 unhealthy); transport errors bubble up as `Err` and exit 3.
fn cmd_health(p: &args::Parsed) -> Result<(String, u8), String> {
    let at = p.positional(0, "status address")?;
    let addr = parse_addr(at)?;
    let secs: u64 = p.get_or("timeout", 5u64)?;
    let timeout = Some(std::time::Duration::from_secs(secs.max(1)));
    let report = critlock_collector::fetch_health(&addr, timeout)
        .map_err(|e| format!("health probe of {addr} failed: {e}"))?;
    let output = if p.flag("json") {
        let mut json = report.render_json()?;
        json.push('\n');
        json
    } else {
        report.render_text()
    };
    Ok((output, report.class.exit_code()))
}

fn cmd_metrics(p: &args::Parsed) -> Result<String, String> {
    let at = p.positional(0, "metrics address")?;
    let addr = parse_addr(at)?;
    let timeout = match p.options.get("timeout") {
        Some(s) => Some(std::time::Duration::from_secs(
            s.parse().map_err(|_| format!("invalid --timeout: {s}"))?,
        )),
        None => None,
    };
    let reply = critlock_collector::fetch_metrics_text(&addr, timeout)
        .map_err(|e| format!("metrics scrape from {addr} failed: {e}"))?;
    if reply.is_empty() {
        return Err(format!(
            "metrics scrape from {addr} failed: empty reply (not a metrics endpoint?)"
        ));
    }
    Ok(reply)
}

/// Collect every `*.clag` file under `dir`, recursively, in sorted
/// order (so directory aggregation is deterministic).
fn collect_clag_files(
    dir: &std::path::Path,
    out: &mut Vec<std::path::PathBuf>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<_> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_clag_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "clag") {
            out.push(path);
        }
    }
    Ok(())
}

fn cmd_aggregate(p: &args::Parsed) -> Result<String, String> {
    use critlock_aggregate::FleetReport;
    use critlock_trace::rollup::Rollup;

    let timeout = match p.options.get("timeout") {
        Some(s) => Some(std::time::Duration::from_secs(
            s.parse().map_err(|_| format!("invalid --timeout: {s}"))?,
        )),
        None => None,
    };
    let mut rollup = Rollup::new();
    for input in &p.positionals {
        let path = std::path::Path::new(input);
        if path.is_dir() {
            // A directory (e.g. a dead collector's journal dir): merge
            // every *.clag underneath, sorted for determinism. This is
            // how an orphaned outbox.clag spool gets ingested.
            let mut files = Vec::new();
            collect_clag_files(path, &mut files)?;
            if files.is_empty() {
                return Err(format!("no .clag files under {input}"));
            }
            for file in files {
                let part = Rollup::load(&file)
                    .map_err(|e| format!("cannot load {}: {e}", file.display()))?;
                rollup.merge(&part);
            }
        } else if input.ends_with(".clag") {
            let part = Rollup::load(input).map_err(|e| format!("cannot load {input}: {e}"))?;
            rollup.merge(&part);
        } else {
            // A recorded trace: analyze it here and digest the report,
            // keyed by its path — the same digest a collector would
            // publish for the session.
            let trace = load_trace(input)?;
            rollup.insert(critlock_analysis::digest_report(input, &analyze(&trace)));
        }
    }
    if let Some(at) = p.options.get("at") {
        let addr = parse_addr(at)?;
        let part = critlock_collector::fetch_rollup(&addr, timeout)
            .map_err(|e| format!("rollup fetch from {addr} failed: {e}"))?;
        rollup.merge(&part);
    }
    if p.positionals.is_empty() && !p.options.contains_key("at") {
        return Err("nothing to aggregate: give CLAG/trace inputs and/or --at ADDR".into());
    }

    let mut out = String::new();
    if let Some(path) = p.options.get("out") {
        rollup.save(path).map_err(|e| format!("cannot write {path}: {e}"))?;
        out.push_str(&format!("wrote rollup ({} session(s)) to {path}\n", rollup.len()));
    }
    let report = FleetReport::from_rollup(&rollup);
    if p.flag("json") {
        out.push_str(&report.to_json());
        return Ok(out);
    }
    let top = p
        .options
        .get("top")
        .map(|v| v.parse::<usize>())
        .transpose()
        .map_err(|_| "invalid --top".to_string())?;
    out.push_str(&report.render_text(top));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&sv(&["--help"])).unwrap().contains("USAGE"));
        assert!(run(&sv(&[])).unwrap().contains("USAGE"));
        assert!(run(&sv(&["bogus"])).is_err());
    }

    #[test]
    fn list_contains_workloads() {
        let out = run(&sv(&["list"])).unwrap();
        assert!(out.contains("radiosity"));
        assert!(out.contains("tsp-opt"));
    }

    #[test]
    fn run_analyze_gantt_whatif_roundtrip() {
        let dir = std::env::temp_dir().join("critlock-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("micro.cltr");
        let path_s = path.to_str().unwrap();

        let out = run(&sv(&["run", "micro", "--threads", "4", "--scale", "0.2", "--out", path_s]))
            .unwrap();
        assert!(out.contains("saved trace"));
        assert!(out.contains("L2"));

        let out = run(&sv(&["analyze", path_s])).unwrap();
        assert!(out.contains("CP Time %"));
        let out = run(&sv(&["analyze", path_s, "--json"])).unwrap();
        assert!(out.trim_start().starts_with('{'));
        let out = run(&sv(&["analyze", path_s, "--csv"])).unwrap();
        assert!(out.starts_with("lock,"));

        let out = run(&sv(&["gantt", path_s, "--width", "60"])).unwrap();
        assert!(out.contains("cp |"));

        let out = run(&sv(&["whatif", path_s, "--lock", "L2", "--factor", "0.5"])).unwrap();
        assert!(out.contains("projected speedup"));
        assert!(run(&sv(&["whatif", path_s, "--lock", "nope"])).is_err());

        let out = run(&sv(&["online", path_s])).unwrap();
        assert!(out.contains("cp length"));

        let out = run(&sv(&["blockers", path_s])).unwrap();
        assert!(out.contains("blocking edges"));
        let out = run(&sv(&["threads", path_s])).unwrap();
        assert!(out.contains("cp %"));
        assert!(run(&sv(&["analyze", path_s, "--phase", "nope"])).is_err());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_unknown_workload_fails() {
        assert!(run(&sv(&["run", "nope"])).is_err());
    }

    /// Regression: `--deadline-ms u64::MAX` used to panic in
    /// `Instant + Duration` overflow inside the budget; it must now mean
    /// "no deadline" and analyze normally.
    #[test]
    fn analyze_with_huge_deadline_does_not_panic() {
        let dir = std::env::temp_dir().join("critlock-cli-deadline");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("micro.cltr");
        let path_s = path.to_str().unwrap();
        run(&sv(&["run", "micro", "--threads", "2", "--scale", "0.2", "--out", path_s])).unwrap();

        let out = run(&sv(&["analyze", path_s, "--deadline-ms", "18446744073709551615"])).unwrap();
        assert!(out.contains("CP Time %"));
        std::fs::remove_file(&path).ok();
    }

    /// `--self-profile` embeds the per-stage span tree in the JSON report
    /// and changes nothing else: stripping the profile must restore a
    /// report equal to the unprofiled run.
    #[test]
    fn analyze_self_profile_embeds_spans_and_stays_bit_identical() {
        use critlock_analysis::AnalysisReport;

        let dir = std::env::temp_dir().join("critlock-cli-selfprof");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("micro.cltr");
        let path_s = path.to_str().unwrap();
        run(&sv(&["run", "micro", "--threads", "2", "--scale", "0.2", "--out", path_s])).unwrap();

        let plain_json = run(&sv(&["analyze", path_s, "--json"])).unwrap();
        let prof_json = run(&sv(&["analyze", path_s, "--json", "--self-profile"])).unwrap();
        assert!(!plain_json.contains("self_profile"));

        let plain: AnalysisReport = serde_json::from_str(&plain_json).unwrap();
        let mut prof: AnalysisReport = serde_json::from_str(&prof_json).unwrap();
        let spans = prof.self_profile.take().expect("--self-profile must embed spans");
        for stage in ["decode", "salvage", "segments", "cp_walk", "metrics"] {
            assert!(spans.find(stage).is_some(), "missing span `{stage}`");
        }
        assert_eq!(plain, prof, "--self-profile must not change the analysis");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_verb_arg_errors() {
        assert!(run(&sv(&["metrics"])).unwrap_err().contains("metrics address"));
        assert!(run(&sv(&["metrics", "not an addr !"])).is_err());
    }

    #[test]
    fn analyze_missing_file_fails() {
        assert!(run(&sv(&["analyze", "/definitely/not/here.cltr"])).is_err());
    }

    #[test]
    fn analyze_empty_file_is_a_clean_error() {
        let dir = std::env::temp_dir().join("critlock-cli-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.cltr");
        std::fs::write(&path, b"").unwrap();
        let err = run(&sv(&["analyze", path.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("cannot load"), "unexpected error text: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_truncated_trace_is_a_clean_error_under_strict() {
        let dir = std::env::temp_dir().join("critlock-cli-trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let full = dir.join("full.cltr");
        let full_s = full.to_str().unwrap();
        run(&sv(&["run", "micro", "--threads", "2", "--scale", "0.2", "--out", full_s])).unwrap();

        let bytes = std::fs::read(&full).unwrap();
        let cut = dir.join("cut.cltr");
        // Cut the file at several byte offsets, including mid-header and
        // mid-event; under --strict every truncation must be an error,
        // never a panic or a silently shortened trace. In default
        // (salvage) mode the same cuts must either recover a degraded
        // trace — visible in the report's salvage section — or fail with
        // the same clean error, never a panic.
        for frac in [1, 3, 7, 9] {
            let cut_len = bytes.len() * frac / 10;
            std::fs::write(&cut, &bytes[..cut_len]).unwrap();
            let err = run(&sv(&["analyze", cut.to_str().unwrap(), "--strict"])).unwrap_err();
            assert!(err.contains("cannot load"), "cut at {cut_len}: {err}");
            match run(&sv(&["analyze", cut.to_str().unwrap(), "--json"])) {
                Ok(json) => {
                    assert!(json.contains("\"salvage\""), "cut at {cut_len}: no salvage: {json}")
                }
                Err(err) => assert!(err.contains("cannot load"), "cut at {cut_len}: {err}"),
            }
        }
        std::fs::remove_file(&full).ok();
        std::fs::remove_file(&cut).ok();
    }

    /// Acceptance criterion of the salvage work: every transport fault of
    /// the PR 2 matrix, applied as a byte-level mutation to an on-disk
    /// CLTR file, must yield either a salvaged analysis whose report
    /// carries a non-empty salvage section, or a typed `cannot load`
    /// error under `--strict` — never a panic, and never a silently
    /// wrong report.
    #[test]
    fn fault_matrix_on_disk_salvages_or_errors_cleanly() {
        use critlock_trace::{FaultAction, FaultPlan};

        let dir = std::env::temp_dir().join("critlock-cli-fault-matrix");
        std::fs::create_dir_all(&dir).unwrap();
        let full = dir.join("full.cltr");
        let full_s = full.to_str().unwrap();
        run(&sv(&["run", "radiosity", "--threads", "8", "--scale", "0.3", "--out", full_s]))
            .unwrap();
        let bytes = std::fs::read(&full).unwrap();
        // The built-in plans anchor faults at offsets up to 2500.
        assert!(bytes.len() > 2600, "trace file too small for the fault matrix");
        let pristine = run(&sv(&["analyze", full_s, "--json"])).unwrap();

        let hurt = dir.join("hurt.cltr");
        let hurt_s = hurt.to_str().unwrap();
        for plan in FaultPlan::all_builtin() {
            let mut mutated = bytes.clone();
            for action in &plan.actions {
                match *action {
                    FaultAction::Cut { at } => mutated.truncate(at as usize),
                    FaultAction::Truncate { at, drop } => {
                        let at = (at as usize).min(mutated.len());
                        let end = (at + drop as usize).min(mutated.len());
                        mutated.drain(at..end);
                    }
                    FaultAction::BitFlip { at } => {
                        let at = (at as usize).min(mutated.len() - 1);
                        mutated[at] ^= critlock_trace::faults::FLIP_MASK;
                    }
                    // Timing faults do not change bytes at rest.
                    FaultAction::Stall { .. } | FaultAction::SlowLoris { .. } => {}
                }
            }
            std::fs::write(&hurt, &mutated).unwrap();

            if mutated == bytes {
                // stall / slow-loris: byte-identical file, identical report.
                let out = run(&sv(&["analyze", hurt_s, "--json"])).unwrap();
                assert_eq!(
                    out, pristine,
                    "plan {}: clean file must analyze identically",
                    plan.name
                );
                continue;
            }
            let err = run(&sv(&["analyze", hurt_s, "--strict"]))
                .expect_err(&format!("plan {}: strict must reject mutated bytes", plan.name));
            assert!(err.contains("cannot load"), "plan {}: {err}", plan.name);
            match run(&sv(&["analyze", hurt_s, "--json"])) {
                Ok(json) => assert!(
                    json.contains("\"salvage\""),
                    "plan {}: salvaged analysis must report what was repaired: {json}",
                    plan.name
                ),
                Err(err) => assert!(err.contains("cannot load"), "plan {}: {err}", plan.name),
            }
        }
        std::fs::remove_file(&full).ok();
        std::fs::remove_file(&hurt).ok();
    }

    #[test]
    fn analyze_salvage_mode_is_identical_on_clean_traces() {
        let dir = std::env::temp_dir().join("critlock-cli-salvage-clean");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("micro.cltr");
        let path_s = path.to_str().unwrap();
        run(&sv(&["run", "micro", "--threads", "4", "--scale", "0.2", "--out", path_s])).unwrap();

        // On an uncorrupted trace, default (salvage) mode must be
        // byte-identical to --strict in every output format.
        for fmt in [&["--json"][..], &["--csv"][..], &[][..]] {
            let mut strict = sv(&["analyze", path_s, "--strict"]);
            strict.extend(fmt.iter().map(|s| s.to_string()));
            let mut lax = sv(&["analyze", path_s]);
            lax.extend(fmt.iter().map(|s| s.to_string()));
            assert_eq!(run(&strict).unwrap(), run(&lax).unwrap(), "format {fmt:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_budget_exhaustion_degrades_not_aborts() {
        let dir = std::env::temp_dir().join("critlock-cli-budget");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("radiosity.cltr");
        let path_s = path.to_str().unwrap();
        run(&sv(&["run", "radiosity", "--threads", "8", "--scale", "0.3", "--out", path_s]))
            .unwrap();

        let json = run(&sv(&["analyze", path_s, "--json", "--max-events", "64"])).unwrap();
        assert!(json.contains("\"degraded\": true"), "missing degraded flag: {json}");
        assert!(json.contains("\"salvage\""), "missing salvage report: {json}");
        // Text mode flags the degradation too.
        let text = run(&sv(&["analyze", path_s, "--max-events", "64"])).unwrap();
        assert!(text.contains("DEGRADED"), "missing degradation note: {text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_is_byte_identical_across_thread_counts() {
        let dir = std::env::temp_dir().join("critlock-cli-threads");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("radiosity.cltr");
        let path_s = path.to_str().unwrap();
        run(&sv(&["run", "radiosity", "--threads", "8", "--scale", "0.3", "--out", path_s]))
            .unwrap();

        let serial = run(&sv(&["analyze", path_s, "--json", "--threads", "1"])).unwrap();
        let parallel = run(&sv(&["analyze", path_s, "--json", "--threads", "8"])).unwrap();
        assert_eq!(serial, parallel, "analysis output must not depend on the pool size");
        // The default (host parallelism) must agree too.
        let auto = run(&sv(&["analyze", path_s, "--json"])).unwrap();
        assert_eq!(serial, auto);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_writes_valid_report() {
        let dir = std::env::temp_dir().join("critlock-cli-bench");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path_s = path.to_str().unwrap();
        let out = run(&sv(&[
            "bench",
            "--scale",
            "0.05",
            "--app-threads",
            "4",
            "--reps",
            "1",
            "--threads",
            "1,2",
            "--out",
            path_s,
        ]))
        .unwrap();
        assert!(out.contains("available_parallelism"));
        let json = std::fs::read_to_string(&path).unwrap();
        critlock_bench::perfbench::validate_schema(&json).unwrap();
        assert!(run(&sv(&["bench", "--threads", "0"])).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_output_format() {
        let dir = std::env::temp_dir().join("critlock-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("micro.jsonl");
        let path_s = path.to_str().unwrap();
        run(&sv(&["run", "micro", "--threads", "2", "--scale", "0.2", "--out", path_s])).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().next().unwrap().contains("\"meta\""));
        run(&sv(&["analyze", path_s])).unwrap();
        std::fs::remove_file(&path).ok();
    }
}

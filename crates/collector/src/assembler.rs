//! Disconnect-tolerant assembly of frame streams into well-formed traces.
//!
//! The strict inverse of the stream codec lives in
//! `critlock_trace::stream::read_trace`; this module accepts the messier
//! reality of live sessions: producers that vanish mid-critical-section,
//! frames dropped under backpressure, registration frames that never
//! arrived. [`SessionAssembler`] folds whatever frames do arrive into a
//! partial [`Trace`], and [`SessionAssembler::finalize`] repairs the
//! partial trace into one that passes `Trace::validate`:
//!
//! * thread streams are made dense (placeholder empty streams for ids
//!   that were referenced but never announced);
//! * objects referenced past the registry are registered with a kind
//!   inferred from their first use;
//! * per-thread, events that violate the protocol state machine (orphans
//!   of dropped frames) are discarded;
//! * open critical sections, barrier waits and condvar waits are closed
//!   at the thread's last-seen timestamp, and a `ThreadExit` is appended —
//!   the paper's convention that an incomplete invocation is accounted up
//!   to the measurement horizon.
//!
//! On a well-formed, gracefully ended session the repair is the identity
//! (beyond ordering streams by thread id), which is what makes live
//! snapshots of complete sessions exactly match offline analysis.

use critlock_analysis::online::{OnlineReport, OnlineState};
use critlock_analysis::WindowRing;
use critlock_obs::Counter;
use critlock_trace::checkpoint::{CheckpointDoc, WindowCheckpoint};
use critlock_trace::rollup::WindowDigest;
use critlock_trace::stream::{Frame, RawFrame};
use critlock_trace::{
    Budget, Event, EventKind, ObjId, ObjInfo, ObjKind, ThreadId, ThreadStream, Trace, Ts,
    SEQ_UNKNOWN,
};
use rustc_hash::{FxHashMap, FxHashSet};

/// How many closed sliding windows each session retains — the "last N
/// seconds" view is `cap × width` deep at most.
pub const WINDOW_RING_CAP: usize = 16;

/// Incremental, loss-tolerant trace assembly for one session.
#[derive(Debug, Default)]
pub struct SessionAssembler {
    trace: Trace,
    started: bool,
    ended: bool,
    frames: u64,
    events: u64,
    budget: Budget,
    events_dropped: u64,
    /// Incremental forward-pass state, extended by each applied frame's
    /// events (O(delta) per frame). Rebuilt from the partial trace when
    /// an out-of-order arrival marks it stale.
    online: OnlineState,
    /// Sliding-window digests, when windowing is enabled for the session.
    ring: Option<WindowRing>,
    /// An event landed inside already-closed window territory; retained
    /// digests must be recomputed from the re-assembled trace.
    windows_stale: bool,
    /// Observability: events arriving in `Events` frames (pre-truncation).
    events_in_counter: Option<Counter>,
    /// Observability: events discarded by the event budget.
    events_dropped_counter: Option<Counter>,
}

impl SessionAssembler {
    /// A fresh assembler with default (empty) metadata and no budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh assembler that enforces `budget.max_events`: events past
    /// the cap are tail-truncated deterministically (in arrival order)
    /// and counted in [`events_dropped`], instead of growing without
    /// bound under a runaway producer.
    ///
    /// [`events_dropped`]: SessionAssembler::events_dropped
    pub fn with_budget(budget: Budget) -> Self {
        SessionAssembler { budget, ..Self::default() }
    }

    /// Attach observability counters for incoming and budget-dropped
    /// events. Pure accounting: assembly output is unaffected.
    pub fn set_counters(&mut self, events_in: Counter, events_dropped: Counter) {
        self.events_in_counter = Some(events_in);
        self.events_dropped_counter = Some(events_dropped);
    }

    /// Fold one frame into the partial trace. Never fails: malformed
    /// sequences are tolerated here and cleaned up in [`finalize`].
    ///
    /// [`finalize`]: SessionAssembler::finalize
    pub fn apply(&mut self, frame: Frame) {
        self.frames += 1;
        match frame {
            Frame::Start { meta } => {
                if !self.started {
                    self.trace.meta = meta;
                    self.started = true;
                }
            }
            Frame::Param { key, value } => {
                self.trace.meta.params.insert(key, value);
            }
            Frame::Objects { first_id, objects } => {
                let first = first_id as usize;
                // Fill any gap left by a dropped registration frame with
                // placeholders; repair re-kinds them from first use.
                while self.trace.objects.len() < first {
                    let i = self.trace.objects.len();
                    self.trace
                        .objects
                        .push(ObjInfo { kind: ObjKind::Marker, name: format!("unregistered-{i}") });
                }
                for (i, obj) in objects.into_iter().enumerate() {
                    let idx = first + i;
                    if idx < self.trace.objects.len() {
                        self.trace.objects[idx] = obj;
                    } else {
                        self.trace.objects.push(obj);
                    }
                }
            }
            Frame::Thread { tid, name } => {
                self.online.declare(tid);
                match self.trace.threads.iter_mut().find(|s| s.tid == tid) {
                    Some(stream) => stream.name = name,
                    None => {
                        let mut stream = ThreadStream::new(tid);
                        stream.name = name;
                        self.trace.threads.push(stream);
                    }
                }
            }
            Frame::Events { tid, mut events } => {
                if let Some(c) = &self.events_in_counter {
                    c.add(events.len() as u64);
                }
                if let Some(cap) = self.budget.max_events {
                    let allow = cap.saturating_sub(self.events);
                    if events.len() as u64 > allow {
                        let dropped = events.len() as u64 - allow;
                        self.events_dropped += dropped;
                        if let Some(c) = &self.events_dropped_counter {
                            c.add(dropped);
                        }
                        events.truncate(allow as usize);
                    }
                }
                self.events += events.len() as u64;
                if let Some(ring) = &self.ring {
                    if events.iter().any(|ev| ev.ts < ring.closed_lo()) {
                        self.windows_stale = true;
                    }
                }
                self.online.ingest(tid, &events);
                let idx = match self.trace.threads.iter().position(|s| s.tid == tid) {
                    Some(idx) => idx,
                    None => {
                        // Announcement frame lost; synthesize the stream.
                        self.trace.threads.push(ThreadStream::new(tid));
                        self.trace.threads.len() - 1
                    }
                };
                self.trace.threads[idx].events.extend(events);
            }
            Frame::End => self.ended = true,
        }
    }

    /// Fold one validated raw frame into the partial trace, decoding
    /// `Events` payloads lazily through the borrowed iterator straight
    /// into the target thread stream — no intermediate `Vec<Event>`.
    /// Equivalent to `apply(raw.decode()?)` for every well-formed frame;
    /// like [`apply`], malformed content is tolerated (the decodable
    /// prefix is kept) rather than failing.
    ///
    /// [`apply`]: SessionAssembler::apply
    pub fn apply_raw(&mut self, raw: &RawFrame) {
        let Some((tid, events)) = raw.events() else {
            // Registration frames are rare and small: the owned decode is
            // the right tool, and keeps the two paths trivially identical.
            match raw.decode() {
                Ok(frame) => self.apply(frame),
                Err(_) => self.frames += 1,
            }
            return;
        };
        self.frames += 1;
        let declared = events.remaining_events();
        if let Some(c) = &self.events_in_counter {
            c.add(declared);
        }
        let mut take = declared;
        if let Some(cap) = self.budget.max_events {
            let allow = cap.saturating_sub(self.events);
            if declared > allow {
                let dropped = declared - allow;
                self.events_dropped += dropped;
                if let Some(c) = &self.events_dropped_counter {
                    c.add(dropped);
                }
                take = allow;
            }
        }
        self.events += take;
        let idx = match self.trace.threads.iter().position(|s| s.tid == tid) {
            Some(idx) => idx,
            None => {
                // Announcement frame lost; synthesize the stream.
                self.trace.threads.push(ThreadStream::new(tid));
                self.trace.threads.len() - 1
            }
        };
        let stream = &mut self.trace.threads[idx];
        let old_len = stream.events.len();
        stream
            .events
            .extend(events.take(take as usize).map_while(|ev| ev.ok().map(|ev| ev.event())));
        let new = &self.trace.threads[idx].events[old_len..];
        if let Some(ring) = &self.ring {
            if new.iter().any(|ev| ev.ts < ring.closed_lo()) {
                self.windows_stale = true;
            }
        }
        self.online.ingest(tid, new);
    }

    /// Whether a `Start` frame has arrived.
    pub fn started(&self) -> bool {
        self.started
    }

    /// Whether the producer ended the session gracefully with `End`.
    pub fn ended(&self) -> bool {
        self.ended
    }

    /// Frames folded in so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Events folded in so far (after budget truncation).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events discarded by the event budget.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Whether the event budget forced a truncation: the assembled trace
    /// is a deterministic prefix of what the producer sent, not all of it.
    pub fn degraded(&self) -> bool {
        self.events_dropped > 0
    }

    /// The partial trace as received (no repair).
    pub fn partial(&self) -> &Trace {
        &self.trace
    }

    /// Produce a well-formed trace from whatever has arrived: a clone of
    /// the partial trace run through [`repair`].
    pub fn finalize(&self) -> Trace {
        let mut trace = self.trace.clone();
        repair(&mut trace);
        trace
    }

    /// Enable sliding-window digests of `width` time units per window
    /// (ring depth [`WINDOW_RING_CAP`]). Call before events arrive.
    pub fn set_window(&mut self, width: Ts) {
        self.ring = Some(WindowRing::new(width, WINDOW_RING_CAP));
    }

    /// The configured sliding-window width, if windowing is enabled.
    pub fn window_width(&self) -> Option<Ts> {
        self.ring.as_ref().map(|r| r.width())
    }

    /// Whether an out-of-order arrival has invalidated the incremental
    /// online state (the next report will rebuild it from the partial
    /// trace). Exposed for tests and observability.
    pub fn online_stale(&self) -> bool {
        self.online.is_stale()
    }

    /// The exact forward-pass report over every applied event: identical
    /// to `online_analyze` of the concatenated partial trace. O(delta)
    /// since the last report in the common in-order case; falls back to
    /// a full rebuild from the partial trace after out-of-order arrivals.
    pub fn online_report(&mut self) -> OnlineReport {
        if self.online.is_stale() {
            self.online = OnlineState::rebuild(&self.trace);
        }
        self.online.report(&self.trace)
    }

    /// Like [`online_report`], but still-live threads' frontiers also
    /// terminate the candidate path — the mid-session estimate a status
    /// line wants; identical once every thread has exited.
    ///
    /// [`online_report`]: SessionAssembler::online_report
    pub fn online_horizon_report(&mut self) -> OnlineReport {
        if self.online.is_stale() {
            self.online = OnlineState::rebuild(&self.trace);
        }
        self.online.report_at_horizon(&self.trace)
    }

    /// Close every sliding window the frontier watermark has moved past,
    /// analyzing each exactly once against `repaired` (the repaired trace
    /// a snapshot is being computed from), and recompute retained digests
    /// first if a late event landed inside closed territory. No-op when
    /// windowing is disabled.
    pub fn advance_windows(&mut self, repaired: &Trace) {
        let Some(ring) = &mut self.ring else { return };
        if self.windows_stale {
            ring.recompute(repaired);
            self.windows_stale = false;
        }
        let watermark =
            if self.ended { Ts::MAX } else { self.online.frontier_bound().unwrap_or(0) };
        ring.advance(repaired, watermark);
    }

    /// The currently retained closed windows, oldest first.
    pub fn windows(&self) -> Vec<WindowDigest> {
        self.ring.as_ref().map(|r| r.closed().cloned().collect()).unwrap_or_default()
    }

    /// The most recently closed window.
    pub fn latest_window(&self) -> Option<WindowDigest> {
        self.ring.as_ref().and_then(|r| r.latest()).cloned()
    }

    /// Capture the full fold state as a durable [`CheckpointDoc`]:
    /// everything [`restore`] needs to resume this assembler so that
    /// replaying only the frames past [`frames`] reproduces, byte for
    /// byte, the state an uninterrupted assembler would have reached.
    ///
    /// [`restore`]: SessionAssembler::restore
    /// [`frames`]: SessionAssembler::frames
    pub fn checkpoint_doc(&self, token: &[u8]) -> CheckpointDoc {
        CheckpointDoc {
            token: token.to_vec(),
            frames: self.frames,
            started: self.started,
            ended: self.ended,
            events: self.events,
            events_dropped: self.events_dropped,
            windows_stale: self.windows_stale,
            trace: self.trace.clone(),
            window: self.ring.as_ref().map(|r| WindowCheckpoint {
                width: r.width(),
                next_index: r.next_index(),
                digests: r.closed().cloned().collect(),
            }),
        }
    }

    /// Rebuild an assembler from a checkpoint. The online forward-pass
    /// state is recomputed from the checkpointed partial trace (the same
    /// rebuild an out-of-order arrival triggers, so reports stay exactly
    /// identical). The window ring is restored verbatim when the
    /// checkpointed width matches the configured `window`; on a width
    /// change the retained digests are discarded and a fresh ring closes
    /// windows from index zero, exactly as a new session would.
    pub fn restore(doc: CheckpointDoc, budget: Budget, window: Option<Ts>) -> Self {
        let online = OnlineState::rebuild(&doc.trace);
        let (ring, windows_stale) = match (doc.window, window) {
            (Some(w), Some(width)) if w.width == width => (
                Some(WindowRing::restore(w.width, WINDOW_RING_CAP, w.next_index, w.digests)),
                doc.windows_stale,
            ),
            (_, Some(width)) => (Some(WindowRing::new(width, WINDOW_RING_CAP)), false),
            (_, None) => (None, false),
        };
        SessionAssembler {
            trace: doc.trace,
            started: doc.started,
            ended: doc.ended,
            frames: doc.frames,
            events: doc.events,
            budget,
            events_dropped: doc.events_dropped,
            online,
            ring,
            windows_stale,
            events_in_counter: None,
            events_dropped_counter: None,
        }
    }
}

/// The object kind an event expects its operand to have.
fn expected_kind(kind: &EventKind) -> Option<(ObjId, ObjKind)> {
    Some(match *kind {
        EventKind::LockAcquire { lock }
        | EventKind::LockContended { lock }
        | EventKind::LockObtain { lock }
        | EventKind::LockRelease { lock } => (lock, ObjKind::Lock),
        EventKind::RwAcquire { lock, .. }
        | EventKind::RwContended { lock, .. }
        | EventKind::RwObtain { lock, .. }
        | EventKind::RwRelease { lock, .. } => (lock, ObjKind::RwLock),
        EventKind::BarrierArrive { barrier, .. } | EventKind::BarrierDepart { barrier, .. } => {
            (barrier, ObjKind::Barrier)
        }
        EventKind::CondWaitBegin { cv }
        | EventKind::CondWakeup { cv, .. }
        | EventKind::CondSignal { cv, .. }
        | EventKind::CondBroadcast { cv, .. } => (cv, ObjKind::Condvar),
        EventKind::Marker { id } => (id, ObjKind::Marker),
        _ => return None,
    })
}

/// Repair a partial trace in place so that `Trace::validate` passes.
/// Identity (modulo thread-stream order) on already-valid traces.
pub fn repair(trace: &mut Trace) {
    // --- dense thread streams ------------------------------------------
    let mut max_tid: Option<u32> = trace.threads.iter().map(|s| s.tid.0).max();
    for stream in &trace.threads {
        for ev in &stream.events {
            if let Some(peer) = peer_tid(&ev.kind) {
                max_tid = Some(max_tid.map_or(peer.0, |m| m.max(peer.0)));
            }
        }
    }
    if let Some(max_tid) = max_tid {
        let old = std::mem::take(&mut trace.threads);
        let mut dense: Vec<ThreadStream> =
            (0..=max_tid).map(|i| ThreadStream::new(ThreadId(i))).collect();
        for stream in old {
            let idx = stream.tid.index();
            dense[idx] = stream;
        }
        trace.threads = dense;
    }

    // --- object registry: infer kinds for unregistered references ------
    let mut inferred: FxHashMap<u32, ObjKind> = FxHashMap::default();
    for stream in &trace.threads {
        for ev in &stream.events {
            if let Some((obj, kind)) = expected_kind(&ev.kind) {
                if obj.0 as usize >= trace.objects.len() {
                    inferred.entry(obj.0).or_insert(kind);
                }
            }
        }
    }
    if let Some(&top) = inferred.keys().max() {
        for i in trace.objects.len() as u32..=top {
            let kind = inferred.get(&i).copied().unwrap_or(ObjKind::Marker);
            trace.objects.push(ObjInfo { kind, name: format!("unregistered-{i}") });
        }
    }

    // --- per-stream protocol repair ------------------------------------
    let objects = trace.objects.clone();
    for stream in &mut trace.threads {
        let events = std::mem::take(&mut stream.events);
        stream.events = repair_stream(events, &objects);
    }
}

fn peer_tid(kind: &EventKind) -> Option<ThreadId> {
    match *kind {
        EventKind::ThreadCreate { child }
        | EventKind::JoinBegin { child }
        | EventKind::JoinEnd { child } => Some(child),
        _ => None,
    }
}

/// Rebuild one thread's event list so it satisfies the validation state
/// machine, dropping orphaned events and closing open waits at the end.
fn repair_stream(events: Vec<Event>, objects: &[ObjInfo]) -> Vec<Event> {
    if events.is_empty() {
        return events;
    }

    let kind_ok = |obj: ObjId, kind: ObjKind| {
        objects.get(obj.0 as usize).is_some_and(|info| info.kind == kind)
    };

    // 0 = idle, 1 = acquiring, 2 = contended, 3 = held (same encoding as
    // `Trace::validate`); rwlocks also remember the requested mode. These
    // are hit once per event, so they use the fast deterministic hasher;
    // close-time iteration sorts the keys to keep synthesized-event order
    // independent of insertion history.
    let mut lock_state: FxHashMap<ObjId, u8> = FxHashMap::default();
    let mut rw_state: FxHashMap<ObjId, (u8, bool)> = FxHashMap::default();
    let mut lock_pending: FxHashMap<ObjId, Vec<usize>> = FxHashMap::default();
    let mut rw_pending: FxHashMap<ObjId, Vec<usize>> = FxHashMap::default();
    let mut in_barrier: Option<(ObjId, u32)> = None;
    let mut in_wait: Option<ObjId> = None;

    let mut out: Vec<Event> = Vec::with_capacity(events.len() + 4);
    let mut last_ts: Ts = 0;
    let mut exited = false;

    for ev in events {
        if exited {
            break;
        }
        // Clamp any backwards timestamp (possible only after frame loss).
        let ts = ev.ts.max(last_ts);

        let keep = match ev.kind {
            EventKind::ThreadStart => out.is_empty(),
            EventKind::ThreadExit => {
                exited = true;
                false // appended at the end, after closing open waits
            }
            EventKind::LockAcquire { lock } => {
                kind_ok(lock, ObjKind::Lock) && *lock_state.entry(lock).or_insert(0) == 0 && {
                    lock_state.insert(lock, 1);
                    true
                }
            }
            EventKind::LockContended { lock } => {
                kind_ok(lock, ObjKind::Lock) && *lock_state.entry(lock).or_insert(0) == 1 && {
                    lock_state.insert(lock, 2);
                    true
                }
            }
            EventKind::LockObtain { lock } => {
                kind_ok(lock, ObjKind::Lock) && matches!(lock_state.get(&lock), Some(1 | 2)) && {
                    lock_state.insert(lock, 3);
                    true
                }
            }
            EventKind::LockRelease { lock } => {
                kind_ok(lock, ObjKind::Lock) && lock_state.get(&lock) == Some(&3) && {
                    lock_state.insert(lock, 0);
                    true
                }
            }
            EventKind::RwAcquire { lock, write } => {
                kind_ok(lock, ObjKind::RwLock)
                    && rw_state.entry(lock).or_insert((0, write)).0 == 0
                    && {
                        rw_state.insert(lock, (1, write));
                        true
                    }
            }
            EventKind::RwContended { lock, write } => {
                kind_ok(lock, ObjKind::RwLock) && rw_state.get(&lock).map(|s| s.0) == Some(1) && {
                    rw_state.insert(lock, (2, write));
                    true
                }
            }
            EventKind::RwObtain { lock, write } => {
                kind_ok(lock, ObjKind::RwLock)
                    && matches!(rw_state.get(&lock).map(|s| s.0), Some(1 | 2))
                    && {
                        rw_state.insert(lock, (3, write));
                        true
                    }
            }
            EventKind::RwRelease { lock, write } => {
                kind_ok(lock, ObjKind::RwLock) && rw_state.get(&lock).map(|s| s.0) == Some(3) && {
                    rw_state.insert(lock, (0, write));
                    true
                }
            }
            EventKind::BarrierArrive { barrier, epoch } => {
                kind_ok(barrier, ObjKind::Barrier) && in_barrier.is_none() && {
                    in_barrier = Some((barrier, epoch));
                    true
                }
            }
            EventKind::BarrierDepart { barrier, epoch } => {
                in_barrier == Some((barrier, epoch)) && {
                    in_barrier = None;
                    true
                }
            }
            EventKind::CondWaitBegin { cv } => {
                kind_ok(cv, ObjKind::Condvar) && in_wait.is_none() && {
                    in_wait = Some(cv);
                    true
                }
            }
            EventKind::CondWakeup { cv, .. } => {
                in_wait == Some(cv) && {
                    in_wait = None;
                    true
                }
            }
            EventKind::CondSignal { cv, .. } | EventKind::CondBroadcast { cv, .. } => {
                kind_ok(cv, ObjKind::Condvar)
            }
            EventKind::Marker { id } => kind_ok(id, ObjKind::Marker),
            EventKind::ThreadCreate { .. }
            | EventKind::JoinBegin { .. }
            | EventKind::JoinEnd { .. } => true,
        };

        if keep {
            if out.is_empty() && ev.kind != EventKind::ThreadStart {
                out.push(Event::new(ts, EventKind::ThreadStart));
            }
            let idx = out.len();
            // Track the indices of an in-flight acquisition so a
            // contended acquire that never completed can be excised.
            match ev.kind {
                EventKind::LockAcquire { lock } => {
                    lock_pending.insert(lock, vec![idx]);
                }
                EventKind::LockContended { lock } => {
                    lock_pending.entry(lock).or_default().push(idx);
                }
                EventKind::LockObtain { lock } => {
                    lock_pending.remove(&lock);
                }
                EventKind::RwAcquire { lock, .. } => {
                    rw_pending.insert(lock, vec![idx]);
                }
                EventKind::RwContended { lock, .. } => {
                    rw_pending.entry(lock).or_default().push(idx);
                }
                EventKind::RwObtain { lock, .. } => {
                    rw_pending.remove(&lock);
                }
                _ => {}
            }
            out.push(Event::new(ts, ev.kind));
            last_ts = ts;
        } else if exited {
            last_ts = ts;
        }
    }

    if out.is_empty() {
        // Nothing survived (e.g. only a ThreadExit arrived): an empty
        // stream is valid.
        return out;
    }

    // Close everything still open at the measurement horizon. An
    // uncontended in-flight acquire (state 1) becomes a zero-hold
    // invocation; a *contended* one (state 2) is excised instead, because
    // a synthesized contended obtain would imply a release by another
    // thread that never happened. A held lock (state 3) gets its release.
    let mut remove: FxHashSet<usize> = FxHashSet::default();
    if let Some(cv) = in_wait.take() {
        out.push(Event::new(last_ts, EventKind::CondWakeup { cv, signal_seq: SEQ_UNKNOWN }));
    }
    if let Some((barrier, epoch)) = in_barrier.take() {
        out.push(Event::new(last_ts, EventKind::BarrierDepart { barrier, epoch }));
    }
    let mut lock_ids: Vec<ObjId> = lock_state.keys().copied().collect();
    lock_ids.sort_unstable();
    for lock in lock_ids {
        match lock_state[&lock] {
            1 => {
                out.push(Event::new(last_ts, EventKind::LockObtain { lock }));
                out.push(Event::new(last_ts, EventKind::LockRelease { lock }));
            }
            2 => remove.extend(lock_pending.get(&lock).into_iter().flatten().copied()),
            3 => out.push(Event::new(last_ts, EventKind::LockRelease { lock })),
            _ => {}
        }
    }
    let mut rw_ids: Vec<ObjId> = rw_state.keys().copied().collect();
    rw_ids.sort_unstable();
    for lock in rw_ids {
        let (st, write) = rw_state[&lock];
        match st {
            1 => {
                out.push(Event::new(last_ts, EventKind::RwObtain { lock, write }));
                out.push(Event::new(last_ts, EventKind::RwRelease { lock, write }));
            }
            2 => remove.extend(rw_pending.get(&lock).into_iter().flatten().copied()),
            3 => out.push(Event::new(last_ts, EventKind::RwRelease { lock, write })),
            _ => {}
        }
    }
    if !remove.is_empty() {
        out = out
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !remove.contains(i))
            .map(|(_, ev)| ev)
            .collect();
    }
    out.push(Event::new(last_ts, EventKind::ThreadExit));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_trace::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("assembler-sample");
        let l = b.lock("L");
        let t0 = b.thread("main", 0);
        let t1 = b.thread("w1", 1);
        b.on(t1).work(2).cs(l, 5).exit_at(10);
        b.on(t0).create(t1).work(4).cs_blocked(l, 7, 3).join(t1, 12).exit_at(13);
        b.build().unwrap()
    }

    fn frames_for(trace: &Trace) -> Vec<Frame> {
        let mut buf = Vec::new();
        critlock_trace::stream::write_trace(trace, &mut buf).unwrap();
        let mut r = critlock_trace::stream::StreamReader::new(std::io::Cursor::new(buf)).unwrap();
        let mut frames = Vec::new();
        while let Some(f) = r.next_frame().unwrap() {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn graceful_session_is_identity() {
        let trace = sample();
        let mut asm = SessionAssembler::new();
        for f in frames_for(&trace) {
            asm.apply(f);
        }
        assert!(asm.ended());
        let out = asm.finalize();
        assert_eq!(out, trace);
        out.validate().unwrap();
    }

    #[test]
    fn mid_critical_section_disconnect_is_repaired() {
        let trace = sample();
        let frames = frames_for(&trace);
        let mut asm = SessionAssembler::new();
        // Drop the tail: no End, and thread 0's events truncated so a
        // critical section stays open.
        for f in frames.iter().take(frames.len() - 2).cloned() {
            if let Frame::Events { tid, mut events } = f {
                if tid == ThreadId(0) {
                    events.truncate(5); // cut inside the contended acquire
                }
                asm.apply(Frame::Events { tid, events });
            } else {
                asm.apply(f);
            }
        }
        assert!(!asm.ended());
        let out = asm.finalize();
        out.validate().expect("repaired trace must validate");
    }

    #[test]
    fn dropped_registration_frames_are_tolerated() {
        let trace = sample();
        let mut asm = SessionAssembler::new();
        for f in frames_for(&trace) {
            // Drop every registration: no Objects, no Thread frames.
            if matches!(f, Frame::Objects { .. } | Frame::Thread { .. }) {
                continue;
            }
            asm.apply(f);
        }
        let out = asm.finalize();
        out.validate().expect("inferred registrations must validate");
        assert_eq!(out.threads.len(), 2);
        assert_eq!(out.objects.len(), 1);
    }

    #[test]
    fn orphan_events_from_dropped_frames_are_discarded() {
        let mut asm = SessionAssembler::new();
        asm.apply(Frame::Start { meta: Default::default() });
        asm.apply(Frame::Objects {
            first_id: 0,
            objects: vec![ObjInfo { kind: ObjKind::Lock, name: "L".into() }],
        });
        asm.apply(Frame::Thread { tid: ThreadId(0), name: None });
        // An Obtain/Release whose Acquire frame was dropped.
        asm.apply(Frame::Events {
            tid: ThreadId(0),
            events: vec![
                Event::new(5, EventKind::LockObtain { lock: ObjId(0) }),
                Event::new(9, EventKind::LockRelease { lock: ObjId(0) }),
            ],
        });
        let out = asm.finalize();
        out.validate().unwrap();
        // Both orphans are discarded, leaving a valid empty stream.
        assert!(out.threads[0].events.is_empty());
    }

    #[test]
    fn event_budget_truncates_deterministically() {
        let trace = sample();
        let frames = frames_for(&trace);
        let total: u64 = trace.num_events() as u64;
        let cap = total / 2;
        let mut asm = SessionAssembler::with_budget(Budget::unlimited().with_max_events(cap));
        let mut again = SessionAssembler::with_budget(Budget::unlimited().with_max_events(cap));
        for f in &frames {
            asm.apply(f.clone());
            again.apply(f.clone());
        }
        assert!(asm.degraded());
        assert_eq!(asm.events(), cap);
        assert_eq!(asm.events_dropped(), total - cap);
        let out = asm.finalize();
        out.validate().expect("budget-truncated trace must repair to valid");
        // Same frames, same cap -> bit-identical repaired trace.
        assert_eq!(out, again.finalize());

        // An ample budget is a no-op: identity with the unbudgeted path.
        let mut roomy = SessionAssembler::with_budget(Budget::unlimited().with_max_events(total));
        for f in frames {
            roomy.apply(f);
        }
        assert!(!roomy.degraded());
        assert_eq!(roomy.finalize(), trace);
    }

    #[test]
    fn raw_apply_is_bit_identical_to_owned_apply() {
        let trace = sample();
        let frames = frames_for(&trace);
        // Unbudgeted: identity with both paths.
        let mut owned = SessionAssembler::new();
        let mut raw = SessionAssembler::new();
        for f in &frames {
            owned.apply(f.clone());
            raw.apply_raw(&RawFrame::encode(f).unwrap());
        }
        assert_eq!(raw.frames(), owned.frames());
        assert_eq!(raw.events(), owned.events());
        assert!(raw.ended());
        assert_eq!(raw.partial(), owned.partial());
        assert_eq!(raw.finalize(), owned.finalize());
        assert_eq!(raw.online_report(), owned.online_report());

        // Budget truncation lands on the same deterministic prefix.
        let total: u64 = trace.num_events() as u64;
        let cap = total / 2;
        let mut owned = SessionAssembler::with_budget(Budget::unlimited().with_max_events(cap));
        let mut raw = SessionAssembler::with_budget(Budget::unlimited().with_max_events(cap));
        for f in &frames {
            owned.apply(f.clone());
            raw.apply_raw(&RawFrame::encode(f).unwrap());
        }
        assert!(raw.degraded());
        assert_eq!(raw.events(), owned.events());
        assert_eq!(raw.events_dropped(), owned.events_dropped());
        assert_eq!(raw.partial(), owned.partial());
        assert_eq!(raw.finalize(), owned.finalize());
    }

    #[test]
    fn open_condvar_and_barrier_waits_are_closed() {
        let mut asm = SessionAssembler::new();
        asm.apply(Frame::Start { meta: Default::default() });
        asm.apply(Frame::Objects {
            first_id: 0,
            objects: vec![
                ObjInfo { kind: ObjKind::Barrier, name: "B".into() },
                ObjInfo { kind: ObjKind::Condvar, name: "CV".into() },
            ],
        });
        asm.apply(Frame::Thread { tid: ThreadId(0), name: None });
        asm.apply(Frame::Thread { tid: ThreadId(1), name: None });
        asm.apply(Frame::Events {
            tid: ThreadId(0),
            events: vec![
                Event::new(0, EventKind::ThreadStart),
                Event::new(3, EventKind::BarrierArrive { barrier: ObjId(0), epoch: 0 }),
            ],
        });
        asm.apply(Frame::Events {
            tid: ThreadId(1),
            events: vec![
                Event::new(0, EventKind::ThreadStart),
                Event::new(2, EventKind::CondWaitBegin { cv: ObjId(1) }),
            ],
        });
        let out = asm.finalize();
        out.validate().expect("open waits must be closed");
        assert!(out.threads[0]
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::BarrierDepart { .. })));
        assert!(out.threads[1]
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CondWakeup { .. })));
    }
}

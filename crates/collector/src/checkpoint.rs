//! Durable per-session checkpoint files.
//!
//! A checkpoint persists a session assembler's full fold state
//! ([`critlock_trace::checkpoint::CheckpointDoc`], the `CLCK` format) so
//! a restarted collector restores the assembler and replays only the
//! journal frames *past* the checkpoint watermark — O(tail) recovery —
//! and journal segments at or below the watermark can be pruned.
//!
//! Writes follow the tmp+fsync+rename discipline through the injectable
//! [`JournalIo`] layer: encode, write `<stem>.clck.tmp`, `fdatasync` it,
//! rename over `<stem>.clck`, fsync the directory. A crash at any point
//! leaves either the old checkpoint or the new one, never a torn file —
//! and a torn file (crash mid-tmp-write followed by a buggy rename)
//! would still be rejected by the payload CRC at load time. A failed
//! checkpoint write is never fatal: the journal remains authoritative
//! and recovery falls back to replaying more of it.

use crate::io::{DiskBudget, JournalIo};
use critlock_trace::checkpoint::{decode_checkpoint, encode_checkpoint, CheckpointDoc};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File extension of session checkpoints.
pub const CHECKPOINT_EXT: &str = "clck";

/// The checkpoint path for a session stem: `<dir>/<stem>.clck`.
pub fn checkpoint_path(dir: &Path, stem: &str) -> PathBuf {
    dir.join(format!("{stem}.{CHECKPOINT_EXT}"))
}

fn tmp_path(dir: &Path, stem: &str) -> PathBuf {
    dir.join(format!("{stem}.{CHECKPOINT_EXT}.tmp"))
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Write `doc` durably as `<dir>/<stem>.clck` via tmp+fsync+rename.
/// Charges the new bytes to `budget` and releases the bytes of the
/// checkpoint it replaces. Fails with
/// [`io::ErrorKind::StorageFull`](std::io::ErrorKind::StorageFull) when
/// the budget cannot take the encoded document.
pub fn write_checkpoint(
    io: &dyn JournalIo,
    budget: &DiskBudget,
    dir: &Path,
    stem: &str,
    doc: &CheckpointDoc,
) -> io::Result<()> {
    let bytes = encode_checkpoint(doc)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = tmp_path(dir, stem);
    // A leftover tmp from an earlier failed attempt is about to be
    // truncated; return its bytes first so the accounting can't drift up
    // across repeated failures.
    budget.release(file_len(&tmp));
    if budget.would_exceed(bytes.len() as u64) {
        return Err(DiskBudget::quota_error());
    }
    let final_path = checkpoint_path(dir, stem);
    let mut file = budget.track(io.create(&tmp)?, None);
    file.write_all(&bytes)?;
    file.flush()?;
    file.sync_data()?;
    drop(file);
    let old_len = file_len(&final_path);
    io.rename(&tmp, &final_path)?;
    io.sync_dir(dir)?;
    budget.release(old_len);
    Ok(())
}

/// Load and CRC-validate a session's checkpoint. Returns `None` when the
/// file is absent, unreadable or corrupt — recovery then replays the
/// whole journal instead.
pub fn load_checkpoint(dir: &Path, stem: &str) -> Option<CheckpointDoc> {
    let bytes = std::fs::read(checkpoint_path(dir, stem)).ok()?;
    decode_checkpoint(&bytes).ok()
}

/// Delete a session's checkpoint (and any stale tmp), returning the
/// bytes to the budget. Missing files are fine.
pub fn remove_checkpoint(io: &dyn JournalIo, budget: &DiskBudget, dir: &Path, stem: &str) {
    for path in [checkpoint_path(dir, stem), tmp_path(dir, stem)] {
        let len = file_len(&path);
        if io.remove_file(&path).is_ok() {
            budget.release(len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{DiskFaultPlan, FaultyIo, RealIo};
    use critlock_trace::{Trace, TraceMeta};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("critlock-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn doc(frames: u64) -> CheckpointDoc {
        CheckpointDoc {
            token: b"t".to_vec(),
            frames,
            started: true,
            ended: false,
            events: 0,
            events_dropped: 0,
            windows_stale: false,
            trace: Trace::new(TraceMeta::named("ck")),
            window: None,
        }
    }

    #[test]
    fn write_then_load_roundtrips_and_replaces() {
        let dir = tmpdir("rt");
        let budget = DiskBudget::unlimited();
        write_checkpoint(&RealIo, &budget, &dir, "s", &doc(3)).unwrap();
        assert_eq!(load_checkpoint(&dir, "s").unwrap().frames, 3);
        let used_once = budget.used();
        write_checkpoint(&RealIo, &budget, &dir, "s", &doc(9)).unwrap();
        assert_eq!(load_checkpoint(&dir, "s").unwrap().frames, 9);
        // Replacing a checkpoint releases the old one's bytes.
        assert_eq!(budget.used(), used_once);
        remove_checkpoint(&RealIo, &budget, &dir, "s");
        assert_eq!(budget.used(), 0);
        assert!(load_checkpoint(&dir, "s").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_rename_keeps_the_previous_checkpoint() {
        let dir = tmpdir("rename");
        let budget = DiskBudget::unlimited();
        write_checkpoint(&RealIo, &budget, &dir, "s", &doc(3)).unwrap();
        let io =
            FaultyIo::new(DiskFaultPlan { renames_allowed: Some(0), ..DiskFaultPlan::default() });
        assert!(write_checkpoint(&io, &budget, &dir, "s", &doc(9)).is_err());
        // The crash-after-tmp state: old checkpoint intact, tmp on disk.
        assert_eq!(load_checkpoint(&dir, "s").unwrap().frames, 3);
        assert!(tmp_path(&dir, "s").exists());
        // The next successful write cleans up and wins.
        write_checkpoint(&RealIo, &budget, &dir, "s", &doc(12)).unwrap();
        assert_eq!(load_checkpoint(&dir, "s").unwrap().frames, 12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_loads_as_none() {
        let dir = tmpdir("corrupt");
        let budget = DiskBudget::unlimited();
        write_checkpoint(&RealIo, &budget, &dir, "s", &doc(3)).unwrap();
        let path = checkpoint_path(&dir, "s");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, bytes).unwrap();
        assert!(load_checkpoint(&dir, "s").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quota_refuses_the_write_before_touching_disk() {
        let dir = tmpdir("quota");
        let budget = DiskBudget::with_limit(Some(4));
        budget.seed(4);
        let err = write_checkpoint(&RealIo, &budget, &dir, "s", &doc(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(load_checkpoint(&dir, "s").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

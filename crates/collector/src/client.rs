//! Client-side helpers: push a recorded trace to a collector and query
//! the status endpoint. Used by `critlock push` / `critlock status` and
//! by the integration tests.

use crate::net::{Addr, Stream};
use crate::snapshot::CollectorStatus;
use critlock_trace::stream::{trace_frames, Frame, StreamWriter};
use critlock_trace::Trace;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::time::Duration;

/// Stream a recorded trace to a collector, frame by frame. With `pace`,
/// sleep that long between `Events` frames to emulate a live producer.
/// Returns the number of frames sent.
pub fn push(addr: &Addr, trace: &Trace, pace: Option<Duration>) -> io::Result<u64> {
    let stream = Stream::connect(addr)?;
    let mut writer = StreamWriter::new(BufWriter::new(stream))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut sent = 0u64;
    for frame in trace_frames(trace) {
        let is_events = matches!(frame, Frame::Events { .. });
        writer
            .write_frame(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;
        sent += 1;
        if is_events {
            if let Some(pace) = pace {
                writer
                    .flush()
                    .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;
                std::thread::sleep(pace);
            }
        }
    }
    writer.flush().map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;
    let mut stream = writer.into_inner().into_inner()?;
    // Half-close, then wait for the collector to drain the socket and
    // drop the connection: when this returns, every frame has at least
    // been read (queued or dropped) by the collector.
    stream.shutdown_write()?;
    let mut sink = Vec::new();
    let _ = stream.read_to_end(&mut sink);
    Ok(sent)
}

/// Fetch the collector status over the status socket. `json` selects the
/// machine-readable reply.
pub fn fetch_status_text(addr: &Addr, json: bool) -> io::Result<String> {
    let mut stream = Stream::connect(addr)?;
    let request = if json { "status json\n" } else { "status\n" };
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    stream.shutdown_write()?;
    let mut reply = String::new();
    BufReader::new(stream).read_to_string(&mut reply)?;
    Ok(reply)
}

/// Fetch and parse the JSON status.
pub fn fetch_status(addr: &Addr) -> io::Result<CollectorStatus> {
    let text = fetch_status_text(addr, true)?;
    CollectorStatus::parse_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

//! Client-side helpers: push a recorded trace to a collector and query
//! the status endpoint. Used by `critlock push` / `critlock status` and
//! by the integration tests.
//!
//! [`push_with`] is the fault-tolerant path: it announces a resume token
//! in the handshake, reads back the sequence number the collector has
//! durably received, sends only the remaining frames, and on any
//! transport error reconnects with capped exponential backoff and
//! replays from wherever the collector says it left off. [`push`] is the
//! fire-and-forget variant (anonymous session, single attempt), kept for
//! producers that do not need resume.

use crate::faults::{FaultState, FaultStream};
use crate::health::HealthReport;
use crate::net::{Addr, Stream};
use crate::snapshot::CollectorStatus;
use critlock_trace::rollup::Rollup;
use critlock_trace::stream::{read_ack, trace_frames, Frame, Handshake, StreamWriter};
use critlock_trace::{FaultPlan, RetryPolicy, Trace};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Either transport works as a push connection: the plain socket, or the
/// socket behind the fault-injection wrapper.
enum PushConn {
    Plain(Stream),
    Faulty(FaultStream),
}

impl Read for PushConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            PushConn::Plain(s) => s.read(buf),
            PushConn::Faulty(s) => s.read(buf),
        }
    }
}

impl Write for PushConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            PushConn::Plain(s) => s.write(buf),
            PushConn::Faulty(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            PushConn::Plain(s) => s.flush(),
            PushConn::Faulty(s) => s.flush(),
        }
    }
}

impl PushConn {
    fn shutdown_write(&self) -> io::Result<()> {
        match self {
            PushConn::Plain(s) => s.shutdown_write(),
            PushConn::Faulty(s) => s.shutdown_write(),
        }
    }
}

/// How a [`push_with`] call connects, paces, retries and (for testing)
/// misbehaves. The default is everything off except resume: five
/// reconnect attempts with the default backoff window
/// ([`RetryPolicy::default`]).
#[derive(Default)]
pub struct PushOptions {
    /// Sleep this long after each `Events` frame, emulating a live
    /// producer.
    pub pace: Option<Duration>,
    /// Bound for connection establishment and socket reads/writes.
    /// `None` blocks indefinitely.
    pub timeout: Option<Duration>,
    /// Reconnect policy. [`RetryPolicy::none`] gives single-attempt
    /// behavior.
    pub retry: RetryPolicy,
    /// Deterministic transport faults to inject (testing/debugging).
    pub fault_plan: Option<FaultPlan>,
    /// Resume token for the collector session. `None` auto-generates a
    /// process-unique token when retries are enabled, and pushes
    /// anonymously otherwise.
    pub token: Option<Vec<u8>>,
}

/// Process-wide counter distinguishing concurrent pushes from one
/// process in auto-generated tokens.
static PUSH_COUNTER: AtomicU64 = AtomicU64::new(0);

fn auto_token(trace: &Trace) -> Vec<u8> {
    let n = PUSH_COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("push:{}:{}:{}", trace.meta.app, std::process::id(), n).into_bytes()
}

/// Stream a recorded trace to a collector, frame by frame. With `pace`,
/// sleep that long between `Events` frames to emulate a live producer.
/// Returns the number of frames sent.
///
/// Anonymous and single-attempt; use [`push_with`] for resumable pushes.
pub fn push(addr: &Addr, trace: &Trace, pace: Option<Duration>) -> io::Result<u64> {
    push_with(
        addr,
        trace,
        &PushOptions { pace, retry: RetryPolicy::none(), ..PushOptions::default() },
    )
}

fn connect(addr: &Addr, opts: &PushOptions) -> io::Result<Stream> {
    let stream = match opts.timeout {
        Some(timeout) => Stream::connect_timeout(addr, timeout)?,
        None => Stream::connect(addr)?,
    };
    stream.set_read_timeout(opts.timeout)?;
    stream.set_write_timeout(opts.timeout)?;
    Ok(stream)
}

/// One connection's worth of a resumable push: handshake announcing
/// `*acked` as the start sequence, send `frames[*acked..]`, half-close,
/// read the final ack. Returns the collector's final acked sequence
/// number (also folded into `*acked`).
///
/// The replay start MUST equal the handshake's `start_seq`, because the
/// collector numbers this connection's frames from it — frames the
/// collector already holds are skipped server-side by sequence number.
/// The initial ack is read for progress accounting only.
fn push_attempt(
    addr: &Addr,
    frames: &[Frame],
    token: &[u8],
    acked: &mut u64,
    opts: &PushOptions,
    faults: &Option<Arc<Mutex<FaultState>>>,
) -> io::Result<u64> {
    let stream = connect(addr, opts)?;
    let conn = match faults {
        Some(state) => PushConn::Faulty(FaultStream::new(stream, Arc::clone(state))),
        None => PushConn::Plain(stream),
    };
    let resumable = !token.is_empty();
    let mut conn = BufReader::new(conn);

    let start = (*acked).min(frames.len() as u64) as usize;
    let handshake = Handshake { token: token.to_vec(), start_seq: start as u64 };
    let mut writer =
        StreamWriter::with_handshake(BufWriter::new(conn.get_mut()), &handshake).map_err(to_io)?;
    writer.flush().map_err(to_io)?;
    drop(writer);

    if resumable {
        let server_ack = read_ack(&mut conn).map_err(to_io)?;
        *acked = (*acked).max(server_ack.min(frames.len() as u64));
    }

    let mut writer = StreamWriter::append(BufWriter::new(conn.get_mut()));
    for frame in &frames[start..] {
        let is_events = matches!(frame, Frame::Events { .. });
        writer.write_frame(frame).map_err(to_io)?;
        if is_events {
            if let Some(pace) = opts.pace {
                writer.flush().map_err(to_io)?;
                std::thread::sleep(pace);
            }
        }
    }
    writer.flush().map_err(to_io)?;
    drop(writer);

    // Half-close, then wait for the collector to finish reading. A
    // resumable session gets a final ack telling us how far it really
    // got; an anonymous push just waits for the collector to drop the
    // connection, at which point every frame was at least read.
    conn.get_ref().shutdown_write()?;
    if resumable {
        read_ack(&mut conn).map_err(to_io)
    } else {
        let mut sink = Vec::new();
        let _ = conn.read_to_end(&mut sink);
        Ok(frames.len() as u64)
    }
}

/// Stream a trace to a collector with reconnect-and-resume. Returns the
/// number of frames the collector acknowledged (the full frame count on
/// success).
///
/// Every transport failure — connect refused, connection cut mid-frame,
/// a frame the collector rejected (its CRC failed), a final ack that
/// never arrived — costs one attempt; between attempts the client backs
/// off per `opts.retry`. Attempts that make progress (the collector's
/// acked sequence advanced) reset the attempt counter, so a push through
/// a flaky wire completes as long as *something* gets through each time.
pub fn push_with(addr: &Addr, trace: &Trace, opts: &PushOptions) -> io::Result<u64> {
    let frames = trace_frames(trace);
    let total = frames.len() as u64;
    let resumable = opts.retry.max_attempts > 1 || opts.token.is_some();
    let token: Vec<u8> = if resumable {
        opts.token.clone().unwrap_or_else(|| auto_token(trace))
    } else {
        Vec::new()
    };
    let faults = opts.fault_plan.as_ref().map(FaultState::new);

    let mut acked = 0u64;
    let mut attempt = 0u32;
    let mut last_err: Option<io::Error> = None;
    while attempt < opts.retry.max_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(opts.retry.backoff(attempt - 1));
        }
        let before = acked;
        let outcome = push_attempt(addr, &frames, &token, &mut acked, opts, &faults);
        // Progress — the collector's acked sequence advanced — resets
        // the attempt budget, so a push through a flaky wire completes
        // as long as *something* gets through each time.
        if acked > before {
            attempt = 0;
        }
        match outcome {
            Ok(final_ack) if final_ack >= total => return Ok(total),
            Ok(final_ack) => {
                // The collector answered but is missing frames (e.g. a
                // corrupted frame was rejected): resume from its ack.
                acked = acked.max(final_ack.min(total));
                attempt += 1;
                last_err = Some(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    format!("collector acked {final_ack}/{total} frames"),
                ));
            }
            Err(e) => {
                attempt += 1;
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::BrokenPipe, "push failed with no attempts made")
    }))
}

fn to_io(e: critlock_trace::TraceError) -> io::Error {
    match e {
        critlock_trace::TraceError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// Fetch the collector status over the status socket. `json` selects the
/// machine-readable reply. `timeout` bounds connect and socket I/O, so a
/// hung collector yields an error instead of a hang.
pub fn fetch_status_text_timeout(
    addr: &Addr,
    json: bool,
    timeout: Option<Duration>,
) -> io::Result<String> {
    let mut stream = match timeout {
        Some(t) => Stream::connect_timeout(addr, t)?,
        None => Stream::connect(addr)?,
    };
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let request = if json { "status json\n" } else { "status\n" };
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    stream.shutdown_write()?;
    let mut reply = String::new();
    BufReader::new(stream).read_to_string(&mut reply)?;
    Ok(reply)
}

/// Fetch the collector status over the status socket. `json` selects the
/// machine-readable reply.
pub fn fetch_status_text(addr: &Addr, json: bool) -> io::Result<String> {
    fetch_status_text_timeout(addr, json, None)
}

/// Scrape the collector's Prometheus-style metrics text over the metrics
/// socket. `timeout` bounds connect and socket I/O.
pub fn fetch_metrics_text(addr: &Addr, timeout: Option<Duration>) -> io::Result<String> {
    let mut stream = match timeout {
        Some(t) => Stream::connect_timeout(addr, t)?,
        None => Stream::connect(addr)?,
    };
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    stream.write_all(b"metrics\n")?;
    stream.flush()?;
    stream.shutdown_write()?;
    let mut reply = String::new();
    BufReader::new(stream).read_to_string(&mut reply)?;
    Ok(reply)
}

/// Fetch a collector's CLAG rollup over the status socket: every session
/// the collector tracks, digested, merged with anything its children
/// forwarded up. `timeout` bounds connect and socket I/O.
pub fn fetch_rollup(addr: &Addr, timeout: Option<Duration>) -> io::Result<Rollup> {
    let mut stream = match timeout {
        Some(t) => Stream::connect_timeout(addr, t)?,
        None => Stream::connect(addr)?,
    };
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    stream.write_all(b"rollup\n")?;
    stream.flush()?;
    stream.shutdown_write()?;
    let mut reply = Vec::new();
    BufReader::new(stream).read_to_end(&mut reply)?;
    Rollup::from_bytes(&reply).map_err(to_io)
}

/// Push a CLAG rollup into a parent collector over its status socket
/// (the `rollup-push` request a forwarding child issues). Returns the
/// parent's total retained session count after the merge. The parent's
/// merge is idempotent, so re-pushing after an error is always safe; a
/// parent at its rollup-session cap rejects the push whole (an `err`
/// reply surfaces here as `InvalidData`).
pub fn push_rollup(addr: &Addr, rollup: &Rollup, timeout: Option<Duration>) -> io::Result<u64> {
    push_rollup_with(addr, rollup, timeout, &None)
}

/// [`push_rollup`] with deterministic transport faults on the wire — the
/// forwarder's chaos-testing path. `faults` is the shared [`FaultState`]
/// so one-shot fault actions are consumed across pushes, exactly like the
/// resumable trace-push path consumes them across reconnects.
pub fn push_rollup_with(
    addr: &Addr,
    rollup: &Rollup,
    timeout: Option<Duration>,
    faults: &Option<Arc<Mutex<FaultState>>>,
) -> io::Result<u64> {
    let stream = match timeout {
        Some(t) => Stream::connect_timeout(addr, t)?,
        None => Stream::connect(addr)?,
    };
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let mut conn = match faults {
        Some(state) => PushConn::Faulty(FaultStream::new(stream, Arc::clone(state))),
        None => PushConn::Plain(stream),
    };
    let bytes = rollup.to_bytes();
    conn.write_all(format!("rollup-push {}\n", bytes.len()).as_bytes())?;
    conn.write_all(&bytes)?;
    conn.flush()?;
    conn.shutdown_write()?;
    let mut reply = String::new();
    BufReader::new(conn).read_to_string(&mut reply)?;
    let reply = reply.trim();
    match reply.strip_prefix("ok ") {
        Some(n) => n
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad rollup-push reply")),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("rollup-push rejected: {reply}"),
        )),
    }
}

/// Fetch the collector's health classification over the status socket.
/// `json` selects the machine-readable reply; `timeout` bounds connect
/// and socket I/O so probing a hung collector fails fast.
pub fn fetch_health_text(addr: &Addr, json: bool, timeout: Option<Duration>) -> io::Result<String> {
    let mut stream = match timeout {
        Some(t) => Stream::connect_timeout(addr, t)?,
        None => Stream::connect(addr)?,
    };
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let request = if json { "health json\n" } else { "health\n" };
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    stream.shutdown_write()?;
    let mut reply = String::new();
    BufReader::new(stream).read_to_string(&mut reply)?;
    Ok(reply)
}

/// Fetch and parse the JSON health report.
pub fn fetch_health(addr: &Addr, timeout: Option<Duration>) -> io::Result<HealthReport> {
    let text = fetch_health_text(addr, true, timeout)?;
    HealthReport::parse_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Fetch and parse the JSON status.
pub fn fetch_status(addr: &Addr) -> io::Result<CollectorStatus> {
    fetch_status_timeout(addr, None)
}

/// Fetch and parse the JSON status, bounding connect and socket I/O.
pub fn fetch_status_timeout(addr: &Addr, timeout: Option<Duration>) -> io::Result<CollectorStatus> {
    let text = fetch_status_text_timeout(addr, true, timeout)?;
    CollectorStatus::parse_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

//! Deterministic transport fault injection for streaming clients.
//!
//! [`FaultStream`] wraps a [`net::Stream`](crate::net::Stream) and applies
//! a [`FaultPlan`](critlock_trace::FaultPlan) to the *write* path: after a
//! scripted number of bytes it can cut the connection, truncate or
//! bit-flip what is on the wire, stall, or pace every write slow-loris
//! style. The byte counter and the fired-state of each one-shot action
//! live in a shared [`FaultState`], so a plan keeps its position across
//! the reconnects it provokes — `cut@900;cut@2500` means "kill the first
//! connection at byte 900 of the push, kill the retry at cumulative byte
//! 2500", which is exactly what makes fault runs reproducible.
//!
//! Faults are injected client-side (in `critlock push --fault-plan` and
//! the robustness tests) rather than server-side so the collector under
//! test runs the same code it runs in production.

use crate::net::Stream;
use critlock_trace::faults::{FaultAction, FaultPlan, FLIP_MASK};
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Shared, mutable progress of a fault plan across reconnects.
#[derive(Debug)]
pub struct FaultState {
    actions: Vec<(FaultAction, bool)>, // (action, fired)
    written: u64,
}

impl FaultState {
    /// Start tracking a plan from byte zero.
    pub fn new(plan: &FaultPlan) -> Arc<Mutex<FaultState>> {
        Arc::new(Mutex::new(FaultState {
            actions: plan.actions.iter().map(|a| (*a, false)).collect(),
            written: 0,
        }))
    }

    /// Total bytes the client believes it has written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The next un-fired one-shot action due at or before `upto`.
    fn due(&mut self, upto: u64) -> Option<FaultAction> {
        for (action, fired) in &mut self.actions {
            if *fired {
                continue;
            }
            if matches!(action, FaultAction::SlowLoris { .. }) {
                // Persistent: never "fires once"; handled by the writer.
                continue;
            }
            if action.offset() <= upto {
                *fired = true;
                return Some(*action);
            }
        }
        None
    }

    /// The slow-loris pacing in effect at offset `at`, if any.
    fn loris(&self, at: u64) -> Option<(usize, u64)> {
        self.actions.iter().find_map(|(action, _)| match action {
            FaultAction::SlowLoris { at: start, chunk, millis } if *start <= at => {
                Some((*chunk as usize, *millis))
            }
            _ => None,
        })
    }
}

/// A [`Stream`] that injects scripted faults on its write path.
pub struct FaultStream {
    inner: Stream,
    state: Arc<Mutex<FaultState>>,
}

impl FaultStream {
    /// Wrap a freshly connected stream; the shared `state` carries the
    /// plan's progress from any previous connection of the same push.
    pub fn new(inner: Stream, state: Arc<Mutex<FaultState>>) -> FaultStream {
        FaultStream { inner, state }
    }
}

fn broken(action: &FaultAction) -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, format!("injected fault: {action}"))
}

impl Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let (pos, action, loris) = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let pos = state.written;
            let action = state.due(pos + buf.len() as u64 - 1);
            let loris = state.loris(pos);
            (pos, action, loris)
        };

        if let Some(action) = action {
            let boundary = action.offset().saturating_sub(pos) as usize;
            match action {
                FaultAction::Cut { .. } => {
                    // Deliver bytes up to the cut point, then kill the
                    // connection in both directions.
                    if boundary > 0 {
                        self.inner.write_all(&buf[..boundary])?;
                        let _ = self.inner.flush();
                        self.state.lock().unwrap_or_else(|e| e.into_inner()).written +=
                            boundary as u64;
                    }
                    let _ = self.inner.shutdown_both();
                    return Err(broken(&action));
                }
                FaultAction::Truncate { drop, .. } => {
                    // Deliver the prefix, silently swallow `drop` bytes
                    // (claiming success so the producer keeps encoding),
                    // then sever the wire: the peer sees a torn frame.
                    if boundary > 0 {
                        self.inner.write_all(&buf[..boundary])?;
                        let _ = self.inner.flush();
                    }
                    let swallowed = (buf.len() - boundary).min(drop as usize).max(1);
                    let _ = self.inner.shutdown_both();
                    self.state.lock().unwrap_or_else(|e| e.into_inner()).written +=
                        (boundary + swallowed) as u64;
                    return Ok(boundary + swallowed);
                }
                FaultAction::BitFlip { at } => {
                    let mut corrupted = buf.to_vec();
                    let idx = (at - pos) as usize;
                    corrupted[idx] ^= FLIP_MASK;
                    self.inner.write_all(&corrupted)?;
                    self.state.lock().unwrap_or_else(|e| e.into_inner()).written +=
                        buf.len() as u64;
                    return Ok(buf.len());
                }
                FaultAction::Stall { millis, .. } => {
                    std::thread::sleep(Duration::from_millis(millis));
                    // Fall through to a normal write below.
                }
                FaultAction::SlowLoris { .. } => unreachable!("loris is not one-shot"),
            }
        }

        if let Some((chunk, millis)) = loris {
            let n = buf.len().min(chunk.max(1));
            std::thread::sleep(Duration::from_millis(millis));
            self.inner.write_all(&buf[..n])?;
            self.inner.flush()?;
            self.state.lock().unwrap_or_else(|e| e.into_inner()).written += n as u64;
            return Ok(n);
        }

        self.inner.write_all(buf)?;
        self.state.lock().unwrap_or_else(|e| e.into_inner()).written += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Read for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl FaultStream {
    /// Shut down the write half (delegates to the wrapped stream).
    pub fn shutdown_write(&self) -> io::Result<()> {
        self.inner.shutdown_write()
    }

    /// Bound blocking reads on the wrapped stream.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Addr, Listener};

    fn pair() -> (Stream, Stream) {
        let listener = Listener::bind(&Addr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.bound_addr().unwrap();
        let client = Stream::connect(&addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn cut_delivers_prefix_then_errors() {
        let (client, mut server) = pair();
        let state = FaultState::new(&"cut@4".parse().unwrap());
        let mut faulty = FaultStream::new(client, state.clone());
        let err = faulty.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        let mut got = Vec::new();
        server.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"0123");
        assert_eq!(state.lock().unwrap().written(), 4);
    }

    #[test]
    fn truncate_swallows_bytes_and_severs() {
        let (client, mut server) = pair();
        let state = FaultState::new(&"trunc@2+3".parse().unwrap());
        let mut faulty = FaultStream::new(client, state.clone());
        // The producer sees a successful (short) write, never an error.
        let n = faulty.write(b"abcdef").unwrap();
        assert!((3..=5).contains(&n), "prefix 2 + swallowed 1..=3, got {n}");
        let mut got = Vec::new();
        server.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"ab");
    }

    #[test]
    fn bitflip_corrupts_exactly_one_byte() {
        let (client, mut server) = pair();
        let state = FaultState::new(&"flip@3".parse().unwrap());
        let mut faulty = FaultStream::new(client, state);
        faulty.write_all(b"hello world").unwrap();
        faulty.shutdown_write().unwrap();
        let mut got = Vec::new();
        server.read_to_end(&mut got).unwrap();
        assert_eq!(got.len(), 11);
        assert_eq!(got[3], b'l' ^ FLIP_MASK);
        let mut fixed = got.clone();
        fixed[3] ^= FLIP_MASK;
        assert_eq!(fixed, b"hello world");
    }

    #[test]
    fn state_persists_across_connections() {
        let state = FaultState::new(&"cut@4;cut@10".parse().unwrap());

        let (client, mut server) = pair();
        let mut faulty = FaultStream::new(client, state.clone());
        faulty.write_all(b"0123456789").unwrap_err();
        let mut got = Vec::new();
        server.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"0123");

        // "Reconnect": the second connection resumes the byte count, so
        // the second cut fires 6 bytes in (cumulative offset 10).
        let (client, mut server) = pair();
        let mut faulty = FaultStream::new(client, state);
        faulty.write_all(b"456789abcd").unwrap_err();
        let mut got = Vec::new();
        server.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"456789");
    }

    #[test]
    fn slow_loris_paces_but_delivers_everything() {
        let (client, mut server) = pair();
        let state = FaultState::new(&"loris@0:3:1".parse().unwrap());
        let mut faulty = FaultStream::new(client, state);
        faulty.write_all(b"the whole message arrives").unwrap();
        faulty.shutdown_write().unwrap();
        let mut got = Vec::new();
        server.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"the whole message arrives");
    }
}

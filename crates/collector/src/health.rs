//! Health classification for liveness/readiness probes.
//!
//! A `health` request on the status socket (and the `critlock health`
//! CLI verb built on it) classifies the collector as **ok**, **degraded**
//! or **unhealthy** from the signals an orchestrator cares about: queue
//! saturation, shed/quota rates, journal write errors, analysis worker
//! panics, and forward staleness. Every non-ok classification carries a
//! human-readable finding naming the signal that caused it, so a probe
//! failure is diagnosable from the probe output alone.
//!
//! The classification is a pure function of [`HealthInputs`]
//! ([`classify`]), so the rules are unit-testable without a daemon:
//!
//! | class       | rule                                                          |
//! |-------------|---------------------------------------------------------------|
//! | `unhealthy` | session queues fully saturated, or forwarding configured and no successful push for more than [`STALE_INTERVALS`] forward intervals while failing |
//! | `degraded`  | any worker panic, failing forward pushes (including running on the fallback parent or with a spooled rollup), journal append failures, shed connections, quota-stopped sessions, or queues ≥ 90 % full |
//! | `ok`        | none of the above                                             |
//!
//! Degraded means "serving, but something needs attention"; unhealthy
//! means "data is being lost or going stale *right now*". The forwarder
//! ticks at least once per forward interval, so a dead parent turns the
//! classification within one interval of the first failed push.

use crate::snapshot::ForwardStatus;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Forward intervals without a successful push (while pushes are
/// failing) after which a forwarding collector is unhealthy rather than
/// degraded: its view of the fleet is going stale and its rollup is only
/// surviving on the local spool.
pub const STALE_INTERVALS: u32 = 10;

/// Queue fill fraction (in percent) at which the collector degrades.
pub const QUEUE_DEGRADED_PCT: u64 = 90;

/// The three-way health classification, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthClass {
    /// Everything nominal.
    Ok,
    /// Serving, but a signal needs operator attention.
    Degraded,
    /// Data loss or staleness is happening right now.
    Unhealthy,
}

// Hand-rolled so the wire form is the lowercase name ("ok"), matching
// the text rendering and the exit-code table in the CLI docs.
impl Serialize for HealthClass {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for HealthClass {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => match s.as_str() {
                "ok" => Ok(HealthClass::Ok),
                "degraded" => Ok(HealthClass::Degraded),
                "unhealthy" => Ok(HealthClass::Unhealthy),
                other => Err(serde::DeError::custom(format!("unknown health class `{other}`"))),
            },
            _ => Err(serde::DeError::custom("health class must be a string")),
        }
    }
}

impl HealthClass {
    /// The process exit code `critlock health` maps this class to
    /// (Nagios-style: 0 ok, 1 degraded/warning, 2 unhealthy/critical;
    /// the CLI uses 3 for "could not reach the collector").
    pub fn exit_code(self) -> u8 {
        match self {
            HealthClass::Ok => 0,
            HealthClass::Degraded => 1,
            HealthClass::Unhealthy => 2,
        }
    }

    /// The lowercase name used on the wire and in renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthClass::Ok => "ok",
            HealthClass::Degraded => "degraded",
            HealthClass::Unhealthy => "unhealthy",
        }
    }
}

impl std::fmt::Display for HealthClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything [`classify`] looks at, gathered from the live collector.
#[derive(Debug, Clone, Default)]
pub struct HealthInputs {
    /// Currently tracked sessions.
    pub sessions_active: u64,
    /// Frames currently queued across all sessions.
    pub queue_depth: u64,
    /// Total queue capacity (per-session capacity × active sessions).
    pub queue_capacity: u64,
    /// Connections shed by admission control.
    pub shed_sessions: u64,
    /// Sessions stopped by the byte quota.
    pub quota_stopped_sessions: u64,
    /// Failed journal appends (sessions degraded to unjournaled).
    pub journal_append_failures: u64,
    /// Live sessions running journal-less (quota exhausted, ENOSPC or a
    /// persistent write failure) and therefore not crash-resumable.
    pub journal_degraded_sessions: u64,
    /// Analysis worker panics caught (quarantined sessions).
    pub worker_panics: u64,
    /// How often the forwarder pushes, when forwarding is configured.
    pub forward_interval: Duration,
    /// Live forwarder state; `None` when forwarding is not configured.
    pub forward: Option<ForwardStatus>,
}

/// The reply to a `health` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// The classification.
    pub class: HealthClass,
    /// One line per signal that contributed to a non-ok class, most
    /// severe first. Empty when ok.
    pub findings: Vec<String>,
    /// Currently tracked sessions.
    pub sessions_active: u64,
    /// Analysis worker panics caught since startup.
    #[serde(default)]
    pub worker_panics: u64,
    /// Connections shed by admission control since startup.
    #[serde(default)]
    pub shed_sessions: u64,
    /// Sessions stopped by the byte quota since startup.
    #[serde(default)]
    pub quota_stopped_sessions: u64,
    /// Failed journal appends since startup.
    #[serde(default)]
    pub journal_append_failures: u64,
    /// Live sessions currently running journal-less (not crash-resumable).
    #[serde(default)]
    pub journal_degraded_sessions: u64,
    /// Forwarder state, when forwarding is configured.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub forward: Option<ForwardStatus>,
}

impl HealthReport {
    /// Render the human-readable form (the plain `health` reply).
    pub fn render_text(&self) -> String {
        let mut out = format!("health: {}\n", self.class);
        for finding in &self.findings {
            out.push_str("  - ");
            out.push_str(finding);
            out.push('\n');
        }
        out
    }

    /// Render the machine-readable form (the `health json` reply).
    pub fn render_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Parse a `health json` reply.
    pub fn parse_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Classify the collector's health from its observable signals. Pure and
/// deterministic — the whole classification policy lives here.
pub fn classify(inputs: &HealthInputs) -> HealthReport {
    let mut unhealthy = Vec::new();
    let mut degraded = Vec::new();

    if inputs.queue_capacity > 0 && inputs.sessions_active > 0 {
        let pct = inputs.queue_depth.saturating_mul(100) / inputs.queue_capacity;
        if inputs.queue_depth >= inputs.queue_capacity {
            unhealthy.push(format!(
                "session queues fully saturated ({}/{} frames queued)",
                inputs.queue_depth, inputs.queue_capacity
            ));
        } else if pct >= QUEUE_DEGRADED_PCT {
            degraded.push(format!(
                "session queues {pct}% full ({}/{} frames queued)",
                inputs.queue_depth, inputs.queue_capacity
            ));
        }
    }
    if let Some(fwd) = &inputs.forward {
        if fwd.consecutive_failures > 0 {
            let stale_after = inputs
                .forward_interval
                .saturating_mul(STALE_INTERVALS)
                .as_secs()
                .max(u64::from(STALE_INTERVALS));
            let stale = match fwd.last_success_age_secs {
                Some(age) => age > stale_after,
                // Failing and never once succeeded: stale as soon as the
                // failure streak alone covers the staleness window.
                None => fwd.consecutive_failures >= u64::from(STALE_INTERVALS),
            };
            let line = format!(
                "forward pushes failing ({} consecutive failure(s), last success {})",
                fwd.consecutive_failures,
                match fwd.last_success_age_secs {
                    Some(age) => format!("{age}s ago"),
                    None => "never".to_string(),
                }
            );
            if stale {
                unhealthy.push(format!("{line}; rollup going stale"));
            } else {
                degraded.push(line);
            }
        }
        if fwd.using_fallback {
            degraded.push("forwarding to the fallback parent (primary unreachable)".into());
        }
        if fwd.spooled {
            degraded.push("undelivered rollup spooled to outbox.clag".into());
        }
    }
    if inputs.worker_panics > 0 {
        degraded.push(format!(
            "{} analysis worker panic(s); poisoned session(s) quarantined",
            inputs.worker_panics
        ));
    }
    if inputs.journal_append_failures > 0 {
        degraded.push(format!(
            "{} journal append failure(s); affected sessions run unjournaled",
            inputs.journal_append_failures
        ));
    }
    if inputs.journal_degraded_sessions > 0 {
        degraded.push(format!(
            "{} session(s) journaling degraded (disk quota or I/O failure); not crash-resumable",
            inputs.journal_degraded_sessions
        ));
    }
    if inputs.shed_sessions > 0 {
        degraded.push(format!("{} connection(s) shed by admission control", inputs.shed_sessions));
    }
    if inputs.quota_stopped_sessions > 0 {
        degraded.push(format!(
            "{} session(s) stopped by the byte quota",
            inputs.quota_stopped_sessions
        ));
    }

    let class = if !unhealthy.is_empty() {
        HealthClass::Unhealthy
    } else if !degraded.is_empty() {
        HealthClass::Degraded
    } else {
        HealthClass::Ok
    };
    let mut findings = unhealthy;
    findings.extend(degraded);
    HealthReport {
        class,
        findings,
        sessions_active: inputs.sessions_active,
        worker_panics: inputs.worker_panics,
        shed_sessions: inputs.shed_sessions,
        quota_stopped_sessions: inputs.quota_stopped_sessions,
        journal_append_failures: inputs.journal_append_failures,
        journal_degraded_sessions: inputs.journal_degraded_sessions,
        forward: inputs.forward.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forwarding(consecutive: u64, age: Option<u64>) -> HealthInputs {
        HealthInputs {
            forward_interval: Duration::from_millis(500),
            forward: Some(ForwardStatus {
                pushes: 10,
                failures: consecutive,
                consecutive_failures: consecutive,
                last_success_age_secs: age,
                using_fallback: false,
                spooled: false,
            }),
            ..HealthInputs::default()
        }
    }

    #[test]
    fn quiet_collector_is_ok_with_distinct_exit_codes() {
        let report = classify(&HealthInputs::default());
        assert_eq!(report.class, HealthClass::Ok);
        assert!(report.findings.is_empty());
        assert_eq!(HealthClass::Ok.exit_code(), 0);
        assert_eq!(HealthClass::Degraded.exit_code(), 1);
        assert_eq!(HealthClass::Unhealthy.exit_code(), 2);
    }

    #[test]
    fn one_failed_push_degrades_within_the_interval() {
        let report = classify(&forwarding(1, Some(1)));
        assert_eq!(report.class, HealthClass::Degraded);
        assert!(report.findings[0].contains("forward pushes failing"), "{:?}", report.findings);
    }

    #[test]
    fn sustained_forward_staleness_is_unhealthy() {
        // 500 ms interval × STALE_INTERVALS = 5 s; 60 s since the last
        // success while failing is well past stale.
        let report = classify(&forwarding(30, Some(60)));
        assert_eq!(report.class, HealthClass::Unhealthy);
        assert!(report.findings[0].contains("stale"), "{:?}", report.findings);
        // Never-succeeded forwarders go unhealthy on the streak alone.
        let report = classify(&forwarding(u64::from(STALE_INTERVALS), None));
        assert_eq!(report.class, HealthClass::Unhealthy);
    }

    #[test]
    fn panics_journal_errors_shed_and_quota_degrade() {
        for inputs in [
            HealthInputs { worker_panics: 1, ..HealthInputs::default() },
            HealthInputs { journal_append_failures: 2, ..HealthInputs::default() },
            HealthInputs { journal_degraded_sessions: 1, ..HealthInputs::default() },
            HealthInputs { shed_sessions: 3, ..HealthInputs::default() },
            HealthInputs { quota_stopped_sessions: 4, ..HealthInputs::default() },
        ] {
            let report = classify(&inputs);
            assert_eq!(report.class, HealthClass::Degraded, "{inputs:?}");
            assert_eq!(report.findings.len(), 1);
        }
    }

    #[test]
    fn queue_saturation_escalates_from_degraded_to_unhealthy() {
        let mut inputs = HealthInputs {
            sessions_active: 2,
            queue_capacity: 100,
            queue_depth: 95,
            ..HealthInputs::default()
        };
        assert_eq!(classify(&inputs).class, HealthClass::Degraded);
        inputs.queue_depth = 100;
        assert_eq!(classify(&inputs).class, HealthClass::Unhealthy);
        inputs.queue_depth = 50;
        assert_eq!(classify(&inputs).class, HealthClass::Ok);
    }

    #[test]
    fn fallback_and_spool_are_visible_degradations() {
        let mut inputs = forwarding(0, Some(1));
        if let Some(f) = inputs.forward.as_mut() {
            f.using_fallback = true;
            f.spooled = true;
        }
        let report = classify(&inputs);
        assert_eq!(report.class, HealthClass::Degraded);
        assert_eq!(report.findings.len(), 2);
        let text = report.render_text();
        assert!(text.starts_with("health: degraded\n"), "{text}");
        assert!(text.contains("fallback"), "{text}");
    }

    #[test]
    fn json_roundtrips() {
        let report = classify(&forwarding(2, Some(7)));
        let json = report.render_json().unwrap();
        assert_eq!(HealthReport::parse_json(&json).unwrap(), report);
    }
}

//! The injectable storage layer under journals, checkpoints and the
//! outbox spool.
//!
//! Every durable write the collector performs goes through a
//! [`JournalIo`] implementation. Production uses [`RealIo`] (plain
//! `std::fs`); chaos tests swap in [`FaultyIo`], which injects
//! deterministic disk faults — ENOSPC at byte N, short writes, failed
//! fsyncs, failed renames — at the exact layer real disks fail, so the
//! recovery invariants are exercised against the same code paths
//! production runs.
//!
//! [`DiskBudget`] is the collector-wide disk governor: a shared byte
//! counter charged by every tracked write and released when segments or
//! checkpoints are pruned. When the budget is exhausted, journal and
//! checkpoint writes fail with [`std::io::ErrorKind::StorageFull`] and
//! the owning session degrades to journal-less mode instead of wedging
//! ingestion.

use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A writable durable file handle: everything the journal, checkpoint
/// and outbox writers need from an open file.
pub trait JournalFile: Write + Send {
    /// Flush file *data* to stable storage (`fdatasync` semantics).
    fn sync_data(&mut self) -> io::Result<()>;
}

impl JournalFile for File {
    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }
}

/// The filesystem operations the collector's durable paths are built on.
/// Implementations must be shareable across threads; the collector holds
/// one instance in its config and threads it everywhere.
pub trait JournalIo: Debug + Send + Sync {
    /// Create (truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn JournalFile>>;

    /// Open an existing file, truncate it to `len` bytes and position the
    /// handle at the new end — the journal-recovery reopen: the torn tail
    /// is cut and appends continue where the intact prefix ends.
    fn open_truncate_append(&self, path: &Path, len: u64) -> io::Result<Box<dyn JournalFile>>;

    /// Atomically rename `from` to `to` (the tmp+rename commit point).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Delete a file (segment pruning, outbox clearing).
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Make a directory entry durable: fsync the directory itself, so a
    /// file created or renamed into it cannot vanish from the directory
    /// after a crash. No-op on platforms without directory fsync.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`JournalIo`]: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl JournalIo for RealIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn JournalFile>> {
        Ok(Box::new(File::create(path)?))
    }

    fn open_truncate_append(&self, path: &Path, len: u64) -> io::Result<Box<dyn JournalFile>> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Box::new(file))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    #[cfg(unix)]
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    #[cfg(not(unix))]
    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }
}

/// Collector-wide disk budget: a shared used-bytes counter plus an
/// optional limit (`serve --journal-quota-bytes`). Charged by every
/// tracked durable write; released when segments or checkpoints are
/// pruned; re-seeded from an on-disk scan at startup.
#[derive(Debug, Clone, Default)]
pub struct DiskBudget {
    used: Arc<AtomicU64>,
    limit: Option<u64>,
}

impl DiskBudget {
    /// A budget with no limit (tracking only).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget capped at `limit` bytes across all journals, checkpoints
    /// and the outbox spool.
    pub fn with_limit(limit: Option<u64>) -> Self {
        DiskBudget { used: Arc::new(AtomicU64::new(0)), limit }
    }

    /// Bytes currently accounted against the budget.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Overwrite the used-bytes counter with an authoritative value (the
    /// startup scan of everything on disk).
    pub fn seed(&self, bytes: u64) {
        self.used.store(bytes, Ordering::Relaxed);
    }

    /// Return pruned bytes to the budget (saturating).
    pub fn release(&self, bytes: u64) {
        let _ = self
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| Some(n.saturating_sub(bytes)));
    }

    /// Whether the budget is used up: further journal/checkpoint writes
    /// must fail with [`io::ErrorKind::StorageFull`].
    pub fn exhausted(&self) -> bool {
        self.limit.is_some_and(|limit| self.used() >= limit)
    }

    /// Whether charging `bytes` more would cross the limit.
    pub fn would_exceed(&self, bytes: u64) -> bool {
        self.limit.is_some_and(|limit| self.used().saturating_add(bytes) > limit)
    }

    /// The quota error a write against an exhausted budget fails with.
    pub fn quota_error() -> io::Error {
        io::Error::new(io::ErrorKind::StorageFull, "journal disk budget exhausted")
    }

    /// Wrap a file handle so successful writes charge this budget (and
    /// any extra counters, e.g. a per-segment size tracker).
    pub fn track(
        &self,
        file: Box<dyn JournalFile>,
        extra: Option<Arc<AtomicU64>>,
    ) -> Box<dyn JournalFile> {
        let mut counters = vec![Arc::clone(&self.used)];
        counters.extend(extra);
        Box::new(TrackedFile { inner: file, counters })
    }
}

/// A [`JournalFile`] that charges successfully written bytes to one or
/// more shared counters. Sits *above* the (possibly faulty) I/O layer, so
/// only bytes that actually reached the file are accounted.
struct TrackedFile {
    inner: Box<dyn JournalFile>,
    counters: Vec<Arc<AtomicU64>>,
}

impl Write for TrackedFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        for counter in &self.counters {
            counter.fetch_add(n as u64, Ordering::Relaxed);
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl JournalFile for TrackedFile {
    fn sync_data(&mut self) -> io::Result<()> {
        self.inner.sync_data()
    }
}

/// A deterministic disk-fault schedule for [`FaultyIo`]. Counters are
/// global across all files the instance touches, so "ENOSPC at byte N"
/// means the N-th byte written through this I/O layer, wherever it lands.
#[derive(Debug, Clone, Default)]
pub struct DiskFaultPlan {
    /// Bytes allowed across all writes before write calls start failing
    /// with [`io::ErrorKind::StorageFull`] — the injected full disk.
    pub write_budget_bytes: Option<u64>,
    /// When the budget-crossing write arrives, persist the prefix that
    /// still fits and fail only the remainder — a short write tearing a
    /// frame mid-payload, the torn-tail recovery case.
    pub short_final_write: bool,
    /// `sync_data` calls allowed before fsync starts failing.
    pub syncs_allowed: Option<u64>,
    /// Renames allowed before rename starts failing. A failed checkpoint
    /// rename leaves the tmp file in place — exactly the
    /// crash-after-tmp-write state when the process then dies.
    pub renames_allowed: Option<u64>,
    /// File creates allowed before creates start failing.
    pub creates_allowed: Option<u64>,
}

/// A [`JournalIo`] that wraps [`RealIo`] and injects the faults described
/// by a [`DiskFaultPlan`], deterministically.
#[derive(Debug)]
pub struct FaultyIo {
    plan: DiskFaultPlan,
    written: AtomicU64,
    syncs: AtomicU64,
    renames: AtomicU64,
    creates: AtomicU64,
}

impl FaultyIo {
    /// Build a fault-injecting I/O layer, ready to share via `Arc`.
    pub fn new(plan: DiskFaultPlan) -> Arc<Self> {
        Arc::new(FaultyIo {
            plan,
            written: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            renames: AtomicU64::new(0),
            creates: AtomicU64::new(0),
        })
    }

    fn injected(what: &str) -> io::Error {
        if what == "ENOSPC" {
            io::Error::new(io::ErrorKind::StorageFull, format!("injected fault: {what}"))
        } else {
            io::Error::other(format!("injected fault: {what}"))
        }
    }

    /// How many bytes the faulty layer still allows, if a write budget is
    /// configured.
    fn write_allowance(&self) -> Option<u64> {
        let budget = self.plan.write_budget_bytes?;
        Some(budget.saturating_sub(self.written.load(Ordering::Relaxed)))
    }
}

/// File handle wrapper routing writes and syncs through the fault plan.
struct FaultyFile {
    inner: Box<dyn JournalFile>,
    io: Arc<FaultyIo>,
}

impl Write for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(allow) = self.io.write_allowance() {
            if allow == 0 {
                return Err(FaultyIo::injected("ENOSPC"));
            }
            if (buf.len() as u64) > allow {
                if !self.io.plan.short_final_write {
                    self.io.written.fetch_add(allow, Ordering::Relaxed);
                    return Err(FaultyIo::injected("ENOSPC"));
                }
                // Short write: persist the prefix that fits. The caller's
                // `write_all` retries the remainder and hits ENOSPC above,
                // leaving a torn frame on disk.
                let n = self.inner.write(&buf[..allow as usize])?;
                self.io.written.fetch_add(n as u64, Ordering::Relaxed);
                return Ok(n);
            }
        }
        let n = self.inner.write(buf)?;
        self.io.written.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl JournalFile for FaultyFile {
    fn sync_data(&mut self) -> io::Result<()> {
        if let Some(allowed) = self.io.plan.syncs_allowed {
            if self.io.syncs.fetch_add(1, Ordering::Relaxed) >= allowed {
                return Err(FaultyIo::injected("fsync failure"));
            }
        }
        self.inner.sync_data()
    }
}

impl JournalIo for Arc<FaultyIo> {
    fn create(&self, path: &Path) -> io::Result<Box<dyn JournalFile>> {
        if let Some(allowed) = self.plan.creates_allowed {
            if self.creates.fetch_add(1, Ordering::Relaxed) >= allowed {
                return Err(FaultyIo::injected("create failure"));
            }
        }
        let inner = RealIo.create(path)?;
        Ok(Box::new(FaultyFile { inner, io: Arc::clone(self) }))
    }

    fn open_truncate_append(&self, path: &Path, len: u64) -> io::Result<Box<dyn JournalFile>> {
        let inner = RealIo.open_truncate_append(path, len)?;
        Ok(Box::new(FaultyFile { inner, io: Arc::clone(self) }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some(allowed) = self.plan.renames_allowed {
            if self.renames.fetch_add(1, Ordering::Relaxed) >= allowed {
                return Err(FaultyIo::injected("rename failure"));
            }
        }
        RealIo.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        RealIo.remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        RealIo.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("critlock-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn budget_charges_and_releases() {
        let budget = DiskBudget::with_limit(Some(10));
        assert!(!budget.exhausted());
        budget.seed(10);
        assert!(budget.exhausted());
        budget.release(4);
        assert_eq!(budget.used(), 6);
        assert!(!budget.exhausted());
        assert!(budget.would_exceed(5));
        assert!(!budget.would_exceed(4));
        budget.release(100);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn tracked_writes_charge_the_budget() {
        let dir = tmpdir("tracked");
        let budget = DiskBudget::unlimited();
        let mut f = budget.track(RealIo.create(&dir.join("a")).unwrap(), None);
        f.write_all(b"hello world").unwrap();
        assert_eq!(budget.used(), 11);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_fires_at_the_configured_byte() {
        let dir = tmpdir("enospc");
        let io = FaultyIo::new(DiskFaultPlan {
            write_budget_bytes: Some(8),
            ..DiskFaultPlan::default()
        });
        let mut f = io.create(&dir.join("a")).unwrap();
        f.write_all(b"12345678").unwrap();
        let err = f.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // Nothing of the failing write was persisted.
        f.flush().unwrap();
        assert_eq!(std::fs::metadata(dir.join("a")).unwrap().len(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_persists_the_prefix_then_fails() {
        let dir = tmpdir("short");
        let io = FaultyIo::new(DiskFaultPlan {
            write_budget_bytes: Some(5),
            short_final_write: true,
            ..DiskFaultPlan::default()
        });
        let mut f = io.create(&dir.join("a")).unwrap();
        let err = f.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        f.flush().unwrap();
        assert_eq!(std::fs::read(dir.join("a")).unwrap(), b"01234");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_and_rename_faults_trigger_after_allowance() {
        let dir = tmpdir("syncrename");
        let io = FaultyIo::new(DiskFaultPlan {
            syncs_allowed: Some(1),
            renames_allowed: Some(0),
            ..DiskFaultPlan::default()
        });
        let mut f = io.create(&dir.join("a")).unwrap();
        f.write_all(b"x").unwrap();
        f.flush().unwrap();
        f.sync_data().unwrap();
        assert!(f.sync_data().is_err());
        assert!(JournalIo::rename(&io, &dir.join("a"), &dir.join("b")).is_err());
        // The failed rename left the source in place (crash-after-tmp).
        assert!(dir.join("a").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Crash-safe append-only session journals (write-ahead log sidecars).
//!
//! When the collector is started with a journal directory, every frame a
//! session reader accepts is appended to that session's journal file
//! *before* it is queued for analysis, and the acknowledgement sent to a
//! resumable producer only covers journaled frames. A collector that
//! crashes and restarts therefore recovers exactly the frames it acked:
//! [`recover_dir`] replays each journal into a fresh session, truncating
//! any torn tail left by a crash mid-append, and reopens the file so the
//! recovered session keeps journaling when its producer reconnects.
//!
//! The file format *is* the CLSM stream format ([`critlock_trace::stream`]):
//! a header whose handshake carries the session's resume token, followed
//! by CRC-checked frames. `critlock analyze` could consume a journal
//! directly if it ever had to.

use crate::metrics::JournalCounters;
use critlock_trace::stream::{Frame, Handshake, StreamReader, StreamWriter};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read};
use std::path::{Path, PathBuf};

/// File extension of session journals.
pub const JOURNAL_EXT: &str = "clsj";

/// An open, append-only journal for one session.
pub struct SessionJournal {
    writer: StreamWriter<BufWriter<File>>,
    path: PathBuf,
    frames: u64,
    counters: Option<JournalCounters>,
}

impl std::fmt::Debug for SessionJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionJournal")
            .field("path", &self.path)
            .field("frames", &self.frames)
            .finish()
    }
}

/// Hex-encode a session token for use as a file stem.
fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The journal path for a session: `<dir>/<hex-token>.clsj`, or
/// `<dir>/anon-<id>.clsj` for sessions without a resume token.
pub fn journal_path(dir: &Path, token: &[u8], session_id: u64) -> PathBuf {
    let stem = if token.is_empty() { format!("anon-{session_id}") } else { hex(token) };
    dir.join(format!("{stem}.{JOURNAL_EXT}"))
}

impl SessionJournal {
    /// Create (or truncate) the journal for a session, writing the CLSM
    /// header with the session's resume token.
    pub fn create(dir: &Path, token: &[u8], session_id: u64) -> io::Result<SessionJournal> {
        let path = journal_path(dir, token, session_id);
        let file = File::create(&path)?;
        let handshake = Handshake { token: token.to_vec(), start_seq: 0 };
        let writer = StreamWriter::with_handshake(BufWriter::new(file), &handshake)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut journal = SessionJournal { writer, path, frames: 0, counters: None };
        journal.writer.flush().map_err(io_err)?;
        Ok(journal)
    }

    /// Attach observability counters: appends, append failures and syncs
    /// are accounted where the I/O happens.
    pub fn set_counters(&mut self, counters: JournalCounters) {
        self.counters = Some(counters);
    }

    /// Append one frame and flush it to the OS. The frame is durable
    /// against a collector crash once this returns (durability against a
    /// machine crash additionally needs [`SessionJournal::sync`]).
    pub fn append(&mut self, frame: &Frame) -> io::Result<()> {
        let res = self.writer.write_frame(frame).and_then(|()| self.writer.flush()).map_err(io_err);
        match res {
            Ok(()) => {
                self.frames += 1;
                if let Some(c) = &self.counters {
                    c.appends.inc();
                }
                Ok(())
            }
            Err(e) => {
                if let Some(c) = &self.counters {
                    c.append_failures.inc();
                }
                Err(e)
            }
        }
    }

    /// Flush and fsync the journal file.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.flush().map_err(io_err)?;
        self.writer.inner_mut().get_mut().sync_data()?;
        if let Some(c) = &self.counters {
            c.syncs.inc();
        }
        Ok(())
    }

    /// Frames written to this journal (including recovered ones).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn io_err(e: critlock_trace::TraceError) -> io::Error {
    match e {
        critlock_trace::TraceError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// One session recovered from a journal file.
pub struct RecoveredSession {
    /// The resume token the journal was created with (empty for
    /// anonymous sessions).
    pub token: Vec<u8>,
    /// Every intact frame, in arrival order.
    pub frames: Vec<Frame>,
    /// The journal, reopened for appending after the last intact frame.
    pub journal: SessionJournal,
}

/// Counts bytes actually consumed from the underlying reader, so
/// recovery knows the exact offset of the last intact frame. The counter
/// is shared so it stays readable while the decoder owns the reader.
struct CountingReader<R> {
    inner: R,
    pos: std::rc::Rc<std::cell::Cell<u64>>,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.pos.set(self.pos.get() + n as u64);
        Ok(n)
    }
}

/// Replay one journal file: decode frames until the end or the first
/// torn/corrupt frame, truncate the file to the last intact frame, and
/// reopen it for appending.
pub fn recover_file(path: &Path) -> io::Result<RecoveredSession> {
    let file = File::open(path)?;
    // No BufReader here: read-ahead would inflate the byte count past
    // what the decoder actually consumed, corrupting the truncation
    // offset. Recovery is a one-shot startup cost.
    let pos = std::rc::Rc::new(std::cell::Cell::new(0u64));
    let reader = CountingReader { inner: file, pos: std::rc::Rc::clone(&pos) };
    let mut stream = StreamReader::new(reader).map_err(io_err)?;
    let token = stream.handshake().token.clone();
    let mut frames = Vec::new();
    let mut good_pos = pos.get();
    // A decode error here is a torn tail (crash mid-append), not a fatal
    // condition: everything before it was acked and is recovered.
    while let Ok(Some(frame)) = stream.next_frame() {
        frames.push(frame);
        good_pos = pos.get();
    }
    drop(stream);

    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(good_pos)?;
    let writer_file = OpenOptions::new().append(true).open(path)?;
    let writer = StreamWriter::append(BufWriter::new(writer_file));
    Ok(RecoveredSession {
        token,
        frames: frames.clone(),
        journal: SessionJournal {
            writer,
            path: path.to_path_buf(),
            frames: frames.len() as u64,
            counters: None,
        },
    })
}

/// Recover every `*.clsj` journal in a directory, in file-name order
/// (deterministic across runs). Unreadable files are skipped and
/// reported alongside the successes.
pub fn recover_dir(dir: &Path) -> io::Result<(Vec<RecoveredSession>, u64)> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(JOURNAL_EXT))
        .collect();
    paths.sort();
    let mut recovered = Vec::new();
    let mut skipped = 0u64;
    for path in paths {
        match recover_file(&path) {
            Ok(session) => recovered.push(session),
            Err(_) => skipped += 1,
        }
    }
    Ok((recovered, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_trace::TraceMeta;
    use std::io::Write;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("critlock-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Start { meta: TraceMeta::named("journaled") },
            Frame::Param { key: "threads".into(), value: "2".into() },
            Frame::End,
        ]
    }

    #[test]
    fn append_then_recover_roundtrips() {
        let dir = tmpdir("roundtrip");
        let mut journal = SessionJournal::create(&dir, b"tok", 0).unwrap();
        for frame in sample_frames() {
            journal.append(&frame).unwrap();
        }
        journal.sync().unwrap();
        assert_eq!(journal.frames(), 3);
        drop(journal);

        let (sessions, skipped) = recover_dir(&dir).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].token, b"tok");
        assert_eq!(sessions[0].frames, sample_frames());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmpdir("torn");
        let mut journal = SessionJournal::create(&dir, b"t2", 0).unwrap();
        let frames = sample_frames();
        journal.append(&frames[0]).unwrap();
        journal.append(&frames[1]).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);

        // Simulate a crash mid-append: garbage half-frame at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x19, 0xde, 0xad]).unwrap();
        }

        let mut rec = recover_file(&path).unwrap();
        assert_eq!(rec.frames, frames[..2].to_vec());

        // The reopened journal appends cleanly after the truncated tail.
        rec.journal.append(&frames[2]).unwrap();
        drop(rec);
        let rec = recover_file(&path).unwrap();
        assert_eq!(rec.frames, frames);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn anon_sessions_get_distinct_files() {
        let dir = tmpdir("anon");
        let a = SessionJournal::create(&dir, b"", 3).unwrap();
        let b = SessionJournal::create(&dir, b"", 4).unwrap();
        assert_ne!(a.path(), b.path());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_journals_are_skipped_not_fatal() {
        let dir = tmpdir("skip");
        std::fs::write(dir.join(format!("bogus.{JOURNAL_EXT}")), b"not a stream").unwrap();
        let mut good = SessionJournal::create(&dir, b"ok", 0).unwrap();
        good.append(&Frame::End).unwrap();
        drop(good);
        let (sessions, skipped) = recover_dir(&dir).unwrap();
        assert_eq!(sessions.len(), 1);
        assert_eq!(skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

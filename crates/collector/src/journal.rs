//! Crash-safe, segmented, append-only session journals (write-ahead log
//! sidecars).
//!
//! When the collector is started with a journal directory, every frame a
//! session reader accepts is appended to that session's journal *before*
//! it is queued for analysis, and the acknowledgement sent to a resumable
//! producer only covers journaled frames. A collector that crashes and
//! restarts therefore recovers exactly the frames it acked:
//! [`recover_dir`] scans each session's segments in order, truncates any
//! torn tail left by a crash mid-append, and reopens the last segment so
//! the recovered session keeps journaling when its producer reconnects.
//!
//! ## Segments
//!
//! A session's journal is a sequence of segment files: the base
//! `<stem>.clsj` (segment 0) followed by `<stem>.clsj.0001`,
//! `<stem>.clsj.0002`, … — each a standalone CLSM stream
//! ([`critlock_trace::stream`]) whose handshake `start_seq` records the
//! global number of the segment's first frame. Rotation happens when the
//! active segment crosses the configured byte threshold
//! ([`JournalOptions::segment_bytes`]). Recovery tolerates a torn tail
//! only in the *last* segment; corruption in an earlier segment truncates
//! the session there and deletes the later segments (their frames were
//! acked against a journal that can no longer prove them contiguous).
//!
//! Segments whose last frame is at or below a durable checkpoint's
//! watermark carry no information the checkpoint doesn't, and are deleted
//! by [`SessionJournal::prune_absorbed`], returning their bytes to the
//! disk budget.
//!
//! All file I/O goes through the injectable [`JournalIo`] layer so the
//! chaos tests can drive ENOSPC, short writes and failed fsyncs through
//! the exact production code paths, and every successful write is charged
//! to the collector's [`DiskBudget`].

use crate::io::{DiskBudget, JournalFile, JournalIo, RealIo};
use crate::metrics::JournalCounters;
use critlock_trace::stream::{Frame, Handshake, RawFrame, StreamReader, StreamWriter};
use std::fs::File;
use std::io::{self, BufWriter, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// File extension of session journals.
pub const JOURNAL_EXT: &str = "clsj";

/// How the journal layer talks to disk: the I/O implementation, the
/// collector-wide byte budget, the rotation threshold and the metric
/// handles. One value per collector, cloned into each session's journal.
#[derive(Debug, Clone)]
pub struct JournalOptions {
    /// The (injectable) filesystem layer.
    pub io: Arc<dyn JournalIo>,
    /// Collector-wide disk budget charged by every journal write.
    pub budget: DiskBudget,
    /// Rotate the active segment once it holds at least this many bytes.
    /// `None` disables rotation (single unbounded segment, the legacy
    /// layout).
    pub segment_bytes: Option<u64>,
    /// Observability counters, when the collector has a registry.
    pub counters: Option<JournalCounters>,
}

impl Default for JournalOptions {
    fn default() -> Self {
        JournalOptions {
            io: Arc::new(RealIo),
            budget: DiskBudget::unlimited(),
            segment_bytes: None,
            counters: None,
        }
    }
}

/// A closed (rotated-out) segment the active journal still tracks so it
/// can be pruned once a checkpoint absorbs it.
#[derive(Debug, Clone)]
struct ClosedSegment {
    path: PathBuf,
    /// Global frame number one past the segment's last frame.
    end: u64,
    /// Bytes the segment occupies on disk.
    bytes: u64,
}

/// An open, append-only, segmented journal for one session.
pub struct SessionJournal {
    opts: JournalOptions,
    writer: StreamWriter<BufWriter<Box<dyn JournalFile>>>,
    dir: PathBuf,
    stem: String,
    token: Vec<u8>,
    /// Index of the active segment.
    seg_index: u32,
    /// Global frame number of the active segment's first frame.
    seg_start: u64,
    /// Bytes written to the active segment (shared with the tracking
    /// wrapper around the file handle).
    seg_written: Arc<AtomicU64>,
    /// Total frames across all segments, i.e. the next frame's global
    /// number.
    frames: u64,
    closed: Vec<ClosedSegment>,
}

impl std::fmt::Debug for SessionJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionJournal")
            .field("stem", &self.stem)
            .field("seg_index", &self.seg_index)
            .field("frames", &self.frames)
            .finish()
    }
}

/// Hex-encode a session token for use as a file stem.
fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The journal file stem for a session: `<hex-token>`, or `anon-<id>`
/// for sessions without a resume token.
pub fn journal_stem(token: &[u8], session_id: u64) -> String {
    if token.is_empty() {
        format!("anon-{session_id}")
    } else {
        hex(token)
    }
}

/// The path of a session's journal segment `index`: the base
/// `<dir>/<stem>.clsj` for segment 0, `<dir>/<stem>.clsj.NNNN` after.
pub fn segment_path(dir: &Path, stem: &str, index: u32) -> PathBuf {
    if index == 0 {
        dir.join(format!("{stem}.{JOURNAL_EXT}"))
    } else {
        dir.join(format!("{stem}.{JOURNAL_EXT}.{index:04}"))
    }
}

/// The base journal path for a session (segment 0) — kept for callers
/// that only need a per-session file identity.
pub fn journal_path(dir: &Path, token: &[u8], session_id: u64) -> PathBuf {
    segment_path(dir, &journal_stem(token, session_id), 0)
}

/// Parse a directory entry's file name as `(stem, segment index)`.
/// Returns `None` for files that are not journal segments.
fn parse_segment_name(name: &str) -> Option<(String, u32)> {
    let base_suffix = format!(".{JOURNAL_EXT}");
    if let Some(stem) = name.strip_suffix(&base_suffix) {
        if stem.is_empty() {
            return None;
        }
        return Some((stem.to_string(), 0));
    }
    let marker = format!(".{JOURNAL_EXT}.");
    let pos = name.rfind(&marker)?;
    let stem = &name[..pos];
    let idx_str = &name[pos + marker.len()..];
    if stem.is_empty() || idx_str.is_empty() || !idx_str.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let idx: u32 = idx_str.parse().ok()?;
    Some((stem.to_string(), idx))
}

impl SessionJournal {
    /// Create the journal for a session (segment 0), writing the CLSM
    /// header with the session's resume token and making it durable:
    /// header bytes are fsynced and the parent directory entry is fsynced
    /// so the file cannot vanish after a crash.
    pub fn create(
        dir: &Path,
        token: &[u8],
        session_id: u64,
        opts: JournalOptions,
    ) -> io::Result<SessionJournal> {
        let stem = journal_stem(token, session_id);
        let mut journal = SessionJournal {
            opts,
            // Placeholder; replaced by `open_segment` below before use.
            writer: StreamWriter::append(BufWriter::new(null_file())),
            dir: dir.to_path_buf(),
            stem,
            token: token.to_vec(),
            seg_index: 0,
            seg_start: 0,
            seg_written: Arc::new(AtomicU64::new(0)),
            frames: 0,
            closed: Vec::new(),
        };
        journal.open_segment(0, 0).map_err(|e| journal.count_error(e))?;
        Ok(journal)
    }

    /// Attach observability counters: appends, append failures, syncs,
    /// rotations and errors are accounted where the I/O happens.
    pub fn set_counters(&mut self, counters: JournalCounters) {
        self.opts.counters = Some(counters);
    }

    /// Open segment `index` as the active writer, with `start` as the
    /// global number of its first frame. Writes and fsyncs the CLSM
    /// header and fsyncs the directory entry.
    fn open_segment(&mut self, index: u32, start: u64) -> io::Result<()> {
        if self.opts.budget.exhausted() {
            return Err(DiskBudget::quota_error());
        }
        let path = segment_path(&self.dir, &self.stem, index);
        let seg_written = Arc::new(AtomicU64::new(0));
        let file = self.opts.io.create(&path)?;
        let file = self.opts.budget.track(file, Some(Arc::clone(&seg_written)));
        let handshake = Handshake { token: self.token.clone(), start_seq: start };
        let mut writer =
            StreamWriter::with_handshake(BufWriter::new(file), &handshake).map_err(io_err)?;
        // Make the header itself durable, not merely buffered: a segment
        // whose header is lost loses every frame behind it.
        writer.flush().map_err(io_err)?;
        writer.inner_mut().get_mut().sync_data()?;
        self.opts.io.sync_dir(&self.dir)?;
        self.writer = writer;
        self.seg_index = index;
        self.seg_start = start;
        self.seg_written = seg_written;
        Ok(())
    }

    fn count_error(&self, e: io::Error) -> io::Error {
        if let Some(c) = &self.opts.counters {
            c.errors.inc();
        }
        e
    }

    /// Append one frame and flush it to the OS. The frame is durable
    /// against a collector crash once this returns (durability against a
    /// machine crash additionally needs [`SessionJournal::sync`]).
    /// Fails with [`io::ErrorKind::StorageFull`] when the disk budget is
    /// exhausted; the caller degrades the session to journal-less mode.
    pub fn append(&mut self, frame: &Frame) -> io::Result<()> {
        self.append_with(|w| w.write_frame(frame))
    }

    /// Append a received frame's wire bytes verbatim — byte-identical to
    /// [`append`](Self::append) of the decoded frame, without the decode
    /// and re-encode round trip.
    pub fn append_raw(&mut self, raw: &RawFrame) -> io::Result<()> {
        self.append_with(|w| w.write_raw_frame(raw))
    }

    fn append_with(
        &mut self,
        write: impl FnOnce(
            &mut StreamWriter<BufWriter<Box<dyn JournalFile>>>,
        ) -> critlock_trace::Result<()>,
    ) -> io::Result<()> {
        if self.opts.budget.exhausted() {
            let e = DiskBudget::quota_error();
            if let Some(c) = &self.opts.counters {
                c.append_failures.inc();
                c.errors.inc();
            }
            return Err(e);
        }
        let res = write(&mut self.writer).and_then(|()| self.writer.flush()).map_err(io_err);
        match res {
            Ok(()) => {
                self.frames += 1;
                if let Some(c) = &self.opts.counters {
                    c.appends.inc();
                }
                self.maybe_rotate();
                Ok(())
            }
            Err(e) => {
                if let Some(c) = &self.opts.counters {
                    c.append_failures.inc();
                    c.errors.inc();
                }
                Err(e)
            }
        }
    }

    /// Rotate when the active segment has crossed the byte threshold.
    /// A failed rotation is not fatal: the active segment keeps growing
    /// and rotation is retried after the next append.
    fn maybe_rotate(&mut self) {
        let Some(threshold) = self.opts.segment_bytes else { return };
        if self.seg_written.load(Ordering::Relaxed) < threshold {
            return;
        }
        if let Err(e) = self.rotate_to(self.frames) {
            let _ = self.count_error(e);
        }
    }

    /// Close the active segment (fsyncing it) and open the next one with
    /// `start` as its first global frame number. `start` beyond the
    /// current frame count realigns a recovered journal whose checkpoint
    /// watermark outran its surviving frames.
    fn rotate_to(&mut self, start: u64) -> io::Result<()> {
        // Close out the current segment durably before abandoning it.
        self.writer.flush().map_err(io_err)?;
        self.writer.inner_mut().get_mut().sync_data()?;
        let old_path = segment_path(&self.dir, &self.stem, self.seg_index);
        let old = ClosedSegment {
            path: old_path,
            end: self.frames,
            bytes: self.seg_written.load(Ordering::Relaxed),
        };
        let next = self.seg_index + 1;
        self.open_segment(next, start)?;
        self.closed.push(old);
        self.frames = start;
        if let Some(c) = &self.opts.counters {
            c.rotations.inc();
        }
        Ok(())
    }

    /// Realign the journal to a checkpoint watermark that lies beyond the
    /// surviving frames (the journal degraded while checkpoints kept
    /// advancing): opens a fresh segment starting at `watermark`, leaving
    /// every old segment fully absorbed and thus prunable.
    pub fn align_to(&mut self, watermark: u64) -> io::Result<()> {
        if watermark <= self.frames {
            return Ok(());
        }
        self.rotate_to(watermark).map_err(|e| self.count_error(e))
    }

    /// Flush and fsync the journal file. Failed syncs are counted in the
    /// journal error counter.
    pub fn sync(&mut self) -> io::Result<()> {
        let res = self
            .writer
            .flush()
            .map_err(io_err)
            .and_then(|()| self.writer.inner_mut().get_mut().sync_data());
        match res {
            Ok(()) => {
                if let Some(c) = &self.opts.counters {
                    c.syncs.inc();
                }
                Ok(())
            }
            Err(e) => Err(self.count_error(e)),
        }
    }

    /// Delete every closed segment fully absorbed by a checkpoint at
    /// `watermark` (its last frame is below the watermark), returning the
    /// bytes to the disk budget. Returns `(segments deleted, bytes freed)`.
    pub fn prune_absorbed(&mut self, watermark: u64) -> (u64, u64) {
        let mut deleted = 0usize;
        let mut freed = 0u64;
        // Delete only a contiguous prefix: skipping over a segment that
        // failed to delete would leave a gap recovery treats as torn.
        for seg in &self.closed {
            if seg.end > watermark || self.opts.io.remove_file(&seg.path).is_err() {
                break;
            }
            self.opts.budget.release(seg.bytes);
            freed += seg.bytes;
            deleted += 1;
        }
        self.closed.drain(..deleted);
        if deleted > 0 {
            let _ = self.opts.io.sync_dir(&self.dir);
        }
        (deleted as u64, freed)
    }

    /// Frames written to this journal across all segments (including
    /// recovered ones) — the next frame's global number.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The active segment's path.
    pub fn path(&self) -> PathBuf {
        segment_path(&self.dir, &self.stem, self.seg_index)
    }

    /// The session's file stem (`anon-N` or the hex token).
    pub fn stem(&self) -> &str {
        &self.stem
    }

    /// Closed segments not yet pruned.
    pub fn closed_segments(&self) -> usize {
        self.closed.len()
    }
}

/// An always-failing placeholder file used only while constructing a
/// journal, before the first real segment is opened.
fn null_file() -> Box<dyn JournalFile> {
    struct NullFile;
    impl io::Write for NullFile {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("journal segment not open"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl JournalFile for NullFile {
        fn sync_data(&mut self) -> io::Result<()> {
            Err(io::Error::other("journal segment not open"))
        }
    }
    Box::new(NullFile)
}

fn io_err(e: critlock_trace::TraceError) -> io::Error {
    match e {
        critlock_trace::TraceError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// One intact journal segment found by recovery.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// The segment file.
    pub path: PathBuf,
    /// Global frame number of the segment's first frame.
    pub start: u64,
    /// Global frame number one past the segment's last intact frame.
    pub end: u64,
    /// Bytes of intact data (header + frames) in the segment.
    pub bytes: u64,
}

/// One session recovered from its journal segments.
pub struct RecoveredSession {
    /// The resume token the journal was created with (empty for
    /// anonymous sessions).
    pub token: Vec<u8>,
    /// The session's file stem (`anon-N` or the hex token).
    pub stem: String,
    /// Global frame number one past the last intact frame — what a full
    /// replay reproduces.
    pub frames: u64,
    /// Every intact segment, in order. The first segment's `start` can be
    /// nonzero when earlier segments were pruned by a checkpoint.
    pub segments: Vec<SegmentInfo>,
    /// The journal, reopened for appending after the last intact frame.
    pub journal: SessionJournal,
}

impl RecoveredSession {
    /// Stream every intact frame with global number `>= from` through
    /// `apply`, in order, decoding one frame at a time — recovery memory
    /// stays bounded by the largest single frame, not the journal size.
    /// Returns the number of frames applied.
    pub fn replay_tail(&self, from: u64, mut apply: impl FnMut(Frame)) -> io::Result<u64> {
        let mut applied = 0u64;
        for seg in &self.segments {
            if seg.end <= from {
                continue;
            }
            let file = File::open(&seg.path)?;
            let mut stream = StreamReader::new(file).map_err(io_err)?;
            let mut next = seg.start;
            while next < seg.end {
                let frame = match stream.next_frame() {
                    Ok(Some(frame)) => frame,
                    // The intact range was measured by the scan; running
                    // short of it means the file changed underneath us.
                    _ => return Err(io::Error::other("journal segment shrank during replay")),
                };
                if next >= from {
                    apply(frame);
                    applied += 1;
                }
                next += 1;
            }
        }
        Ok(applied)
    }
}

/// Counts bytes actually consumed from the underlying reader, so
/// recovery knows the exact offset of the last intact frame. The counter
/// is shared so it stays readable while the decoder owns the reader.
struct CountingReader<R> {
    inner: R,
    pos: std::rc::Rc<std::cell::Cell<u64>>,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.pos.set(self.pos.get() + n as u64);
        Ok(n)
    }
}

/// Scan one segment file: handshake, frame count, and the byte offset of
/// the last intact frame. Frames are decoded and discarded one at a time.
fn scan_segment(path: &Path) -> io::Result<(Handshake, u64, u64)> {
    let file = File::open(path)?;
    // No BufReader here: read-ahead would inflate the byte count past
    // what the decoder actually consumed, corrupting the truncation
    // offset. Recovery is a one-shot startup cost.
    let pos = std::rc::Rc::new(std::cell::Cell::new(0u64));
    let reader = CountingReader { inner: file, pos: std::rc::Rc::clone(&pos) };
    let mut stream = StreamReader::new(reader).map_err(io_err)?;
    let handshake = stream.handshake().clone();
    let mut frames = 0u64;
    let mut good_pos = pos.get();
    // A decode error here is a torn tail (crash mid-append), not a fatal
    // condition: everything before it was acked and is recovered.
    while let Ok(Some(_)) = stream.next_frame() {
        frames += 1;
        good_pos = pos.get();
    }
    Ok((handshake, frames, good_pos))
}

/// Recover one session from its ordered segment paths. Returns `None`
/// when not even the first segment yields a readable handshake.
fn recover_session(
    dir: &Path,
    stem: &str,
    indexed: &[(u32, PathBuf)],
    opts: &JournalOptions,
) -> Option<RecoveredSession> {
    let mut segments: Vec<SegmentInfo> = Vec::new();
    let mut token: Option<Vec<u8>> = None;
    let mut expected_start: Option<u64> = None;
    let mut last_scan: Option<(u32, u64)> = None; // (index, good_pos)
    let mut torn_after: Option<usize> = None; // position in `indexed` to delete from

    for (i, (idx, path)) in indexed.iter().enumerate() {
        // A gap in segment indices below means the chain is broken there.
        let chain_broken = match last_scan {
            Some((prev_idx, _)) => *idx != prev_idx + 1,
            None => false,
        };
        if chain_broken {
            torn_after = Some(i);
            break;
        }
        match scan_segment(path) {
            Ok((handshake, frames, good_pos)) => {
                match (&token, &expected_start) {
                    (None, _) => {
                        token = Some(handshake.token.clone());
                        expected_start = Some(handshake.start_seq);
                    }
                    (Some(tok), Some(exp))
                        if handshake.token != *tok || handshake.start_seq != *exp =>
                    {
                        // Mismatched continuation: stop the chain here.
                        torn_after = Some(i);
                        break;
                    }
                    _ => {}
                }
                let start = expected_start.unwrap();
                segments.push(SegmentInfo {
                    path: path.clone(),
                    start,
                    end: start + frames,
                    bytes: good_pos,
                });
                expected_start = Some(start + frames);
                last_scan = Some((*idx, good_pos));
            }
            Err(_) if token.is_some() => {
                // Unreadable later segment: torn mid-chain.
                torn_after = Some(i);
                break;
            }
            Err(_) => return None,
        }
    }

    // Corruption mid-chain: everything from the broken segment on is
    // unprovable — delete it so the surviving prefix is the journal.
    if let Some(cut) = torn_after {
        for (_, path) in &indexed[cut..] {
            if let Ok(meta) = std::fs::metadata(path) {
                if opts.io.remove_file(path).is_ok() {
                    opts.budget.release(meta.len());
                }
            }
        }
        let _ = opts.io.sync_dir(dir);
    }

    let last = segments.last()?.clone();
    let frames = last.end;
    let (last_idx, good_pos) = last_scan?;

    // Reopen the last segment for appending, cutting any torn tail.
    let file = opts.io.open_truncate_append(&last.path, good_pos).ok()?;
    let seg_written = Arc::new(AtomicU64::new(good_pos));
    let file = opts.budget.track(file, Some(Arc::clone(&seg_written)));
    let writer = StreamWriter::append(BufWriter::new(file));

    let closed = segments[..segments.len() - 1]
        .iter()
        .map(|seg| ClosedSegment { path: seg.path.clone(), end: seg.end, bytes: seg.bytes })
        .collect();

    let journal = SessionJournal {
        opts: opts.clone(),
        writer,
        dir: dir.to_path_buf(),
        stem: stem.to_string(),
        token: token.clone().unwrap_or_default(),
        seg_index: last_idx,
        seg_start: last.start,
        seg_written,
        frames,
        closed,
    };

    Some(RecoveredSession {
        token: token.unwrap_or_default(),
        stem: stem.to_string(),
        frames,
        segments,
        journal,
    })
}

/// Recover every session's journal segments in a directory, grouped by
/// stem and scanned in segment order (deterministic across runs).
/// Sessions whose first segment is unreadable are skipped and reported
/// alongside the successes. `opts` supplies the I/O layer and budget the
/// reopened journals keep using.
pub fn recover_dir_with(
    dir: &Path,
    opts: &JournalOptions,
) -> io::Result<(Vec<RecoveredSession>, u64)> {
    let mut by_stem: std::collections::BTreeMap<String, Vec<(u32, PathBuf)>> =
        std::collections::BTreeMap::new();
    for entry in std::fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if let Some((stem, idx)) = parse_segment_name(name) {
            by_stem.entry(stem).or_default().push((idx, path));
        }
    }
    let mut recovered = Vec::new();
    let mut skipped = 0u64;
    for (stem, mut indexed) in by_stem {
        indexed.sort_by_key(|(idx, _)| *idx);
        match recover_session(dir, &stem, &indexed, opts) {
            Some(session) => recovered.push(session),
            None => skipped += 1,
        }
    }
    Ok((recovered, skipped))
}

/// [`recover_dir_with`] using the production I/O layer and no budget —
/// the convenience entry point for tools and tests.
pub fn recover_dir(dir: &Path) -> io::Result<(Vec<RecoveredSession>, u64)> {
    recover_dir_with(dir, &JournalOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_trace::TraceMeta;
    use std::io::Write;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("critlock-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Start { meta: TraceMeta::named("journaled") },
            Frame::Param { key: "threads".into(), value: "2".into() },
            Frame::End,
        ]
    }

    fn collect_frames(rec: &RecoveredSession) -> Vec<Frame> {
        let mut frames = Vec::new();
        rec.replay_tail(0, |f| frames.push(f)).unwrap();
        frames
    }

    #[test]
    fn append_then_recover_roundtrips() {
        let dir = tmpdir("roundtrip");
        let mut journal =
            SessionJournal::create(&dir, b"tok", 0, JournalOptions::default()).unwrap();
        for frame in sample_frames() {
            journal.append(&frame).unwrap();
        }
        journal.sync().unwrap();
        assert_eq!(journal.frames(), 3);
        drop(journal);

        let (sessions, skipped) = recover_dir(&dir).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].token, b"tok");
        assert_eq!(sessions[0].frames, 3);
        assert_eq!(collect_frames(&sessions[0]), sample_frames());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn raw_append_is_byte_identical_to_owned_append() {
        let dir_a = tmpdir("raw-append-owned");
        let dir_b = tmpdir("raw-append-raw");
        let mut owned =
            SessionJournal::create(&dir_a, b"tok", 0, JournalOptions::default()).unwrap();
        let mut raw = SessionJournal::create(&dir_b, b"tok", 0, JournalOptions::default()).unwrap();
        for frame in sample_frames() {
            owned.append(&frame).unwrap();
            raw.append_raw(&RawFrame::encode(&frame).unwrap()).unwrap();
        }
        owned.sync().unwrap();
        raw.sync().unwrap();
        assert_eq!(raw.frames(), owned.frames());
        let (owned_path, raw_path) = (owned.path(), raw.path());
        drop(owned);
        drop(raw);
        let owned_bytes = std::fs::read(owned_path).unwrap();
        let raw_bytes = std::fs::read(raw_path).unwrap();
        assert_eq!(owned_bytes, raw_bytes);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmpdir("torn");
        let mut journal =
            SessionJournal::create(&dir, b"t2", 0, JournalOptions::default()).unwrap();
        let frames = sample_frames();
        journal.append(&frames[0]).unwrap();
        journal.append(&frames[1]).unwrap();
        let path = journal.path();
        drop(journal);

        // Simulate a crash mid-append: garbage half-frame at the tail.
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x19, 0xde, 0xad]).unwrap();
        }

        let (mut sessions, _) = recover_dir(&dir).unwrap();
        let mut rec = sessions.pop().unwrap();
        assert_eq!(collect_frames(&rec), frames[..2].to_vec());

        // The reopened journal appends cleanly after the truncated tail.
        rec.journal.append(&frames[2]).unwrap();
        drop(rec);
        let (sessions, _) = recover_dir(&dir).unwrap();
        assert_eq!(collect_frames(&sessions[0]), frames);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn anon_sessions_get_distinct_files() {
        let dir = tmpdir("anon");
        let a = SessionJournal::create(&dir, b"", 3, JournalOptions::default()).unwrap();
        let b = SessionJournal::create(&dir, b"", 4, JournalOptions::default()).unwrap();
        assert_ne!(a.path(), b.path());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_journals_are_skipped_not_fatal() {
        let dir = tmpdir("skip");
        std::fs::write(dir.join(format!("bogus.{JOURNAL_EXT}")), b"not a stream").unwrap();
        let mut good = SessionJournal::create(&dir, b"ok", 0, JournalOptions::default()).unwrap();
        good.append(&Frame::End).unwrap();
        drop(good);
        let (sessions, skipped) = recover_dir(&dir).unwrap();
        assert_eq!(sessions.len(), 1);
        assert_eq!(skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_splits_segments_and_recovery_reassembles() {
        let dir = tmpdir("rotate");
        let opts = JournalOptions { segment_bytes: Some(1), ..JournalOptions::default() };
        let mut journal = SessionJournal::create(&dir, b"rot", 0, opts).unwrap();
        // Threshold of 1 byte: every append rotates, one frame per segment.
        let frames = sample_frames();
        for frame in &frames {
            journal.append(frame).unwrap();
        }
        assert_eq!(journal.closed_segments(), 3);
        drop(journal);

        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.len() >= 4, "expected rotated segments, got {names:?}");

        let (sessions, skipped) = recover_dir(&dir).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].frames, 3);
        assert_eq!(collect_frames(&sessions[0]), frames);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_middle_segment_truncates_the_chain_there() {
        let dir = tmpdir("tornmid");
        let opts = JournalOptions { segment_bytes: Some(1), ..JournalOptions::default() };
        let mut journal = SessionJournal::create(&dir, b"mid", 0, opts).unwrap();
        let stem = journal.stem().to_string();
        let frames = sample_frames();
        for frame in &frames {
            journal.append(frame).unwrap();
        }
        drop(journal);

        // Corrupt segment 1 of {0, 1, 2, 3}: recovery must keep only
        // segment 0 and delete segments 1..N.
        let seg1 = segment_path(&dir, &stem, 1);
        let mut bytes = std::fs::read(&seg1).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&seg1, &bytes[..bytes.len().min(last)]).unwrap();

        let (sessions, skipped) = recover_dir(&dir).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(sessions.len(), 1);
        assert_eq!(collect_frames(&sessions[0]), frames[..1].to_vec());
        assert!(!segment_path(&dir, &stem, 2).exists(), "later segments must be deleted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_absorbed_deletes_only_covered_segments() {
        let dir = tmpdir("prune");
        let opts = JournalOptions { segment_bytes: Some(1), ..JournalOptions::default() };
        let mut journal = SessionJournal::create(&dir, b"pr", 0, opts).unwrap();
        let stem = journal.stem().to_string();
        for frame in sample_frames() {
            journal.append(&frame).unwrap();
        }
        // Segments: 0 -> [0,1), 1 -> [1,2), 2 -> [2,3), 3 active (empty).
        let (deleted, _) = journal.prune_absorbed(2);
        assert_eq!(deleted, 2);
        assert!(!segment_path(&dir, &stem, 0).exists());
        assert!(!segment_path(&dir, &stem, 1).exists());
        assert!(segment_path(&dir, &stem, 2).exists());

        // Recovery still works from the pruned chain: first surviving
        // segment starts at frame 2.
        drop(journal);
        let (sessions, skipped) = recover_dir(&dir).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(sessions[0].frames, 3);
        assert_eq!(sessions[0].segments[0].start, 2);
        assert_eq!(collect_frames(&sessions[0]), sample_frames()[2..].to_vec());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quota_exhaustion_fails_appends_with_storage_full() {
        let dir = tmpdir("quota");
        let budget = DiskBudget::with_limit(Some(64));
        let opts = JournalOptions { budget: budget.clone(), ..JournalOptions::default() };
        let mut journal = SessionJournal::create(&dir, b"q", 0, opts).unwrap();
        budget.seed(64);
        let err = journal.append(&Frame::End).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn align_to_opens_a_fresh_segment_at_the_watermark() {
        let dir = tmpdir("align");
        let mut journal =
            SessionJournal::create(&dir, b"al", 0, JournalOptions::default()).unwrap();
        journal.append(&sample_frames()[0]).unwrap();
        journal.align_to(10).unwrap();
        assert_eq!(journal.frames(), 10);
        // The pre-alignment segment is fully absorbed by watermark 10.
        let (deleted, _) = journal.prune_absorbed(10);
        assert_eq!(deleted, 1);
        journal.append(&Frame::End).unwrap();
        drop(journal);

        let (sessions, _) = recover_dir(&dir).unwrap();
        assert_eq!(sessions[0].frames, 11);
        assert_eq!(sessions[0].segments[0].start, 10);
        assert_eq!(collect_frames(&sessions[0]), vec![Frame::End]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_name_parsing() {
        assert_eq!(parse_segment_name("a1b2.clsj"), Some(("a1b2".into(), 0)));
        assert_eq!(parse_segment_name("anon-3.clsj.0001"), Some(("anon-3".into(), 1)));
        assert_eq!(parse_segment_name("x.clsj.12345"), Some(("x".into(), 12345)));
        assert_eq!(parse_segment_name("x.clck"), None);
        assert_eq!(parse_segment_name("x.clsj.tmp"), None);
        assert_eq!(parse_segment_name(".clsj"), None);
    }
}

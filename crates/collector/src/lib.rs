//! # critlock-collector
//!
//! A long-running collector daemon for **live** critical lock analysis:
//! instrumented applications (or `critlock push` replaying a recorded
//! trace) stream synchronization-event frames over Unix-domain or TCP
//! sockets, and the collector folds them into per-session traces,
//! re-analyzing incrementally and publishing snapshots — the top critical
//! locks, the critical-path length and the contention probability on the
//! critical path — over a status endpoint while the application is still
//! running. This realizes the run-time direction sketched in the paper's
//! future work (Chen & Stenström, SC 2012): the same analysis that
//! `critlock analyze` performs post-mortem, kept continuously up to date
//! against an in-progress execution.
//!
//! Architecture (one module per stage):
//!
//! * [`net`] — `unix:/path` / `host:port` address handling and the socket
//!   abstraction;
//! * [`queue`] — bounded per-session frame queues with configurable
//!   backpressure ([`Backpressure::Block`] stalls the producer through
//!   the transport; [`Backpressure::Drop`] sheds frames and counts them);
//! * [`assembler`] — loss- and disconnect-tolerant assembly of frames
//!   into traces that always pass `Trace::validate`;
//! * [`snapshot`] — per-session analysis snapshots and the status
//!   document, in text and JSON;
//! * [`server`] — the daemon: accept loops, session reader threads, the
//!   incremental analysis loop, the status endpoint;
//! * [`client`] — push/status helpers used by the CLI and tests, with
//!   resumable reconnect ([`client::push_with`]);
//! * [`journal`] — crash-safe, segmented per-session write-ahead
//!   journals and startup recovery;
//! * [`checkpoint`] — durable per-session checkpoints (tmp+fsync+rename)
//!   so recovery replays only the journal tail, and absorbed segments
//!   can be pruned;
//! * [`io`] — the injectable storage layer ([`JournalIo`]) under
//!   journals, checkpoints and the outbox, plus the collector-wide
//!   [`DiskBudget`] and the deterministic disk-fault injector
//!   ([`FaultyIo`]) the chaos tests drive it with;
//! * [`metrics`] — collector-wide observability counters, gauges and
//!   latency histograms (`critlock-obs`), served Prometheus-style by the
//!   `--metrics` endpoint;
//! * [`faults`] — the deterministic fault-injection wrapper applying
//!   `critlock_trace::FaultPlan`s to the client transport (and, via
//!   `CollectorConfig::forward_fault_plan`, to the rollup-push wire);
//! * [`outbox`] — the durable forward spool a failed rollup push falls
//!   back to, re-forwarded after a restart;
//! * [`health`] — the ok/degraded/unhealthy classification served for
//!   `health` requests and consumed by `critlock health`.
//!
//! ```no_run
//! use critlock_collector::{start, Addr, CollectorConfig};
//!
//! let mut config = CollectorConfig::new(Addr::parse("127.0.0.1:0").unwrap());
//! config.status_addr = Some(Addr::parse("127.0.0.1:0").unwrap());
//! let handle = start(config).unwrap();
//! println!("ingest on {}", handle.ingest_addr());
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assembler;
pub mod checkpoint;
pub mod client;
pub mod faults;
pub mod health;
pub mod io;
pub mod journal;
pub mod metrics;
pub mod net;
pub mod outbox;
pub mod queue;
pub mod server;
pub mod snapshot;

pub use assembler::{repair, SessionAssembler};
pub use client::{
    fetch_health, fetch_health_text, fetch_metrics_text, fetch_rollup, fetch_status,
    fetch_status_text, fetch_status_text_timeout, fetch_status_timeout, push, push_rollup,
    push_rollup_with, push_with, PushOptions,
};
pub use faults::{FaultState, FaultStream};
pub use health::{HealthClass, HealthReport};
pub use io::{DiskBudget, DiskFaultPlan, FaultyIo, JournalIo, RealIo};
pub use journal::{recover_dir, JournalOptions, RecoveredSession, SessionJournal};
pub use metrics::{CollectorMetrics, JournalCounters, ShardMetrics};
pub use net::{Addr, Listener, Stream};
pub use queue::{Backpressure, FrameQueue};
pub use server::{start, CollectorConfig, CollectorHandle};
pub use snapshot::{CollectorStatus, ForwardStatus, SessionSnapshot, ShardStatus};

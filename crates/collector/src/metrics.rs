//! Collector-wide observability: every subsystem's metric handles in one
//! place, backed by a [`MetricsRegistry`].
//!
//! Naming scheme: `critlock_<noun>[_<qualifier>]_total` for monotonic
//! counters, `critlock_<noun>` for gauges, `critlock_<noun>_ns` for
//! latency histograms (nanosecond buckets). Every handle is a relaxed
//! atomic; incrementing on the frame path costs one RMW and takes no lock.
//!
//! The frame counters are designed to satisfy a conservation law (checked
//! by the `metrics` integration tests): every frame decoded from a socket
//! is accounted to exactly one fate, so
//!
//! ```text
//! frames_in_total == frames_assembled_total      (queued for analysis)
//!                  + frames_replayed_total       (duplicate of a resume overlap)
//!                  + frames_gap_rejected_total   (producer skipped ahead)
//!                  + frames_quota_dropped_total  (byte quota tripped)
//!                  + frames_queue_dropped_total  (Drop backpressure / closed queue)
//! ```

use critlock_obs::{Counter, Gauge, Histogram, MetricsRegistry, DEFAULT_LATENCY_BOUNDS_NS};

/// The journal-facing subset of the collector metrics, threaded into
/// [`crate::journal::SessionJournal`] so append/sync accounting lives
/// where the I/O happens.
#[derive(Debug, Clone)]
pub struct JournalCounters {
    /// Successful frame appends.
    pub appends: Counter,
    /// Failed appends (the session degrades to unjournaled).
    pub append_failures: Counter,
    /// Explicit fsyncs.
    pub syncs: Counter,
    /// Every journal I/O failure: failed appends, syncs, header writes,
    /// rotations — the single counter alerting should watch.
    pub errors: Counter,
    /// Segment rotations (a full segment was closed and a new one opened).
    pub rotations: Counter,
}

/// Per-shard metric handles, one set per ingestion shard, registered as
/// labelled series (`critlock_shard_sessions_total{shard="3"}`) so a
/// scrape shows the fleet split alongside the collector-wide totals.
/// Shard counters are the *source of truth* for the per-shard status
/// lines: the status endpoint reads them back with [`Counter::get`].
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Sessions accepted (or recovered) into this shard.
    pub sessions_total: Counter,
    /// Connections on this shard severed by the idle timeout.
    pub sessions_timed_out: Counter,
    /// Reconnections that resumed one of this shard's sessions.
    pub sessions_resumed: Counter,
    /// Sessions recovered into this shard from journals at startup.
    pub sessions_recovered: Counter,
    /// Connections shed by this shard's admission cap.
    pub sessions_shed: Counter,
    /// Sessions on this shard stopped by the byte quota.
    pub sessions_quota_stopped: Counter,
    /// Analysis worker panics caught on this shard (each one quarantines
    /// the poisoned session).
    pub worker_panics: Counter,
    /// Sessions currently tracked by this shard (scrape-time gauge).
    pub sessions_active: Gauge,
    /// Frames currently queued across this shard's sessions.
    pub queue_depth: Gauge,
    /// Deepest any of this shard's session queues has ever been.
    pub queue_high_water: Gauge,
}

/// Handles for every metric the collector maintains. Cloning is cheap
/// (shared atomics) — each session holds a clone.
#[derive(Debug, Clone)]
pub struct CollectorMetrics {
    /// The registry behind the handles; renders the scrape text.
    pub registry: MetricsRegistry,

    /// Frames decoded off sockets (before any admission decision).
    pub frames_in: Counter,
    /// Frames accepted into a session queue for assembly.
    pub frames_assembled: Counter,
    /// Duplicate frames skipped during a resume replay overlap.
    pub frames_replayed: Counter,
    /// Frames rejected because the producer skipped ahead of the
    /// acknowledged sequence (connection is severed).
    pub frames_gap_rejected: Counter,
    /// Frames discarded because the session crossed its byte quota.
    pub frames_quota_dropped: Counter,
    /// Frames dropped by `Drop` backpressure or a closed queue.
    pub frames_queue_dropped: Counter,
    /// Connections ended by a frame CRC / decode failure.
    pub frames_crc_failed: Counter,
    /// Frame-payload bytes ingested.
    pub bytes_in: Counter,
    /// Events carried by assembled frames (before budget truncation).
    pub events_in: Counter,
    /// Events tail-truncated by the per-session event budget.
    pub events_budget_dropped: Counter,

    /// Sessions started (accepted or recovered) over the collector's life.
    pub sessions_started: Counter,
    /// Connections rejected at the handshake.
    pub sessions_rejected: Counter,
    /// Connections severed by the idle timeout.
    pub sessions_timed_out: Counter,
    /// Reconnections that resumed an existing session.
    pub sessions_resumed: Counter,
    /// Sessions recovered from write-ahead journals at startup.
    pub sessions_recovered: Counter,
    /// Connections shed by admission control.
    pub sessions_shed: Counter,
    /// Sessions stopped by the byte quota.
    pub sessions_quota_stopped: Counter,
    /// Analysis worker panics caught collector-wide.
    pub worker_panics: Counter,
    /// Currently tracked sessions (scrape-time gauge).
    pub sessions_active: Gauge,

    /// Total frames currently queued across sessions (scrape-time gauge).
    pub queue_depth: Gauge,
    /// Deepest any session queue has ever been (scrape-time gauge).
    pub queue_high_water: Gauge,

    /// Successful journal appends.
    pub journal_appends: Counter,
    /// Failed journal appends.
    pub journal_append_failures: Counter,
    /// Journal fsyncs.
    pub journal_syncs: Counter,
    /// Every journal I/O failure (appends, syncs, header writes, rotations).
    pub journal_errors: Counter,
    /// Journal segment rotations.
    pub journal_rotations: Counter,
    /// Journal segments pruned after being fully absorbed by a checkpoint.
    pub journal_segments_pruned: Counter,
    /// Frames replayed out of journals during startup recovery.
    pub journal_frames_recovered: Counter,
    /// Sessions currently running without a journal because of disk
    /// pressure (scrape-time gauge).
    pub journal_degraded_sessions: Gauge,
    /// Bytes of durable state (journals, checkpoints, outbox) charged to
    /// the collector's disk budget (scrape-time gauge).
    pub journal_disk_used_bytes: Gauge,
    /// Durable checkpoints written successfully.
    pub checkpoint_writes: Counter,
    /// Checkpoint write attempts that failed (journal stays authoritative).
    pub checkpoint_failures: Counter,
    /// Sessions restored from a checkpoint (instead of full journal replay)
    /// at startup.
    pub checkpoint_recoveries: Counter,

    /// Successful rollup pushes to the parent collector.
    pub forward_pushes: Counter,
    /// Failed rollup push attempts (primary or fallback).
    pub forward_failures: Counter,
    /// Seconds since the forwarder's last successful push (scrape-time
    /// gauge; 0 until the first success).
    pub forward_last_success_seconds: Gauge,

    /// Full snapshot recomputations (repair + analysis).
    pub snapshot_refreshes: Counter,
    /// Snapshot refreshes skipped because no new frame arrived.
    pub snapshot_skips: Counter,
    /// Latency of full snapshot recomputations.
    pub snapshot_refresh_ns: Histogram,
}

impl Default for CollectorMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectorMetrics {
    /// Builds a fresh registry with every collector metric registered.
    pub fn new() -> Self {
        let r = MetricsRegistry::new();
        CollectorMetrics {
            frames_in: r
                .counter("critlock_frames_in_total", "Frames decoded from producer sockets"),
            frames_assembled: r.counter(
                "critlock_frames_assembled_total",
                "Frames accepted into a session queue for assembly",
            ),
            frames_replayed: r.counter(
                "critlock_frames_replayed_total",
                "Duplicate frames skipped during resume replay",
            ),
            frames_gap_rejected: r.counter(
                "critlock_frames_gap_rejected_total",
                "Frames rejected because the producer skipped ahead of the acked sequence",
            ),
            frames_quota_dropped: r.counter(
                "critlock_frames_quota_dropped_total",
                "Frames discarded by the per-session byte quota",
            ),
            frames_queue_dropped: r.counter(
                "critlock_frames_queue_dropped_total",
                "Frames dropped by Drop backpressure or a closed queue",
            ),
            frames_crc_failed: r.counter(
                "critlock_frames_crc_failed_total",
                "Connections ended by a frame CRC or decode failure",
            ),
            bytes_in: r.counter("critlock_bytes_in_total", "Frame-payload bytes ingested"),
            events_in: r.counter(
                "critlock_events_in_total",
                "Events carried by assembled frames, before budget truncation",
            ),
            events_budget_dropped: r.counter(
                "critlock_events_budget_dropped_total",
                "Events tail-truncated by the per-session event budget",
            ),
            sessions_started: r.counter(
                "critlock_sessions_started_total",
                "Sessions accepted or recovered over the collector's lifetime",
            ),
            sessions_rejected: r.counter(
                "critlock_sessions_rejected_total",
                "Connections rejected at the handshake",
            ),
            sessions_timed_out: r.counter(
                "critlock_sessions_timed_out_total",
                "Connections severed by the idle timeout",
            ),
            sessions_resumed: r.counter(
                "critlock_sessions_resumed_total",
                "Reconnections that resumed an existing session by token",
            ),
            sessions_recovered: r.counter(
                "critlock_sessions_recovered_total",
                "Sessions recovered from write-ahead journals at startup",
            ),
            sessions_shed: r
                .counter("critlock_sessions_shed_total", "Connections shed by admission control"),
            sessions_quota_stopped: r.counter(
                "critlock_sessions_quota_stopped_total",
                "Sessions whose ingest was stopped by the byte quota",
            ),
            worker_panics: r.counter(
                "critlock_worker_panics_total",
                "Analysis worker panics caught; each quarantines the poisoned session",
            ),
            sessions_active: r.gauge("critlock_sessions_active", "Currently tracked sessions"),
            queue_depth: r
                .gauge("critlock_queue_depth", "Frames currently queued across all sessions"),
            queue_high_water: r
                .gauge("critlock_queue_high_water", "Deepest any session queue has ever been"),
            journal_appends: r.counter(
                "critlock_journal_appends_total",
                "Successful write-ahead journal appends",
            ),
            journal_append_failures: r.counter(
                "critlock_journal_append_failures_total",
                "Failed journal appends (session degrades to unjournaled)",
            ),
            journal_syncs: r.counter("critlock_journal_syncs_total", "Journal fsyncs"),
            journal_errors: r.counter(
                "critlock_journal_errors_total",
                "Journal I/O failures of any kind (appends, syncs, header writes, rotations)",
            ),
            journal_rotations: r.counter(
                "critlock_journal_rotations_total",
                "Journal segment rotations (full segment closed, new one opened)",
            ),
            journal_segments_pruned: r.counter(
                "critlock_journal_segments_pruned_total",
                "Journal segments deleted after being fully absorbed by a checkpoint",
            ),
            journal_frames_recovered: r.counter(
                "critlock_journal_frames_recovered_total",
                "Frames replayed out of journals during startup recovery",
            ),
            journal_degraded_sessions: r.gauge(
                "critlock_journal_degraded_sessions",
                "Sessions currently ingesting without a journal because of disk pressure",
            ),
            journal_disk_used_bytes: r.gauge(
                "critlock_journal_disk_used_bytes",
                "Bytes of durable state (journals, checkpoints, outbox) on the disk budget",
            ),
            checkpoint_writes: r.counter(
                "critlock_checkpoint_writes_total",
                "Durable session checkpoints written successfully",
            ),
            checkpoint_failures: r.counter(
                "critlock_checkpoint_failures_total",
                "Checkpoint write attempts that failed (journal stays authoritative)",
            ),
            checkpoint_recoveries: r.counter(
                "critlock_checkpoint_recoveries_total",
                "Sessions restored from a checkpoint instead of full journal replay",
            ),
            forward_pushes: r.counter(
                "critlock_forward_pushes_total",
                "Successful rollup pushes to the parent collector",
            ),
            forward_failures: r.counter(
                "critlock_forward_failures_total",
                "Failed rollup push attempts (primary or fallback parent)",
            ),
            forward_last_success_seconds: r.gauge(
                "critlock_forward_last_success_seconds",
                "Seconds since the last successful rollup push (0 before the first)",
            ),
            snapshot_refreshes: r.counter(
                "critlock_snapshot_refreshes_total",
                "Full snapshot recomputations (repair + analysis)",
            ),
            snapshot_skips: r.counter(
                "critlock_snapshot_skips_total",
                "Snapshot refreshes skipped because no new frame arrived",
            ),
            snapshot_refresh_ns: r.histogram(
                "critlock_snapshot_refresh_ns",
                "Latency of full snapshot recomputations, nanoseconds",
                DEFAULT_LATENCY_BOUNDS_NS,
            ),
            registry: r,
        }
    }

    /// Register (or re-attach to) the labelled metric set for shard
    /// `index`. Label values make series names unique, so calling this
    /// twice for the same index yields handles on the same atomics.
    pub fn shard(&self, index: usize) -> ShardMetrics {
        let r = &self.registry;
        let idx = index.to_string();
        let labels: &[(&str, &str)] = &[("shard", idx.as_str())];
        ShardMetrics {
            sessions_total: r.counter_with(
                "critlock_shard_sessions_total",
                labels,
                "Sessions accepted or recovered, by ingestion shard",
            ),
            sessions_timed_out: r.counter_with(
                "critlock_shard_sessions_timed_out_total",
                labels,
                "Connections severed by the idle timeout, by ingestion shard",
            ),
            sessions_resumed: r.counter_with(
                "critlock_shard_sessions_resumed_total",
                labels,
                "Reconnections that resumed a session, by ingestion shard",
            ),
            sessions_recovered: r.counter_with(
                "critlock_shard_sessions_recovered_total",
                labels,
                "Sessions recovered from journals at startup, by ingestion shard",
            ),
            sessions_shed: r.counter_with(
                "critlock_shard_sessions_shed_total",
                labels,
                "Connections shed by the per-shard admission cap",
            ),
            sessions_quota_stopped: r.counter_with(
                "critlock_shard_sessions_quota_stopped_total",
                labels,
                "Sessions stopped by the byte quota, by ingestion shard",
            ),
            worker_panics: r.counter_with(
                "critlock_shard_worker_panics_total",
                labels,
                "Analysis worker panics caught, by ingestion shard",
            ),
            sessions_active: r.gauge_with(
                "critlock_shard_sessions_active",
                labels,
                "Currently tracked sessions, by ingestion shard",
            ),
            queue_depth: r.gauge_with(
                "critlock_shard_queue_depth",
                labels,
                "Frames currently queued, by ingestion shard",
            ),
            queue_high_water: r.gauge_with(
                "critlock_shard_queue_high_water",
                labels,
                "Deepest any session queue has ever been, by ingestion shard",
            ),
        }
    }

    /// The journal-facing counter subset.
    pub fn journal_counters(&self) -> JournalCounters {
        JournalCounters {
            appends: self.journal_appends.clone(),
            append_failures: self.journal_append_failures.clone(),
            syncs: self.journal_syncs.clone(),
            errors: self.journal_errors.clone(),
            rotations: self.journal_rotations.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_frame_conservation_counters() {
        let m = CollectorMetrics::new();
        m.frames_in.add(10);
        m.frames_assembled.add(7);
        m.frames_replayed.add(1);
        m.frames_gap_rejected.add(1);
        m.frames_quota_dropped.inc();
        let snap = m.registry.snapshot();
        let get = |n: &str| snap.counter(n).unwrap();
        assert_eq!(
            get("critlock_frames_in_total"),
            get("critlock_frames_assembled_total")
                + get("critlock_frames_replayed_total")
                + get("critlock_frames_gap_rejected_total")
                + get("critlock_frames_quota_dropped_total")
                + get("critlock_frames_queue_dropped_total")
        );
    }

    #[test]
    fn scrape_text_contains_every_section() {
        let m = CollectorMetrics::new();
        m.snapshot_refresh_ns.observe(5_000);
        let text = m.registry.render_prometheus();
        assert!(text.contains("# TYPE critlock_frames_in_total counter"));
        assert!(text.contains("# TYPE critlock_queue_depth gauge"));
        assert!(text.contains("# TYPE critlock_snapshot_refresh_ns histogram"));
        assert!(text.contains("critlock_snapshot_refresh_ns_count 1"));
    }
}

//! Transport abstraction: Unix-domain or TCP sockets behind one address
//! syntax.
//!
//! Addresses are written `unix:/path/to.sock` for Unix-domain sockets and
//! `host:port` for TCP. Unix-domain support is compiled only on Unix;
//! elsewhere `unix:` addresses fail with a clear error at parse time.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// A parsed collector address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// `unix:/path/to.sock`
    Unix(PathBuf),
    /// `host:port`
    Tcp(String),
}

impl Addr {
    /// Parse `unix:PATH` or `host:port`.
    pub fn parse(s: &str) -> io::Result<Addr> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "empty unix socket path (expected unix:/path/to.sock)",
                ));
            }
            if cfg!(unix) {
                Ok(Addr::Unix(PathBuf::from(path)))
            } else {
                Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix-domain sockets are not supported on this platform",
                ))
            }
        } else if s.contains(':') {
            Ok(Addr::Tcp(s.to_string()))
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("address {s:?} is neither unix:PATH nor host:port"),
            ))
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Unix(path) => write!(f, "unix:{}", path.display()),
            Addr::Tcp(hostport) => write!(f, "{hostport}"),
        }
    }
}

/// A bound listener on either transport.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener; the path is kept for unlink-on-drop.
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Bind the address. For Unix sockets a stale socket file from a
    /// previous run is removed first.
    pub fn bind(addr: &Addr) -> io::Result<Listener> {
        match addr {
            Addr::Tcp(hostport) => Ok(Listener::Tcp(TcpListener::bind(hostport.as_str())?)),
            #[cfg(unix)]
            Addr::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            #[cfg(not(unix))]
            Addr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not supported on this platform",
            )),
        }
    }

    /// Accept one connection; returns the stream and a peer description.
    pub fn accept(&self) -> io::Result<(Stream, String)> {
        match self {
            Listener::Tcp(l) => {
                let (stream, peer) = l.accept()?;
                Ok((Stream::Tcp(stream), peer.to_string()))
            }
            #[cfg(unix)]
            Listener::Unix(l, path) => {
                let (stream, _) = l.accept()?;
                Ok((Stream::Unix(stream), format!("unix:{}", path.display())))
            }
        }
    }

    /// The actually bound address — resolves `:0` TCP binds to the
    /// ephemeral port the OS picked.
    pub fn bound_addr(&self) -> io::Result<Addr> {
        match self {
            Listener::Tcp(l) => Ok(Addr::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(Addr::Unix(path.clone())),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected stream on either transport.
pub enum Stream {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Connect to a collector address.
    pub fn connect(addr: &Addr) -> io::Result<Stream> {
        match addr {
            Addr::Tcp(hostport) => Ok(Stream::Tcp(TcpStream::connect(hostport.as_str())?)),
            #[cfg(unix)]
            Addr::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Addr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not supported on this platform",
            )),
        }
    }

    /// Connect with a bound on how long connection establishment may
    /// take. For TCP the bound applies per resolved address; Unix-domain
    /// connects either succeed or fail immediately, so the timeout is
    /// moot there.
    pub fn connect_timeout(addr: &Addr, timeout: std::time::Duration) -> io::Result<Stream> {
        match addr {
            Addr::Tcp(hostport) => {
                use std::net::ToSocketAddrs;
                let mut last = None;
                for sockaddr in hostport.as_str().to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sockaddr, timeout) {
                        Ok(s) => return Ok(Stream::Tcp(s)),
                        Err(e) => last = Some(e),
                    }
                }
                Err(last.unwrap_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("address {hostport:?} resolved to nothing"),
                    )
                }))
            }
            Addr::Unix(_) => Self::connect(addr),
        }
    }

    /// Shut down the write half, signalling end-of-stream to the peer.
    pub fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }

    /// Shut down both halves, dropping any in-flight data.
    pub fn shutdown_both(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }

    /// Clone the underlying socket handle (reads and writes on the clone
    /// share the same connection) — used by the collector to answer acks
    /// on a connection whose read half is owned by the frame decoder.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
        }
    }

    /// Bound how long a blocked read may wait. `None` restores blocking
    /// reads.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Bound how long a blocked write may wait. `None` restores blocking
    /// writes.
    pub fn set_write_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_write_timeout(timeout),
        }
    }

    /// Whether an I/O error kind is a read-timeout expiry (the platforms
    /// disagree: Unix reports `WouldBlock`, Windows `TimedOut`).
    pub fn is_timeout(err: &io::Error) -> bool {
        matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tcp_and_unix_addresses() {
        assert_eq!(Addr::parse("127.0.0.1:9000").unwrap(), Addr::Tcp("127.0.0.1:9000".into()));
        #[cfg(unix)]
        assert_eq!(Addr::parse("unix:/tmp/x.sock").unwrap(), Addr::Unix("/tmp/x.sock".into()));
        assert!(Addr::parse("no-port-here").is_err());
        assert!(Addr::parse("unix:").is_err());
    }

    #[test]
    fn tcp_roundtrip_on_ephemeral_port() {
        let listener = Listener::bind(&Addr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.bound_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = Stream::connect(&addr).unwrap();
            s.write_all(b"ping").unwrap();
            s.shutdown_write().unwrap();
        });
        let (mut stream, _peer) = listener.accept().unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"ping");
        writer.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_roundtrip_and_stale_socket_cleanup() {
        let dir = std::env::temp_dir().join(format!("critlock-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sock");
        std::fs::write(&path, b"stale").unwrap(); // stale file must not break bind
        let addr = Addr::Unix(path.clone());
        let listener = Listener::bind(&addr).unwrap();
        let addr2 = addr.clone();
        let writer = std::thread::spawn(move || {
            let mut s = Stream::connect(&addr2).unwrap();
            s.write_all(b"pong").unwrap();
        });
        let (mut stream, _peer) = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        stream.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
        writer.join().unwrap();
        drop(listener);
        assert!(!path.exists(), "socket file must be unlinked on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The durable forward spool: `<journal_dir>/outbox.clag`.
//!
//! Whenever a rollup push to the parent fails (including the bounded
//! shutdown flush), the forwarder persists the rollup it tried to send
//! here, so a child that dies with its parent unreachable loses nothing:
//! a restarted collector merges the spool back into its rollup state and
//! re-forwards it, and `critlock aggregate <journal-dir>` ingests an
//! orphaned spool directly (the CLAG merge is idempotent, so a spool
//! that was in fact delivered is harmless to ingest again).
//!
//! The spool is replaced **atomically**: the new document is written to
//! `outbox.clag.tmp`, fsynced, and renamed over the old spool. A crash
//! at any byte leaves either the previous spool or the new one on disk,
//! never a torn file — and the CLAG CRC framing rejects any other
//! corruption at load time, so a reader never observes a torn rollup.

use critlock_trace::rollup::Rollup;
use std::io;
use std::path::{Path, PathBuf};

/// File name of the spool inside the journal directory.
pub const OUTBOX_FILE: &str = "outbox.clag";

/// Where the spool lives under `dir`.
pub fn outbox_path(dir: &Path) -> PathBuf {
    dir.join(OUTBOX_FILE)
}

/// Atomically replace the spool with `rollup`: write-to-temp, fsync,
/// rename. The rename is the commit point.
pub fn save(dir: &Path, rollup: &Rollup) -> io::Result<()> {
    let tmp = dir.join("outbox.clag.tmp");
    rollup.save(&tmp).map_err(to_io)?;
    std::fs::rename(&tmp, outbox_path(dir))
}

/// Load the spooled rollup, if a spool exists and decodes. A spool that
/// fails the CLAG framing or CRC (disk corruption — atomic replacement
/// never produces one) is treated as absent rather than fatal: the
/// collector starts and the bad file is left in place for inspection.
pub fn load(dir: &Path) -> Option<Rollup> {
    let path = outbox_path(dir);
    if !path.exists() {
        return None;
    }
    Rollup::load(&path).ok()
}

/// Remove the spool after a successful push delivered a rollup at least
/// as fresh as the spooled one. Missing files are fine (never spooled,
/// or already cleared).
pub fn clear(dir: &Path) -> io::Result<()> {
    match std::fs::remove_file(outbox_path(dir)) {
        Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
        _ => Ok(()),
    }
}

fn to_io(e: critlock_trace::TraceError) -> io::Error {
    match e {
        critlock_trace::TraceError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

//! The durable forward spool: `<journal_dir>/outbox.clag`.
//!
//! Whenever a rollup push to the parent fails (including the bounded
//! shutdown flush), the forwarder persists the rollup it tried to send
//! here, so a child that dies with its parent unreachable loses nothing:
//! a restarted collector merges the spool back into its rollup state and
//! re-forwards it, and `critlock aggregate <journal-dir>` ingests an
//! orphaned spool directly (the CLAG merge is idempotent, so a spool
//! that was in fact delivered is harmless to ingest again).
//!
//! The spool is replaced **atomically**: the new document is written to
//! `outbox.clag.tmp`, fsynced, and renamed over the old spool; the
//! directory is fsynced after the rename so the new name itself survives
//! a power cut. A crash at any byte leaves either the previous spool or
//! the new one on disk, never a torn file — and the CLAG CRC framing
//! rejects any other corruption at load time, so a reader never observes
//! a torn rollup. All writes go through the injectable [`JournalIo`]
//! layer and are charged to the collector's [`DiskBudget`], so the chaos
//! suite can fault the spool path and a quota-bounded collector accounts
//! for its spool bytes.

use crate::io::{DiskBudget, JournalIo, RealIo};
use critlock_trace::rollup::Rollup;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File name of the spool inside the journal directory.
pub const OUTBOX_FILE: &str = "outbox.clag";

/// Where the spool lives under `dir`.
pub fn outbox_path(dir: &Path) -> PathBuf {
    dir.join(OUTBOX_FILE)
}

fn tmp_path(dir: &Path) -> PathBuf {
    dir.join("outbox.clag.tmp")
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Atomically replace the spool with `rollup`: write-to-temp, fsync,
/// rename, fsync the directory. The rename is the commit point.
pub fn save(dir: &Path, rollup: &Rollup) -> io::Result<()> {
    save_with(&RealIo, &DiskBudget::unlimited(), dir, rollup)
}

/// [`save`] through an explicit I/O layer and disk budget. The spool is
/// written even when it pushes the budget over its limit: losing the
/// rollup outright is strictly worse than transiently overshooting the
/// quota, and the overshoot is bounded by one rollup document.
pub fn save_with(
    io: &dyn JournalIo,
    budget: &DiskBudget,
    dir: &Path,
    rollup: &Rollup,
) -> io::Result<()> {
    let bytes = rollup.to_bytes();
    let tmp = tmp_path(dir);
    // A leftover tmp from an earlier failed attempt is about to be
    // truncated; return its bytes so accounting can't drift upward.
    budget.release(file_len(&tmp));
    let mut file = budget.track(io.create(&tmp)?, None);
    file.write_all(&bytes)?;
    file.flush()?;
    file.sync_data()?;
    drop(file);
    let final_path = outbox_path(dir);
    let old_len = file_len(&final_path);
    io.rename(&tmp, &final_path)?;
    io.sync_dir(dir)?;
    budget.release(old_len);
    Ok(())
}

/// Load the spooled rollup, if a spool exists and decodes. A spool that
/// fails the CLAG framing or CRC (disk corruption — atomic replacement
/// never produces one) is treated as absent rather than fatal: the
/// collector starts and the bad file is left in place for inspection.
pub fn load(dir: &Path) -> Option<Rollup> {
    let path = outbox_path(dir);
    if !path.exists() {
        return None;
    }
    Rollup::load(&path).ok()
}

/// Remove the spool after a successful push delivered a rollup at least
/// as fresh as the spooled one. Missing files are fine (never spooled,
/// or already cleared).
pub fn clear(dir: &Path) -> io::Result<()> {
    clear_with(&RealIo, &DiskBudget::unlimited(), dir)
}

/// [`clear`] through an explicit I/O layer, returning the spool's bytes
/// to `budget`.
pub fn clear_with(io: &dyn JournalIo, budget: &DiskBudget, dir: &Path) -> io::Result<()> {
    let path = outbox_path(dir);
    let len = file_len(&path);
    match io.remove_file(&path) {
        Ok(()) => {
            budget.release(len);
            let _ = io.sync_dir(dir);
            Ok(())
        }
        Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
        _ => Ok(()),
    }
}

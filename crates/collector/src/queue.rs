//! Bounded per-session frame queues with configurable backpressure.
//!
//! Socket reader threads push validated raw frames (wire bytes, see
//! [`RawFrame`]); the analysis loop drains them and decodes lazily. When
//! a queue fills, the configured [`Backpressure`] policy decides whether
//! the producer blocks (propagating pressure through the TCP window back
//! to the instrumented process) or the frame is counted and dropped
//! (bounding producer latency at the cost of a lossy trace).

use critlock_trace::stream::RawFrame;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// What to do when a session's frame queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the producer until the analysis loop drains the queue.
    Block,
    /// Drop the incoming frame and increment the session's drop counter.
    Drop,
}

struct Inner {
    frames: VecDeque<RawFrame>,
    closed: bool,
}

/// A bounded MPSC frame queue between one session's socket reader and the
/// analysis loop.
pub struct FrameQueue {
    inner: Mutex<Inner>,
    not_full: Condvar,
    capacity: usize,
    policy: Backpressure,
    dropped: AtomicU64,
    pushed: AtomicU64,
    high_water: AtomicU64,
}

impl FrameQueue {
    /// A queue holding at most `capacity` frames, governed by `policy`.
    pub fn new(capacity: usize, policy: Backpressure) -> Self {
        FrameQueue {
            inner: Mutex::new(Inner { frames: VecDeque::new(), closed: false }),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            policy,
            dropped: AtomicU64::new(0),
            pushed: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// Enqueue a frame. Under [`Backpressure::Block`] this waits for
    /// space; under [`Backpressure::Drop`] a frame that finds the queue
    /// full is discarded and counted. Returns `false` iff the frame was
    /// dropped (or the queue is closed).
    pub fn push(&self, frame: RawFrame) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if inner.closed {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            if inner.frames.len() < self.capacity {
                inner.frames.push_back(frame);
                self.pushed.fetch_add(1, Ordering::Relaxed);
                self.high_water.fetch_max(inner.frames.len() as u64, Ordering::Relaxed);
                return true;
            }
            self.high_water.fetch_max(self.capacity as u64, Ordering::Relaxed);
            match self.policy {
                Backpressure::Block => {
                    inner = self.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
                Backpressure::Drop => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
    }

    /// Take every queued frame (non-blocking) and wake blocked producers.
    pub fn drain(&self) -> Vec<RawFrame> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let drained: Vec<RawFrame> = inner.frames.drain(..).collect();
        drop(inner);
        if !drained.is_empty() {
            self.not_full.notify_all();
        }
        drained
    }

    /// Mark the queue closed (producer disconnected or daemon shutting
    /// down) and wake any blocked producer.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.not_full.notify_all();
    }

    /// Current number of queued frames.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).frames.len()
    }

    /// Frames dropped so far under the [`Backpressure::Drop`] policy.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Frames accepted so far.
    pub fn accepted(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Deepest the queue has ever been — pressure stays observable even
    /// after the analysis loop drains the frames.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn end() -> RawFrame {
        RawFrame::encode(&critlock_trace::stream::Frame::End).unwrap()
    }

    #[test]
    fn drop_policy_counts_overflow() {
        let q = FrameQueue::new(2, Backpressure::Drop);
        assert!(q.push(end()));
        assert!(q.push(end()));
        assert!(!q.push(end()));
        assert!(!q.push(end()));
        assert_eq!(q.dropped(), 2);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.drain().len(), 2);
        assert!(q.push(end()));
        assert_eq!(q.accepted(), 3);
    }

    #[test]
    fn block_policy_waits_for_drain() {
        let q = Arc::new(FrameQueue::new(1, Backpressure::Block));
        assert!(q.push(end()));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(end()));
        std::thread::sleep(Duration::from_millis(20));
        assert!(!producer.is_finished(), "producer must block on a full queue");
        assert_eq!(q.drain().len(), 1);
        assert!(producer.join().unwrap());
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    fn close_unblocks_producer() {
        let q = Arc::new(FrameQueue::new(1, Backpressure::Block));
        assert!(q.push(end()));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(end()));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(!producer.join().unwrap());
    }
}

//! The collector daemon: sharded session ingestion plus the incremental
//! analysis loop and the status endpoint.
//!
//! Thread layout:
//!
//! * one *ingest accept* thread hands each new connection to a dedicated
//!   *session reader* thread, which performs the stream handshake
//!   (magic + protocol version) and then decodes frames into that
//!   session's bounded [`FrameQueue`];
//! * one *analysis* thread periodically drains every session's queue into
//!   its [`SessionAssembler`] and republishes [`SessionSnapshot`]s at the
//!   configured interval;
//! * an optional *status* thread answers `status` / `status json`
//!   one-shot requests, refreshing dirty sessions on demand so a request
//!   issued after a push completed always sees the final analysis.
//!
//! Backpressure is per session: `Block` parks the reader thread on the
//! full queue, which stops it draining the socket, which closes the TCP
//! window (or fills the Unix socket buffer) back to the producer; `Drop`
//! discards the frame and counts it, which the repair pass in
//! [`crate::assembler`] is designed to absorb.

use crate::assembler::SessionAssembler;
use crate::net::{Addr, Listener, Stream};
use crate::queue::{Backpressure, FrameQueue};
use crate::snapshot::{CollectorStatus, SessionSnapshot};
use critlock_trace::stream::{StreamReader, STREAM_VERSION};
use critlock_trace::Trace;
use std::io::{self, BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a collector daemon.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Address producers stream frames to.
    pub ingest_addr: Addr,
    /// Address the status endpoint listens on, if any.
    pub status_addr: Option<Addr>,
    /// Bounded per-session queue capacity, in frames.
    pub queue_capacity: usize,
    /// What to do when a session's queue is full.
    pub backpressure: Backpressure,
    /// How often the analysis loop republishes snapshots.
    pub snapshot_interval: Duration,
    /// How often the analysis loop polls session queues.
    pub poll_interval: Duration,
}

impl CollectorConfig {
    /// A config with defaults suitable for tests and local profiling:
    /// 256-frame queues, blocking backpressure, 200 ms snapshots.
    pub fn new(ingest_addr: Addr) -> Self {
        CollectorConfig {
            ingest_addr,
            status_addr: None,
            queue_capacity: 256,
            backpressure: Backpressure::Block,
            snapshot_interval: Duration::from_millis(200),
            poll_interval: Duration::from_millis(5),
        }
    }
}

/// One producer connection's state, shared between its reader thread, the
/// analysis loop and the status endpoint.
struct SessionState {
    id: u64,
    peer: String,
    queue: FrameQueue,
    asm: Mutex<SessionAssembler>,
    /// Set when frames were applied since the last snapshot.
    dirty: AtomicBool,
    snapshot: Mutex<Option<SessionSnapshot>>,
}

impl SessionState {
    /// Drain the queue into the assembler. Returns whether anything new
    /// arrived. The assembler lock is taken *before* draining so that
    /// concurrent callers (analysis loop, status endpoint) cannot apply
    /// drained batches out of order.
    fn apply_pending(&self) -> bool {
        let mut asm = self.asm.lock().unwrap_or_else(|e| e.into_inner());
        let frames = self.queue.drain();
        if frames.is_empty() {
            return false;
        }
        for frame in frames {
            asm.apply(frame);
        }
        drop(asm);
        self.dirty.store(true, Ordering::Release);
        true
    }

    /// Recompute and publish this session's snapshot.
    fn refresh_snapshot(&self) -> SessionSnapshot {
        let asm = self.asm.lock().unwrap_or_else(|e| e.into_inner());
        let snap = SessionSnapshot::compute(
            self.id,
            self.peer.clone(),
            &asm,
            self.queue.depth() as u64,
            self.queue.high_water(),
            self.queue.dropped(),
        );
        drop(asm);
        self.dirty.store(false, Ordering::Release);
        *self.snapshot.lock().unwrap_or_else(|e| e.into_inner()) = Some(snap.clone());
        snap
    }

    /// The latest snapshot, recomputing first if new frames arrived.
    fn current_snapshot(&self) -> SessionSnapshot {
        self.apply_pending();
        if self.dirty.load(Ordering::Acquire) {
            return self.refresh_snapshot();
        }
        let published = self.snapshot.lock().unwrap_or_else(|e| e.into_inner()).clone();
        published.unwrap_or_else(|| self.refresh_snapshot())
    }
}

struct Shared {
    sessions: Mutex<Vec<Arc<SessionState>>>,
    sessions_total: AtomicU64,
    rejected_sessions: AtomicU64,
    shutdown: AtomicBool,
    config: CollectorConfig,
}

impl Shared {
    fn status(&self) -> CollectorStatus {
        let sessions: Vec<Arc<SessionState>> =
            self.sessions.lock().unwrap_or_else(|e| e.into_inner()).clone();
        CollectorStatus {
            protocol_version: STREAM_VERSION,
            sessions_total: self.sessions_total.load(Ordering::Relaxed),
            rejected_sessions: self.rejected_sessions.load(Ordering::Relaxed),
            sessions: sessions.iter().map(|s| s.current_snapshot()).collect(),
        }
    }
}

/// A running collector daemon. Dropping the handle does *not* stop the
/// daemon; call [`CollectorHandle::shutdown`].
pub struct CollectorHandle {
    ingest_addr: Addr,
    status_addr: Option<Addr>,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl CollectorHandle {
    /// The address producers should stream to (ephemeral TCP ports
    /// resolved).
    pub fn ingest_addr(&self) -> &Addr {
        &self.ingest_addr
    }

    /// The bound status address, if a status endpoint was configured.
    pub fn status_addr(&self) -> Option<&Addr> {
        self.status_addr.as_ref()
    }

    /// Compute the current status in-process — the same data the status
    /// socket serves.
    pub fn status(&self) -> CollectorStatus {
        self.shared.status()
    }

    /// The finalized (repaired) trace of a session, if it exists.
    pub fn session_trace(&self, session: u64) -> Option<Trace> {
        let sessions = self.shared.sessions.lock().unwrap_or_else(|e| e.into_inner());
        let state = sessions.iter().find(|s| s.id == session)?.clone();
        drop(sessions);
        state.apply_pending();
        let asm = state.asm.lock().unwrap_or_else(|e| e.into_inner());
        Some(asm.finalize())
    }

    /// Stop accepting connections, finish pending analysis and join the
    /// daemon threads. Sessions still connected are finalized as
    /// disconnects.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock any reader parked on a full queue, then poke the accept
        // loops so they notice the flag.
        for session in self.shared.sessions.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            session.queue.close();
        }
        let _ = Stream::connect(&self.ingest_addr);
        if let Some(addr) = &self.status_addr {
            let _ = Stream::connect(addr);
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// Bind the configured addresses and start the daemon threads.
pub fn start(config: CollectorConfig) -> io::Result<CollectorHandle> {
    let ingest = Listener::bind(&config.ingest_addr)?;
    let ingest_addr = ingest.bound_addr()?;
    let status_listener = match &config.status_addr {
        Some(addr) => Some(Listener::bind(addr)?),
        None => None,
    };
    let status_addr = match &status_listener {
        Some(l) => Some(l.bound_addr()?),
        None => None,
    };

    let shared = Arc::new(Shared {
        sessions: Mutex::new(Vec::new()),
        sessions_total: AtomicU64::new(0),
        rejected_sessions: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        config: config.clone(),
    });

    let mut threads = Vec::new();

    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(ingest, shared)));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || analysis_loop(shared)));
    }
    if let Some(listener) = status_listener {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || status_loop(listener, shared)));
    }

    Ok(CollectorHandle { ingest_addr, status_addr, shared, threads })
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let shared = Arc::clone(&shared);
        // Reader threads are intentionally not joined on shutdown: they
        // exit when their producer disconnects.
        std::thread::spawn(move || session_reader(stream, peer, shared));
    }
}

fn session_reader(stream: Stream, peer: String, shared: Arc<Shared>) {
    // Handshake: magic + version are read here, so an incompatible
    // producer is rejected before a session is created.
    let mut reader = match StreamReader::new(BufReader::new(stream)) {
        Ok(reader) => reader,
        Err(_) => {
            shared.rejected_sessions.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };

    let id = shared.sessions_total.fetch_add(1, Ordering::Relaxed);
    let session = Arc::new(SessionState {
        id,
        peer,
        queue: FrameQueue::new(shared.config.queue_capacity, shared.config.backpressure),
        asm: Mutex::new(SessionAssembler::new()),
        dirty: AtomicBool::new(true),
        snapshot: Mutex::new(None),
    });
    shared.sessions.lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&session));

    // Clean EOF or a decode error both end the session; whatever arrived
    // is finalized by the repair pass.
    while let Ok(Some(frame)) = reader.next_frame() {
        session.queue.push(frame);
    }
    session.dirty.store(true, Ordering::Release);
}

fn analysis_loop(shared: Arc<Shared>) {
    let mut last_publish = Instant::now();
    loop {
        let stopping = shared.shutdown.load(Ordering::Acquire);
        let sessions: Vec<Arc<SessionState>> =
            shared.sessions.lock().unwrap_or_else(|e| e.into_inner()).clone();
        for session in &sessions {
            session.apply_pending();
        }
        if stopping || last_publish.elapsed() >= shared.config.snapshot_interval {
            for session in &sessions {
                if session.dirty.load(Ordering::Acquire) {
                    session.refresh_snapshot();
                }
            }
            last_publish = Instant::now();
        }
        if stopping {
            break;
        }
        std::thread::sleep(shared.config.poll_interval);
    }
}

fn status_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let _ = serve_status_request(stream, &shared);
    }
}

fn serve_status_request(stream: Stream, shared: &Shared) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status = shared.status();
    let reply = match line.trim() {
        "status json" => status.render_json(),
        _ => status.render_text(),
    };
    let mut stream = reader.into_inner();
    stream.write_all(reply.as_bytes())?;
    stream.flush()
}

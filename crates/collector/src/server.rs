//! The collector daemon: sharded session ingestion plus the incremental
//! analysis loop and the status endpoint.
//!
//! Thread layout:
//!
//! * one *ingest accept* thread hands each new connection to a dedicated
//!   *session reader* thread, which performs the stream handshake
//!   (magic + protocol version + resume token) and then decodes frames
//!   into that session's bounded [`FrameQueue`];
//! * one *analysis* thread periodically drains every session's queue into
//!   its [`SessionAssembler`] and republishes [`SessionSnapshot`]s at the
//!   configured interval;
//! * an optional *status* thread answers `status` / `status json`
//!   one-shot requests, refreshing dirty sessions on demand so a request
//!   issued after a push completed always sees the final analysis.
//!
//! Backpressure is per session: `Block` parks the reader thread on the
//! full queue, which stops it draining the socket, which closes the TCP
//! window (or fills the Unix socket buffer) back to the producer; `Drop`
//! discards the frame and counts it, which the repair pass in
//! [`crate::assembler`] is designed to absorb.
//!
//! ## Fault tolerance
//!
//! A producer that announces a non-empty resume token in its handshake
//! gets a **resumable session**: the collector replies with the sequence
//! number of the next frame it expects, so a reconnecting producer
//! replays only the gap, and duplicate frames from a conservative replay
//! are skipped by sequence number. With [`CollectorConfig::idle_timeout`]
//! set, a connection that goes silent is severed and its session is
//! finalized through the ordinary repair pass (it resumes if the producer
//! comes back). With [`CollectorConfig::journal_dir`] set, every accepted
//! frame is appended to a per-session write-ahead journal *before* it is
//! queued (and therefore before it is ever acknowledged), and a restarted
//! collector recovers all journaled sessions — acknowledged frames
//! survive a collector crash.

use crate::assembler::SessionAssembler;
use crate::journal::{self, SessionJournal};
use crate::metrics::CollectorMetrics;
use crate::net::{Addr, Listener, Stream};
use crate::queue::{Backpressure, FrameQueue};
use crate::snapshot::{CollectorStatus, SessionSnapshot};
use critlock_trace::stream::{write_ack, Frame, StreamReader, STREAM_VERSION};
use critlock_trace::{Trace, TraceError};
use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a collector daemon.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Address producers stream frames to.
    pub ingest_addr: Addr,
    /// Address the status endpoint listens on, if any.
    pub status_addr: Option<Addr>,
    /// Address the Prometheus-style metrics endpoint listens on, if any.
    pub metrics_addr: Option<Addr>,
    /// Bounded per-session queue capacity, in frames.
    pub queue_capacity: usize,
    /// What to do when a session's queue is full.
    pub backpressure: Backpressure,
    /// How often the analysis loop republishes snapshots.
    pub snapshot_interval: Duration,
    /// How often the analysis loop polls session queues.
    pub poll_interval: Duration,
    /// Sever a connection when no frame arrives for this long. The
    /// session itself survives — it is finalized by the repair pass and
    /// resumes if its producer reconnects. `None` waits forever.
    pub idle_timeout: Option<Duration>,
    /// Directory for per-session write-ahead journals. `None` disables
    /// journaling (a collector crash then loses in-flight sessions).
    pub journal_dir: Option<PathBuf>,
    /// Worker threads for the snapshot analysis pipeline. `None` uses the
    /// host's available parallelism. Snapshot contents are bit-identical
    /// at any thread count; this only trades latency for CPU.
    pub analysis_threads: Option<usize>,
    /// Admission control: cap on concurrently tracked sessions. A new
    /// producer arriving at the cap is *shed* — its connection is closed
    /// before a session is created — and counted in the status report.
    /// `None` admits everyone.
    pub max_sessions: Option<usize>,
    /// Per-session cap on ingested frame-payload bytes (counted across
    /// reconnects). A session crossing the quota stops ingesting: further
    /// frames are discarded at the socket and the session's published
    /// report is marked `degraded`. `None` is unlimited.
    pub session_quota_bytes: Option<u64>,
    /// Per-session cap on assembled events, enforced inside the
    /// [`SessionAssembler`]: events past the cap are tail-truncated
    /// deterministically and the session's report is marked `degraded`.
    /// `None` is unlimited.
    pub max_events: Option<u64>,
    /// Strict resource policy: instead of truncating and degrading, a
    /// session that exceeds its byte quota or event budget has its live
    /// connection severed, so the producer sees a hard error rather than
    /// a silently shortened analysis.
    pub strict: bool,
}

impl CollectorConfig {
    /// A config with defaults suitable for tests and local profiling:
    /// 256-frame queues, blocking backpressure, 200 ms snapshots, no idle
    /// timeout, no journal.
    pub fn new(ingest_addr: Addr) -> Self {
        CollectorConfig {
            ingest_addr,
            status_addr: None,
            metrics_addr: None,
            queue_capacity: 256,
            backpressure: Backpressure::Block,
            snapshot_interval: Duration::from_millis(200),
            poll_interval: Duration::from_millis(5),
            idle_timeout: None,
            journal_dir: None,
            analysis_threads: None,
            max_sessions: None,
            session_quota_bytes: None,
            max_events: None,
            strict: false,
        }
    }

    /// The per-session resource budget implied by this config.
    fn session_budget(&self) -> critlock_trace::Budget {
        let mut budget = critlock_trace::Budget::unlimited();
        budget.max_events = self.max_events;
        budget
    }
}

/// One session's state, shared between its reader thread, the analysis
/// loop and the status endpoint. A session outlives its connections: a
/// resumable producer may attach, disconnect and re-attach many times.
struct SessionState {
    id: u64,
    peer: String,
    /// Resume token from the handshake; empty for anonymous sessions.
    token: Vec<u8>,
    queue: FrameQueue,
    asm: Mutex<SessionAssembler>,
    /// Set when frames were applied since the last snapshot.
    dirty: AtomicBool,
    snapshot: Mutex<Option<SessionSnapshot>>,
    /// Sequence number of the next frame this session expects — equal to
    /// the count of frames durably received (journaled, if enabled).
    received_seq: AtomicU64,
    /// Whether a reader thread currently owns this session. At most one
    /// connection may be attached; concurrent claims are rejected.
    attached: AtomicBool,
    /// Write-ahead journal, if journaling is enabled. Dropped (set to
    /// `None`) if an append fails: availability over durability.
    journal: Mutex<Option<SessionJournal>>,
    /// Write half of the live connection (for acks and crash severing).
    conn: Mutex<Option<Stream>>,
    /// Frame-payload bytes ingested by this session across all of its
    /// connections, for the per-session byte quota.
    bytes_ingested: AtomicU64,
    /// Set when the byte quota stopped this session's ingest; the
    /// published report is marked degraded from then on.
    over_quota: AtomicBool,
    /// Guards the once-per-session quota-stop accounting (a resuming
    /// producer can trip the quota on every reconnect).
    quota_counted: AtomicBool,
    /// Collector-wide metric handles (shared atomics; cheap clone).
    metrics: CollectorMetrics,
}

impl SessionState {
    /// Drain the queue into the assembler. Returns whether anything new
    /// arrived. The assembler lock is taken *before* draining so that
    /// concurrent callers (analysis loop, status endpoint) cannot apply
    /// drained batches out of order.
    fn apply_pending(&self) -> bool {
        let mut asm = self.asm.lock().unwrap_or_else(|e| e.into_inner());
        let frames = self.queue.drain();
        if frames.is_empty() {
            return false;
        }
        for frame in frames {
            asm.apply(frame);
        }
        drop(asm);
        self.dirty.store(true, Ordering::Release);
        true
    }

    /// Recompute and publish this session's snapshot. If no frame has
    /// arrived since the last published snapshot, the repair + analysis
    /// pass is skipped entirely — re-running it would reproduce the same
    /// report bit for bit — and only the cheap queue counters refresh.
    /// (The `dirty` flag alone cannot guarantee this: it is also raised on
    /// frame-free transitions such as a reader detaching.)
    fn refresh_snapshot(&self) -> SessionSnapshot {
        let asm = self.asm.lock().unwrap_or_else(|e| e.into_inner());
        let mut slot = self.snapshot.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(prev) = slot.as_ref() {
            if prev.frames == asm.frames() {
                self.metrics.snapshot_skips.inc();
                let mut snap = prev.clone();
                snap.queue_depth = self.queue.depth() as u64;
                snap.queue_high_water = self.queue.high_water();
                snap.dropped_frames = self.queue.dropped();
                snap.report.degraded |= asm.degraded() || self.over_quota.load(Ordering::Acquire);
                drop(asm);
                self.dirty.store(false, Ordering::Release);
                *slot = Some(snap.clone());
                return snap;
            }
        }
        drop(slot);
        let started = Instant::now();
        let mut snap = SessionSnapshot::compute(
            self.id,
            self.peer.clone(),
            &asm,
            self.queue.depth() as u64,
            self.queue.high_water(),
            self.queue.dropped(),
        );
        self.metrics.snapshot_refreshes.inc();
        self.metrics.snapshot_refresh_ns.observe(started.elapsed().as_nanos() as u64);
        snap.report.degraded |= asm.degraded() || self.over_quota.load(Ordering::Acquire);
        drop(asm);
        self.dirty.store(false, Ordering::Release);
        *self.snapshot.lock().unwrap_or_else(|e| e.into_inner()) = Some(snap.clone());
        snap
    }

    /// The latest snapshot, recomputing first if new frames arrived.
    fn current_snapshot(&self) -> SessionSnapshot {
        self.apply_pending();
        if self.dirty.load(Ordering::Acquire) {
            return self.refresh_snapshot();
        }
        let published = self.snapshot.lock().unwrap_or_else(|e| e.into_inner()).clone();
        published.unwrap_or_else(|| self.refresh_snapshot())
    }
}

struct Shared {
    sessions: Mutex<Vec<Arc<SessionState>>>,
    /// Dedicated session-id allocator, seeded past any `anon-N` journal
    /// of an earlier run. Kept separate from [`Shared::sessions_total`]:
    /// the two used to be one atomic, which made the status counter wrong
    /// after journal recovery and let concurrently admitted sessions
    /// observe ids that double as (skewed) statistics.
    next_session_id: AtomicU64,
    /// Pure statistic: sessions accepted (or recovered) over the
    /// collector's lifetime. Never used for id assignment.
    sessions_total: AtomicU64,
    rejected_sessions: AtomicU64,
    timed_out_sessions: AtomicU64,
    resumed_sessions: AtomicU64,
    recovered_sessions: AtomicU64,
    shed_sessions: AtomicU64,
    quota_stopped_sessions: AtomicU64,
    shutdown: AtomicBool,
    /// Analysis-loop pass counter + condvar: [`CollectorHandle::wait_until`]
    /// sleeps here instead of spinning on wall-clock polls.
    passes: Mutex<u64>,
    progress: Condvar,
    config: CollectorConfig,
    metrics: CollectorMetrics,
}

impl Shared {
    fn status(&self) -> CollectorStatus {
        let sessions: Vec<Arc<SessionState>> =
            self.sessions.lock().unwrap_or_else(|e| e.into_inner()).clone();
        CollectorStatus {
            protocol_version: STREAM_VERSION,
            sessions_total: self.sessions_total.load(Ordering::Relaxed),
            rejected_sessions: self.rejected_sessions.load(Ordering::Relaxed),
            timed_out_sessions: self.timed_out_sessions.load(Ordering::Relaxed),
            resumed_sessions: self.resumed_sessions.load(Ordering::Relaxed),
            recovered_sessions: self.recovered_sessions.load(Ordering::Relaxed),
            shed_sessions: self.shed_sessions.load(Ordering::Relaxed),
            quota_stopped_sessions: self.quota_stopped_sessions.load(Ordering::Relaxed),
            sessions: sessions.iter().map(|s| s.current_snapshot()).collect(),
        }
    }

    fn bump_pass(&self) {
        *self.passes.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        self.progress.notify_all();
    }

    /// Refresh the scrape-time gauges and render the metrics text.
    /// Deliberately avoids session assembler locks: only queue counters
    /// and atomics are read, so a scrape never contends with analysis.
    fn render_metrics(&self) -> String {
        let sessions: Vec<Arc<SessionState>> =
            self.sessions.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let m = &self.metrics;
        m.sessions_active.set(sessions.len() as u64);
        m.queue_depth.set(sessions.iter().map(|s| s.queue.depth() as u64).sum());
        m.queue_high_water.set(sessions.iter().map(|s| s.queue.high_water()).max().unwrap_or(0));
        m.registry.render_prometheus()
    }
}

/// A running collector daemon. Dropping the handle does *not* stop the
/// daemon; call [`CollectorHandle::shutdown`].
pub struct CollectorHandle {
    ingest_addr: Addr,
    status_addr: Option<Addr>,
    metrics_addr: Option<Addr>,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl CollectorHandle {
    /// The address producers should stream to (ephemeral TCP ports
    /// resolved).
    pub fn ingest_addr(&self) -> &Addr {
        &self.ingest_addr
    }

    /// The bound status address, if a status endpoint was configured.
    pub fn status_addr(&self) -> Option<&Addr> {
        self.status_addr.as_ref()
    }

    /// The bound metrics address, if a metrics endpoint was configured.
    pub fn metrics_addr(&self) -> Option<&Addr> {
        self.metrics_addr.as_ref()
    }

    /// Compute the current status in-process — the same data the status
    /// socket serves.
    pub fn status(&self) -> CollectorStatus {
        self.shared.status()
    }

    /// Render the metrics in-process — the same text the metrics socket
    /// serves (available whether or not an endpoint is bound).
    pub fn metrics_text(&self) -> String {
        self.shared.render_metrics()
    }

    /// A deterministic (name-sorted) snapshot of every collector metric.
    pub fn metrics_snapshot(&self) -> critlock_obs::MetricsSnapshot {
        // render_metrics refreshes the scrape-time gauges as a side effect.
        let _ = self.shared.render_metrics();
        self.shared.metrics.registry.snapshot()
    }

    /// Block until `pred` holds for the collector status or `timeout`
    /// elapses; returns whether the predicate held. Wakes on every
    /// analysis pass via a condvar — no wall-clock spinning — so tests
    /// built on it are paced by the collector, not by sleeps.
    ///
    /// A `timeout` too large for the monotonic clock to represent (e.g.
    /// `Duration::MAX` from `--timeout u64::MAX`) saturates to "no
    /// deadline" instead of panicking on `Instant` overflow.
    pub fn wait_until(&self, timeout: Duration, pred: impl Fn(&CollectorStatus) -> bool) -> bool {
        let deadline = Instant::now().checked_add(timeout);
        loop {
            // Evaluate outside the pass lock: status() takes session
            // locks the analysis loop also needs.
            if pred(&self.shared.status()) {
                return true;
            }
            let passes = self.shared.passes.lock().unwrap_or_else(|e| e.into_inner());
            let seen = *passes;
            let remaining = match deadline {
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return false;
                    }
                    remaining
                }
                // No representable deadline: wake on progress (or at a
                // coarse re-check interval) forever.
                None => Duration::from_secs(3600),
            };
            let (guard, _timeout) = self
                .shared
                .progress
                .wait_timeout_while(passes, remaining, |p| *p == seen)
                .unwrap_or_else(|e| e.into_inner());
            drop(guard);
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return pred(&self.shared.status());
            }
        }
    }

    /// The finalized (repaired) trace of a session, if it exists.
    pub fn session_trace(&self, session: u64) -> Option<Trace> {
        let sessions = self.shared.sessions.lock().unwrap_or_else(|e| e.into_inner());
        let state = sessions.iter().find(|s| s.id == session)?.clone();
        drop(sessions);
        state.apply_pending();
        let asm = state.asm.lock().unwrap_or_else(|e| e.into_inner());
        Some(asm.finalize())
    }

    /// Stop accepting connections, finish pending analysis and join the
    /// daemon threads. Sessions still connected are finalized as
    /// disconnects; journals are synced to disk.
    pub fn shutdown(mut self) {
        self.stop();
        // Graceful drain: fold anything the analysis loop left behind and
        // make every journal durable.
        for session in self.shared.sessions.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            session.apply_pending();
            if session.dirty.load(Ordering::Acquire) {
                session.refresh_snapshot();
            }
            if let Some(journal) =
                session.journal.lock().unwrap_or_else(|e| e.into_inner()).as_mut()
            {
                let _ = journal.sync();
            }
        }
    }

    /// Tear the daemon down *without* the graceful drain — connections are
    /// severed abruptly and no final journal sync happens. Approximates a
    /// collector crash for recovery testing: everything a restarted
    /// collector may rely on must already be in the write-ahead journal.
    pub fn crash(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Sever live connections and unblock any reader parked on a full
        // queue, then poke the accept loops so they notice the flag.
        for session in self.shared.sessions.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            if let Some(conn) = session.conn.lock().unwrap_or_else(|e| e.into_inner()).take() {
                let _ = conn.shutdown_both();
            }
            session.queue.close();
        }
        let _ = Stream::connect(&self.ingest_addr);
        if let Some(addr) = &self.status_addr {
            let _ = Stream::connect(addr);
        }
        if let Some(addr) = &self.metrics_addr {
            let _ = Stream::connect(addr);
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// The highest `anon-N` journal index already present in a journal
/// directory, so restarted collectors never truncate an earlier run's
/// anonymous journal by reusing its session id.
fn max_anon_index(dir: &std::path::Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let path = e.path();
            let stem = path.file_stem()?.to_str()?;
            stem.strip_prefix("anon-")?.parse::<u64>().ok().map(|n| n + 1)
        })
        .max()
        .unwrap_or(0)
}

/// Bind the configured addresses, recover journaled sessions (if a
/// journal directory is configured) and start the daemon threads.
pub fn start(config: CollectorConfig) -> io::Result<CollectorHandle> {
    let ingest = Listener::bind(&config.ingest_addr)?;
    let ingest_addr = ingest.bound_addr()?;
    let status_listener = match &config.status_addr {
        Some(addr) => Some(Listener::bind(addr)?),
        None => None,
    };
    let status_addr = match &status_listener {
        Some(l) => Some(l.bound_addr()?),
        None => None,
    };
    let metrics_listener = match &config.metrics_addr {
        Some(addr) => Some(Listener::bind(addr)?),
        None => None,
    };
    let metrics_addr = match &metrics_listener {
        Some(l) => Some(l.bound_addr()?),
        None => None,
    };
    let metrics = CollectorMetrics::new();

    // Crash recovery: replay every journal in the directory into a
    // pre-populated session before any producer can connect.
    let mut recovered = Vec::new();
    let mut first_id = 0u64;
    if let Some(dir) = &config.journal_dir {
        std::fs::create_dir_all(dir)?;
        first_id = max_anon_index(dir);
        let (sessions, _unreadable) = journal::recover_dir(dir)?;
        recovered = sessions;
    }

    let shared = Arc::new(Shared {
        sessions: Mutex::new(Vec::new()),
        next_session_id: AtomicU64::new(first_id),
        sessions_total: AtomicU64::new(0),
        rejected_sessions: AtomicU64::new(0),
        timed_out_sessions: AtomicU64::new(0),
        resumed_sessions: AtomicU64::new(0),
        recovered_sessions: AtomicU64::new(0),
        shed_sessions: AtomicU64::new(0),
        quota_stopped_sessions: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        passes: Mutex::new(0),
        progress: Condvar::new(),
        config: config.clone(),
        metrics: metrics.clone(),
    });

    for mut rec in recovered {
        let id = shared.next_session_id.fetch_add(1, Ordering::Relaxed);
        shared.sessions_total.fetch_add(1, Ordering::Relaxed);
        metrics.sessions_started.inc();
        let peer = format!(
            "journal:{}",
            rec.journal.path().file_name().and_then(|n| n.to_str()).unwrap_or("?")
        );
        let mut asm = SessionAssembler::with_budget(config.session_budget());
        asm.set_counters(metrics.events_in.clone(), metrics.events_budget_dropped.clone());
        let frames = rec.frames.len() as u64;
        metrics.journal_frames_recovered.add(frames);
        for frame in rec.frames {
            asm.apply(frame);
        }
        rec.journal.set_counters(metrics.journal_counters());
        let session = Arc::new(SessionState {
            id,
            peer,
            token: rec.token,
            queue: FrameQueue::new(config.queue_capacity, config.backpressure),
            asm: Mutex::new(asm),
            dirty: AtomicBool::new(true),
            snapshot: Mutex::new(None),
            received_seq: AtomicU64::new(frames),
            attached: AtomicBool::new(false),
            journal: Mutex::new(Some(rec.journal)),
            conn: Mutex::new(None),
            bytes_ingested: AtomicU64::new(0),
            over_quota: AtomicBool::new(false),
            quota_counted: AtomicBool::new(false),
            metrics: metrics.clone(),
        });
        shared.sessions.lock().unwrap_or_else(|e| e.into_inner()).push(session);
        shared.recovered_sessions.fetch_add(1, Ordering::Relaxed);
        metrics.sessions_recovered.inc();
    }

    let mut threads = Vec::new();

    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(ingest, shared)));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || analysis_loop(shared)));
    }
    if let Some(listener) = status_listener {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || status_loop(listener, shared)));
    }
    if let Some(listener) = metrics_listener {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || metrics_loop(listener, shared)));
    }

    Ok(CollectorHandle { ingest_addr, status_addr, metrics_addr, shared, threads })
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let shared = Arc::clone(&shared);
        // Reader threads are intentionally not joined on shutdown: they
        // exit when their producer disconnects.
        std::thread::spawn(move || session_reader(stream, peer, shared));
    }
}

/// Outcome of a connection's attempt to claim a session.
enum Claim {
    /// The connection owns the session; the flag says it resumed one.
    Attached(Arc<SessionState>, bool),
    /// The session exists but another connection already owns it.
    Busy,
    /// Admission control: the collector is at `max_sessions`, the
    /// connection was shed before a session was created.
    Shed,
}

/// Look up the session a resumable handshake refers to, or create a new
/// session (resumable or anonymous). Session ids come from the dedicated
/// [`Shared::next_session_id`] allocator — never from the statistics
/// counters — so concurrent connects always get unique, monotonic ids.
fn claim_session(shared: &Arc<Shared>, token: &[u8], peer: String) -> Claim {
    let mut sessions = shared.sessions.lock().unwrap_or_else(|e| e.into_inner());
    if !token.is_empty() {
        if let Some(session) = sessions.iter().find(|s| s.token == token).cloned() {
            drop(sessions);
            if session.attached.swap(true, Ordering::AcqRel) {
                // Another reader owns this session: reject the duplicate
                // connection; the producer retries with backoff.
                return Claim::Busy;
            }
            return Claim::Attached(session, true);
        }
    }
    if shared.config.max_sessions.is_some_and(|max| sessions.len() >= max) {
        shared.shed_sessions.fetch_add(1, Ordering::Relaxed);
        shared.metrics.sessions_shed.inc();
        return Claim::Shed;
    }
    let id = shared.next_session_id.fetch_add(1, Ordering::Relaxed);
    shared.sessions_total.fetch_add(1, Ordering::Relaxed);
    shared.metrics.sessions_started.inc();
    let journal = shared.config.journal_dir.as_deref().and_then(|dir| {
        // A journal that cannot be created degrades the session to
        // unjournaled rather than refusing the producer.
        SessionJournal::create(dir, token, id).ok().map(|mut j| {
            j.set_counters(shared.metrics.journal_counters());
            j
        })
    });
    let mut asm = SessionAssembler::with_budget(shared.config.session_budget());
    asm.set_counters(
        shared.metrics.events_in.clone(),
        shared.metrics.events_budget_dropped.clone(),
    );
    let session = Arc::new(SessionState {
        id,
        peer,
        token: token.to_vec(),
        queue: FrameQueue::new(shared.config.queue_capacity, shared.config.backpressure),
        asm: Mutex::new(asm),
        dirty: AtomicBool::new(true),
        snapshot: Mutex::new(None),
        received_seq: AtomicU64::new(0),
        attached: AtomicBool::new(true),
        journal: Mutex::new(journal),
        conn: Mutex::new(None),
        bytes_ingested: AtomicU64::new(0),
        over_quota: AtomicBool::new(false),
        quota_counted: AtomicBool::new(false),
        metrics: shared.metrics.clone(),
    });
    sessions.push(Arc::clone(&session));
    Claim::Attached(session, false)
}

fn session_reader(stream: Stream, peer: String, shared: Arc<Shared>) {
    if let Some(idle) = shared.config.idle_timeout {
        let _ = stream.set_read_timeout(Some(idle));
    }
    // The write half for acks: the read half is about to be owned by the
    // frame decoder.
    let ack_conn = stream.try_clone().ok();

    // Handshake: magic + version (+ resume token) are read here, so an
    // incompatible producer is rejected before a session is created.
    let mut reader = match StreamReader::new(BufReader::new(stream)) {
        Ok(reader) => reader,
        Err(_) => {
            shared.rejected_sessions.fetch_add(1, Ordering::Relaxed);
            shared.metrics.sessions_rejected.inc();
            return;
        }
    };
    let handshake = reader.handshake().clone();

    let (session, resumed) = match claim_session(&shared, &handshake.token, peer) {
        Claim::Attached(session, resumed) => (session, resumed),
        Claim::Busy | Claim::Shed => return,
    };
    if resumed {
        shared.resumed_sessions.fetch_add(1, Ordering::Relaxed);
        shared.metrics.sessions_resumed.inc();
    }
    *session.conn.lock().unwrap_or_else(|e| e.into_inner()) = ack_conn;

    // Resumable producers get told where to (re)start: the next sequence
    // number this session expects. A session whose ack cannot be written
    // is severed — the producer would otherwise replay blindly.
    if handshake.resumable() {
        let acked = {
            let mut conn = session.conn.lock().unwrap_or_else(|e| e.into_inner());
            match conn.as_mut() {
                Some(c) => write_ack(c, session.received_seq.load(Ordering::Acquire)).is_ok(),
                None => false,
            }
        };
        if !acked {
            session.attached.store(false, Ordering::Release);
            return;
        }
    }

    // Frame loop. Frame i of this connection carries implicit sequence
    // number `start_seq + i`; frames the session already holds (a replay
    // overlap) are skipped, and the journal append happens *before* the
    // queue push so acknowledgements only ever cover durable frames.
    let mut seq = handshake.start_seq;
    let mut timed_out = false;
    let mut quota_cut = false;
    let mut conn_bytes = 0u64;
    let metrics = &shared.metrics;
    loop {
        match reader.next_frame() {
            Ok(Some(frame)) => {
                metrics.frames_in.inc();
                // Per-session byte quota, counted across reconnects. The
                // frame that crosses the line is discarded (not queued,
                // not acknowledged) and ingest stops deterministically.
                let now = reader.payload_bytes();
                session.bytes_ingested.fetch_add(now - conn_bytes, Ordering::Relaxed);
                metrics.bytes_in.add(now - conn_bytes);
                conn_bytes = now;
                if let Some(quota) = shared.config.session_quota_bytes {
                    if session.bytes_ingested.load(Ordering::Relaxed) > quota {
                        metrics.frames_quota_dropped.inc();
                        session.over_quota.store(true, Ordering::Release);
                        if !session.quota_counted.swap(true, Ordering::AcqRel) {
                            shared.quota_stopped_sessions.fetch_add(1, Ordering::Relaxed);
                            metrics.sessions_quota_stopped.inc();
                        }
                        quota_cut = true;
                        break;
                    }
                }
                let expected = session.received_seq.load(Ordering::Acquire);
                if seq < expected {
                    metrics.frames_replayed.inc();
                    seq += 1;
                    continue;
                }
                if seq > expected {
                    // The producer skipped ahead — a protocol violation
                    // (or an ack it never saw). Force a re-handshake.
                    metrics.frames_gap_rejected.inc();
                    break;
                }
                let is_end = matches!(frame, Frame::End);
                {
                    let mut journal = session.journal.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(j) = journal.as_mut() {
                        if j.append(&frame).is_err() {
                            *journal = None;
                        } else if is_end {
                            let _ = j.sync();
                        }
                    }
                }
                if session.queue.push(frame) {
                    metrics.frames_assembled.inc();
                } else {
                    metrics.frames_queue_dropped.inc();
                }
                seq += 1;
                session.received_seq.store(seq, Ordering::Release);
            }
            Ok(None) => break,
            Err(TraceError::Io(ref e)) if Stream::is_timeout(e) => {
                timed_out = true;
                break;
            }
            Err(TraceError::Decode(_)) => {
                // Frame CRC mismatch or corrupt framing: the connection is
                // unusable past this point; count it and sever.
                metrics.frames_crc_failed.inc();
                break;
            }
            Err(_) => break,
        }
    }
    if timed_out {
        shared.timed_out_sessions.fetch_add(1, Ordering::Relaxed);
        metrics.sessions_timed_out.inc();
    }

    // Tell a resumable producer how far this connection got (best effort
    // — the wire may already be gone), then release the session.
    let mut conn = session.conn.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(c) = conn.as_mut() {
        if handshake.resumable() {
            let _ = write_ack(c, session.received_seq.load(Ordering::Acquire));
        }
        if timed_out || quota_cut {
            let _ = c.shutdown_both();
        }
    }
    *conn = None;
    drop(conn);
    session.attached.store(false, Ordering::Release);
    session.dirty.store(true, Ordering::Release);
}

fn analysis_loop(shared: Arc<Shared>) {
    // The snapshot analysis (repair + offline analyze) runs inside a
    // dedicated worker pool sized by `analysis_threads`; snapshots are
    // bit-identical at any pool size, so this is purely a latency knob.
    let workers = shared
        .config
        .analysis_threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    let pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build().ok();
    let mut last_publish = Instant::now();
    loop {
        let stopping = shared.shutdown.load(Ordering::Acquire);
        let sessions: Vec<Arc<SessionState>> =
            shared.sessions.lock().unwrap_or_else(|e| e.into_inner()).clone();
        for session in &sessions {
            session.apply_pending();
            if shared.config.strict {
                // Strict resource policy: a session whose assembly had to
                // be truncated (event budget) or whose ingest hit the
                // byte quota is severed instead of served degraded.
                let over = session.asm.lock().unwrap_or_else(|e| e.into_inner()).degraded()
                    || session.over_quota.load(Ordering::Acquire);
                if over {
                    if let Some(conn) =
                        session.conn.lock().unwrap_or_else(|e| e.into_inner()).take()
                    {
                        let _ = conn.shutdown_both();
                    }
                }
            }
        }
        if stopping || last_publish.elapsed() >= shared.config.snapshot_interval {
            for session in &sessions {
                if session.dirty.load(Ordering::Acquire) {
                    match &pool {
                        Some(pool) => {
                            pool.install(|| session.refresh_snapshot());
                        }
                        None => {
                            session.refresh_snapshot();
                        }
                    }
                }
            }
            last_publish = Instant::now();
        }
        shared.bump_pass();
        if stopping {
            break;
        }
        std::thread::sleep(shared.config.poll_interval);
    }
}

fn status_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let _ = serve_status_request(stream, &shared);
    }
}

fn metrics_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let _ = serve_metrics_request(stream, &shared);
    }
}

/// Serve one scrape: read the request line (`metrics`, or an HTTP GET —
/// the reply is the same plaintext exposition either way) and write the
/// rendered metrics.
fn serve_metrics_request(stream: Stream, shared: &Shared) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let reply = shared.render_metrics();
    let mut stream = reader.into_inner();
    stream.write_all(reply.as_bytes())?;
    stream.flush()
}

fn serve_status_request(stream: Stream, shared: &Shared) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status = shared.status();
    let reply = match line.trim() {
        "status json" => {
            status.render_json().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        }
        _ => status.render_text(),
    };
    let mut stream = reader.into_inner();
    stream.write_all(reply.as_bytes())?;
    stream.flush()
}

//! The collector daemon: sharded session ingestion plus the incremental
//! analysis loop, the status endpoint and cross-collector rollup
//! forwarding.
//!
//! Thread layout:
//!
//! * one *ingest accept* thread hands each new connection to a dedicated
//!   *session reader* thread, which performs the stream handshake
//!   (magic + protocol version + resume token) and then decodes frames
//!   into that session's bounded [`FrameQueue`];
//! * sessions are partitioned across `N = config.shards` independent
//!   **shards** — token sessions by a stable hash of the token, anonymous
//!   sessions by id — each shard owning its own session map, journal
//!   subdirectory, admission slice of `max_sessions` and analysis thread;
//! * one *analysis* thread **per shard** periodically drains its shard's
//!   queues into [`SessionAssembler`]s and republishes
//!   [`SessionSnapshot`]s at the configured interval;
//! * an optional *status* thread answers `status` / `status json`
//!   one-shot requests, refreshing dirty sessions on demand so a request
//!   issued after a push completed always sees the final analysis. The
//!   same socket speaks the rollup protocol: `rollup` replies with the
//!   collector's CLAG rollup (every session digested, merged with
//!   anything child collectors pushed up), and `rollup-push LEN` + LEN
//!   CLAG bytes merges a child's rollup into this collector;
//! * with [`CollectorConfig::forward`] set, a *forwarder* thread
//!   periodically pushes this collector's rollup to a parent collector's
//!   status socket, forming an aggregation tree.
//!
//! Backpressure is per session: `Block` parks the reader thread on the
//! full queue, which stops it draining the socket, which closes the TCP
//! window (or fills the Unix socket buffer) back to the producer; `Drop`
//! discards the frame and counts it, which the repair pass in
//! [`crate::assembler`] is designed to absorb.
//!
//! ## Fault tolerance
//!
//! A producer that announces a non-empty resume token in its handshake
//! gets a **resumable session**: the collector replies with the sequence
//! number of the next frame it expects, so a reconnecting producer
//! replays only the gap, and duplicate frames from a conservative replay
//! are skipped by sequence number. With [`CollectorConfig::idle_timeout`]
//! set, a connection that goes silent is severed and its session is
//! finalized through the ordinary repair pass (it resumes if the producer
//! comes back). With [`CollectorConfig::journal_dir`] set, every accepted
//! frame is appended to a per-session write-ahead journal *before* it is
//! queued (and therefore before it is ever acknowledged), and a restarted
//! collector recovers all journaled sessions — acknowledged frames
//! survive a collector crash. Rollup forwarding is best-effort and
//! idempotent: the merge is a set union keyed by session, so a child that
//! re-pushes after a failed or partial forward never double-counts.

use crate::assembler::SessionAssembler;
use crate::checkpoint as ckpt;
use crate::faults::FaultState;
use crate::health::{classify, HealthInputs, HealthReport};
use crate::io::{DiskBudget, JournalIo, RealIo};
use crate::journal::{self, journal_stem, JournalOptions, SessionJournal};
use crate::metrics::{CollectorMetrics, ShardMetrics};
use crate::net::{Addr, Listener, Stream};
use crate::outbox;
use crate::queue::{Backpressure, FrameQueue};
use crate::snapshot::{CollectorStatus, ForwardStatus, SessionSnapshot, ShardStatus};
use critlock_analysis::digest_report;
use critlock_trace::rollup::{Rollup, MAX_ROLLUP_LEN};
use critlock_trace::stream::{write_ack, StreamReader, STREAM_VERSION};
use critlock_trace::{Anomaly, FaultPlan, RetryPolicy, Trace, TraceError};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a collector daemon.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Address producers stream frames to.
    pub ingest_addr: Addr,
    /// Address the status endpoint listens on, if any.
    pub status_addr: Option<Addr>,
    /// Address the Prometheus-style metrics endpoint listens on, if any.
    pub metrics_addr: Option<Addr>,
    /// Bounded per-session queue capacity, in frames.
    pub queue_capacity: usize,
    /// What to do when a session's queue is full.
    pub backpressure: Backpressure,
    /// How often the analysis loop republishes snapshots.
    pub snapshot_interval: Duration,
    /// How often the analysis loop polls session queues.
    pub poll_interval: Duration,
    /// Sever a connection when no frame arrives for this long. The
    /// session itself survives — it is finalized by the repair pass and
    /// resumes if its producer reconnects. `None` waits forever.
    pub idle_timeout: Option<Duration>,
    /// Directory for per-session write-ahead journals. `None` disables
    /// journaling (a collector crash then loses in-flight sessions).
    /// With more than one shard, each shard journals into its own
    /// `shard-N/` subdirectory; recovery scans the root and every
    /// subdirectory, so restarting with a different shard count loses
    /// nothing.
    pub journal_dir: Option<PathBuf>,
    /// Collector-wide cap on bytes of durable state under
    /// [`CollectorConfig::journal_dir`] (journal segments, checkpoints,
    /// the outbox spool). When the budget is exhausted, sessions that
    /// cannot journal keep ingesting in a **degraded**, non-resumable
    /// mode ([`Anomaly::JournalDegraded`]) instead of erroring — the
    /// collector sheds durability, never availability. `None` is
    /// unlimited.
    pub journal_quota_bytes: Option<u64>,
    /// Rotate a session's journal into a new segment
    /// (`<stem>.clsj.0001`, ...) once the active segment reaches this
    /// many bytes. Closed segments fully absorbed by a checkpoint are
    /// pruned, bounding per-session disk to roughly the working set
    /// instead of the session's whole history. `None` keeps one
    /// unbounded segment per session (the legacy layout).
    pub journal_segment_bytes: Option<u64>,
    /// How often each session's fold state is checkpointed to
    /// `<stem>.clck` (tmp+fsync+rename). Recovery then replays only the
    /// journal tail past the checkpoint watermark — O(tail), not
    /// O(history) — and produces byte-identical analysis either way.
    pub checkpoint_interval: Duration,
    /// The storage layer journals, checkpoints and the outbox write
    /// through. Production uses [`RealIo`]; chaos tests inject
    /// [`crate::io::FaultyIo`] to fault specific writes, syncs and
    /// renames deterministically.
    pub journal_io: Arc<dyn JournalIo>,
    /// Worker threads for the snapshot analysis pipeline, divided across
    /// shards. `None` uses the host's available parallelism. Snapshot
    /// contents are bit-identical at any thread count; this only trades
    /// latency for CPU.
    pub analysis_threads: Option<usize>,
    /// Admission control: hard cap on concurrently tracked sessions,
    /// enforced in two layers — each shard admits at most
    /// `ceil(max_sessions / shards)` (one hot shard cannot starve the
    /// others), and the collector-wide total never exceeds
    /// `max_sessions` itself (the per-shard ceilings alone would admit
    /// up to `shards - 1` extra). A new producer arriving past either
    /// bound is *shed* — its connection is closed before a session is
    /// created — and counted in the status report. `None` admits
    /// everyone.
    pub max_sessions: Option<usize>,
    /// Per-session cap on ingested frame-payload bytes (counted across
    /// reconnects). A session crossing the quota stops ingesting: further
    /// frames are discarded at the socket and the session's published
    /// report is marked `degraded`. `None` is unlimited.
    pub session_quota_bytes: Option<u64>,
    /// Per-session cap on assembled events, enforced inside the
    /// [`SessionAssembler`]: events past the cap are tail-truncated
    /// deterministically and the session's report is marked `degraded`.
    /// `None` is unlimited.
    pub max_events: Option<u64>,
    /// Strict resource policy: instead of truncating and degrading, a
    /// session that exceeds its byte quota or event budget has its live
    /// connection severed, so the producer sees a hard error rather than
    /// a silently shortened analysis.
    pub strict: bool,
    /// Number of independent ingestion shards. Sessions are routed by a
    /// stable hash of the resume token (anonymous sessions by id), so a
    /// resuming producer always lands on the shard that owns its
    /// session. `1` (the default) reproduces unsharded behavior exactly,
    /// including the journal directory layout.
    pub shards: usize,
    /// Status address of a **parent** collector to forward this
    /// collector's rollup to, forming an aggregation tree. `None`
    /// disables forwarding.
    pub forward: Option<Addr>,
    /// How often the forwarder pushes the rollup upstream. Failed pushes
    /// are retried on the next tick; the merge is idempotent, so
    /// re-sending after a partial forward is safe.
    pub forward_interval: Duration,
    /// Identity prefix for anonymous sessions in rollups
    /// (`<collector_id>/anon-<id>`). Give each collector in a fleet a
    /// distinct id, or anonymous sessions from different collectors
    /// collide in the aggregate. Token sessions use the token itself.
    pub collector_id: String,
    /// Cap on the sessions retained in the merged child-rollup state.
    /// The `rollup-push` endpoint is unauthenticated and its merge state
    /// would otherwise grow without bound under churning child sessions
    /// (or a misbehaving peer): a push whose merge would lift the
    /// retained session count past this cap is rejected whole (`err
    /// rollup cap ...`); pushes that only refresh already-retained
    /// sessions always succeed.
    pub max_rollup_sessions: usize,
    /// Status address of a **secondary** parent to fail over to when
    /// pushes to [`CollectorConfig::forward`] keep failing (after
    /// `forward_retry.max_attempts` consecutive failures). While on the
    /// fallback, the primary is probed periodically and forwarding fails
    /// back as soon as it answers. `None` disables failover.
    pub forward_fallback: Option<Addr>,
    /// Bound on connect and socket I/O for each rollup push.
    pub forward_timeout: Duration,
    /// Backoff schedule for failed pushes: after a failure the forwarder
    /// retries on `forward_retry.backoff(..)` (capped exponential)
    /// instead of the plain forward interval, and `max_attempts` doubles
    /// as the failover threshold and the shutdown-flush retry budget.
    pub forward_retry: RetryPolicy,
    /// Deterministic transport faults injected on the rollup-push wire
    /// (chaos testing). `None` forwards over the plain socket.
    pub forward_fault_plan: Option<FaultPlan>,
    /// Sliding-window width in trace time units (`serve --window-secs`,
    /// converted to nanoseconds for real instrumented sessions). When
    /// set, every session maintains a ring of closed per-window
    /// critical-lock digests ("critical locks over the last N seconds"),
    /// published in snapshots, the status document and rollups. `None`
    /// disables windowing.
    pub window_width: Option<critlock_trace::Ts>,
    /// Test hook: panic inside the analysis worker when it refreshes a
    /// session whose trace metadata names this app, to exercise the
    /// quarantine path. Never set outside tests.
    #[doc(hidden)]
    pub panic_on_app: Option<String>,
}

impl CollectorConfig {
    /// A config with defaults suitable for tests and local profiling:
    /// 256-frame queues, blocking backpressure, 200 ms snapshots, no idle
    /// timeout, no journal, one shard, no forwarding.
    pub fn new(ingest_addr: Addr) -> Self {
        CollectorConfig {
            ingest_addr,
            status_addr: None,
            metrics_addr: None,
            queue_capacity: 256,
            backpressure: Backpressure::Block,
            snapshot_interval: Duration::from_millis(200),
            poll_interval: Duration::from_millis(5),
            idle_timeout: None,
            journal_dir: None,
            journal_quota_bytes: None,
            journal_segment_bytes: None,
            checkpoint_interval: Duration::from_secs(2),
            journal_io: Arc::new(RealIo),
            analysis_threads: None,
            max_sessions: None,
            session_quota_bytes: None,
            max_events: None,
            strict: false,
            shards: 1,
            forward: None,
            forward_interval: Duration::from_millis(500),
            collector_id: "collector".to_string(),
            max_rollup_sessions: 65_536,
            forward_fallback: None,
            forward_timeout: Duration::from_secs(5),
            forward_retry: RetryPolicy::default(),
            forward_fault_plan: None,
            window_width: None,
            panic_on_app: None,
        }
    }

    /// The per-session resource budget implied by this config.
    fn session_budget(&self) -> critlock_trace::Budget {
        let mut budget = critlock_trace::Budget::unlimited();
        budget.max_events = self.max_events;
        budget
    }

    /// A fresh assembler configured per this config (budget + windowing).
    fn new_assembler(&self) -> SessionAssembler {
        let mut asm = SessionAssembler::with_budget(self.session_budget());
        if let Some(width) = self.window_width {
            asm.set_window(width);
        }
        asm
    }
}

/// One session's state, shared between its reader thread, the analysis
/// loop and the status endpoint. A session outlives its connections: a
/// resumable producer may attach, disconnect and re-attach many times.
struct SessionState {
    id: u64,
    /// Index used for the `anon-<N>` rollup key. Equals `id` for fresh
    /// sessions; a journal-recovered anonymous session keeps the
    /// `anon-N` index of its journal file, because recovery hands out a
    /// *fresh* session id and the rollup key must survive the restart —
    /// otherwise the recovered session would re-forward under a new key
    /// and a parent collector would double-count it.
    rollup_id: u64,
    peer: String,
    /// Resume token from the handshake; empty for anonymous sessions.
    token: Vec<u8>,
    /// Durable-state file stem (`anon-N` or the hex token) — the name
    /// journal segments and checkpoints share, kept even for sessions
    /// that failed to open a journal so a later checkpoint still lands
    /// in the right file.
    stem: String,
    queue: FrameQueue,
    asm: Mutex<SessionAssembler>,
    /// Set when frames were applied since the last snapshot.
    dirty: AtomicBool,
    snapshot: Mutex<Option<SessionSnapshot>>,
    /// Sequence number of the next frame this session expects — equal to
    /// the count of frames durably received (journaled, if enabled).
    received_seq: AtomicU64,
    /// Whether a reader thread currently owns this session. At most one
    /// connection may be attached; concurrent claims are rejected.
    attached: AtomicBool,
    /// Write-ahead journal, if journaling is enabled. Dropped (set to
    /// `None`) if an append fails: availability over durability.
    journal: Mutex<Option<SessionJournal>>,
    /// Set when journaling was configured but this session runs without
    /// it (disk quota, ENOSPC, create or append failure). The published
    /// report is marked degraded and carries
    /// [`Anomaly::JournalDegraded`]; ingest continues.
    journal_degraded: AtomicBool,
    /// Watermark of the last durable checkpoint (frames absorbed); the
    /// checkpoint tick skips sessions whose fold hasn't advanced.
    checkpointed_frames: AtomicU64,
    /// Write half of the live connection (for acks and crash severing).
    conn: Mutex<Option<Stream>>,
    /// Frame-payload bytes ingested by this session across all of its
    /// connections, for the per-session byte quota.
    bytes_ingested: AtomicU64,
    /// Set when the byte quota stopped this session's ingest; the
    /// published report is marked degraded from then on.
    over_quota: AtomicBool,
    /// Guards the once-per-session quota-stop accounting (a resuming
    /// producer can trip the quota on every reconnect).
    quota_counted: AtomicBool,
    /// Set when an analysis worker panicked on this session. A poisoned
    /// session is quarantined: its last published snapshot keeps being
    /// served (marked degraded, with an [`Anomaly::AnalysisPanicked`]),
    /// further frames are discarded undrained, and every other session —
    /// including new admissions on the same shard — is unaffected.
    poisoned: AtomicBool,
    /// Copy of [`CollectorConfig::panic_on_app`] (test hook).
    panic_app: Option<String>,
    /// Collector-wide metric handles (shared atomics; cheap clone).
    metrics: CollectorMetrics,
    /// Labelled metric handles of the shard that owns this session.
    shard_metrics: ShardMetrics,
}

impl SessionState {
    /// Drain the queue into the assembler. Returns whether anything new
    /// arrived. The assembler lock is taken *before* draining so that
    /// concurrent callers (analysis loop, status endpoint) cannot apply
    /// drained batches out of order.
    fn apply_pending(&self) -> bool {
        let mut asm = self.asm.lock().unwrap_or_else(|e| e.into_inner());
        let frames = self.queue.drain();
        if frames.is_empty() {
            return false;
        }
        for frame in frames {
            asm.apply_raw(&frame);
        }
        drop(asm);
        self.dirty.store(true, Ordering::Release);
        true
    }

    /// Recompute and publish this session's snapshot. If nothing new has
    /// arrived since the last published snapshot, the repair + analysis
    /// pass is skipped entirely — re-running it would reproduce the same
    /// report bit for bit — and only the cheap queue counters refresh.
    /// (The `dirty` flag alone cannot guarantee this: it is also raised on
    /// frame-free transitions such as a reader detaching.) The check is
    /// keyed on the applied-*event* count as well as the frame count:
    /// after journal recovery the frame counter restarts from the journal
    /// record count while the previous process's published snapshot may
    /// have counted the same frames, so a frames-only comparison can
    /// conflate replayed frames with new ones and serve a stale report.
    fn refresh_snapshot(&self) -> SessionSnapshot {
        let mut asm = self.asm.lock().unwrap_or_else(|e| e.into_inner());
        let mut slot = self.snapshot.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(prev) = slot.as_ref() {
            if prev.frames == asm.frames() && prev.events == asm.events() {
                self.metrics.snapshot_skips.inc();
                let mut snap = prev.clone();
                snap.queue_depth = self.queue.depth() as u64;
                snap.queue_high_water = self.queue.high_water();
                snap.dropped_frames = self.queue.dropped();
                snap.report.degraded |= asm.degraded() || self.over_quota.load(Ordering::Acquire);
                drop(asm);
                self.mark_journal_degraded(&mut snap);
                self.dirty.store(false, Ordering::Release);
                *slot = Some(snap.clone());
                return snap;
            }
        }
        drop(slot);
        if let Some(app) = &self.panic_app {
            if asm.partial().meta.app == *app {
                panic!("injected analysis panic for app {app:?}");
            }
        }
        let started = Instant::now();
        let mut snap = SessionSnapshot::compute(
            self.id,
            self.peer.clone(),
            &mut asm,
            self.queue.depth() as u64,
            self.queue.high_water(),
            self.queue.dropped(),
        );
        self.metrics.snapshot_refreshes.inc();
        self.metrics.snapshot_refresh_ns.observe(started.elapsed().as_nanos() as u64);
        snap.report.degraded |= asm.degraded() || self.over_quota.load(Ordering::Acquire);
        drop(asm);
        self.mark_journal_degraded(&mut snap);
        self.dirty.store(false, Ordering::Release);
        *self.snapshot.lock().unwrap_or_else(|e| e.into_inner()) = Some(snap.clone());
        snap
    }

    /// Stamp a snapshot of a journal-degraded session: the report is
    /// degraded and carries a typed [`Anomaly::JournalDegraded`] (once —
    /// refreshes must not accumulate duplicates).
    fn mark_journal_degraded(&self, snap: &mut SessionSnapshot) {
        if !self.journal_degraded.load(Ordering::Acquire) {
            return;
        }
        snap.report.degraded = true;
        let already =
            snap.report.anomalies.iter().any(|a| matches!(a, Anomaly::JournalDegraded { .. }));
        if !already {
            snap.report.anomalies.push(Anomaly::JournalDegraded {
                detail: "disk quota exhausted or journal write failure".to_string(),
            });
        }
    }

    /// The latest snapshot, recomputing first if new frames arrived. A
    /// poisoned (quarantined) session serves its last good snapshot.
    fn current_snapshot(&self) -> SessionSnapshot {
        self.supervised(|| {
            self.apply_pending();
            if self.dirty.load(Ordering::Acquire) {
                return self.refresh_snapshot();
            }
            let published = self.snapshot.lock().unwrap_or_else(|e| e.into_inner()).clone();
            published.unwrap_or_else(|| self.refresh_snapshot())
        })
        .unwrap_or_else(|| self.quarantined_snapshot())
    }

    /// Run an analysis-side operation under panic supervision. Returns
    /// `None` without running anything if the session is already
    /// quarantined; a panic inside `f` quarantines the session (the
    /// panic is caught, never unwinding into the calling worker).
    fn supervised<T>(&self, f: impl FnOnce() -> T) -> Option<T> {
        if self.poisoned.load(Ordering::Acquire) {
            return None;
        }
        match std::panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(value) => Some(value),
            Err(payload) => {
                self.quarantine(payload.as_ref());
                None
            }
        }
    }

    /// First panic on this session: mark it poisoned, count it (globally
    /// and on the owning shard's labelled counter) and publish a degraded
    /// snapshot carrying [`Anomaly::AnalysisPanicked`], based on the last
    /// good snapshot when one exists.
    fn quarantine(&self, payload: &(dyn std::any::Any + Send)) {
        if self.poisoned.swap(true, Ordering::AcqRel) {
            return;
        }
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        self.metrics.worker_panics.inc();
        self.shard_metrics.worker_panics.inc();
        let mut slot = self.snapshot.lock().unwrap_or_else(|e| e.into_inner());
        let mut snap = slot.clone().unwrap_or_else(|| self.placeholder_snapshot());
        snap.report.degraded = true;
        snap.report.anomalies.push(Anomaly::AnalysisPanicked { detail });
        *slot = Some(snap);
        drop(slot);
        self.dirty.store(false, Ordering::Release);
    }

    /// The snapshot a quarantined session serves: whatever `quarantine`
    /// published (last good state plus the panic anomaly).
    fn quarantined_snapshot(&self) -> SessionSnapshot {
        self.snapshot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .unwrap_or_else(|| self.placeholder_snapshot())
    }

    /// An empty-trace snapshot for sessions that panicked before ever
    /// publishing one. Computed from a fresh assembler — never touches
    /// this session's (possibly poisoned) state.
    fn placeholder_snapshot(&self) -> SessionSnapshot {
        SessionSnapshot::compute(self.id, self.peer.clone(), &mut SessionAssembler::new(), 0, 0, 0)
    }

    /// The key this session carries in rollups: the resume token when it
    /// has one (fleet-unique by construction of auto-tokens), otherwise
    /// `<collector_id>/anon-<N>` where N is stable across journal
    /// recovery (see [`SessionState::rollup_id`]).
    fn rollup_key(&self, collector_id: &str) -> String {
        if self.token.is_empty() {
            format!("{collector_id}/anon-{}", self.rollup_id)
        } else {
            String::from_utf8_lossy(&self.token).into_owned()
        }
    }
}

/// One ingestion shard: an independent session map with its own journal
/// directory, admission slice and analysis thread. All cross-session
/// state a reader thread touches lives in exactly one shard, so sessions
/// on different shards never contend on a shared map lock.
struct Shard {
    index: usize,
    sessions: Mutex<Vec<Arc<SessionState>>>,
    /// Where this shard's journals live (`journal_dir` itself for a
    /// single-shard collector, `journal_dir/shard-N` otherwise).
    journal_dir: Option<PathBuf>,
    /// Labelled per-shard counters/gauges; also the source of truth for
    /// the per-shard status lines.
    metrics: ShardMetrics,
}

/// FNV-1a over the resume token: the stable shard router. Anything
/// stable works, but it must never change across versions or a resuming
/// producer would land on a shard that does not own its session.
fn token_shard(token: &[u8], shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in token {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Live forwarder state, shared between the forwarder thread, the
/// status/health endpoints and the scrape-time gauge refresh.
#[derive(Default)]
struct ForwardState {
    /// Failed forward ticks since the last delivered rollup.
    consecutive_failures: u64,
    /// When a push last succeeded (either parent).
    last_success: Option<Instant>,
    /// Whether pushes currently go to the fallback parent.
    using_fallback: bool,
    /// Whether an undelivered rollup sits in the outbox spool.
    spooled: bool,
    /// Tick counter while on the fallback, pacing fail-back probes.
    ticks: u64,
}

struct Shared {
    shards: Vec<Shard>,
    /// Dedicated session-id allocator, seeded past any `anon-N` journal
    /// of an earlier run. Kept separate from the statistics counters: the
    /// two used to be one atomic, which made the status counter wrong
    /// after journal recovery and let concurrently admitted sessions
    /// observe ids that double as (skewed) statistics.
    next_session_id: AtomicU64,
    /// Connections rejected at the handshake. Global, not per shard: a
    /// rejected connection never presented a token, so it has no shard.
    rejected_sessions: AtomicU64,
    /// Sessions tracked collector-wide (admitted + recovered; sessions
    /// are never removed). Admission *reserves* a slot here before
    /// creating a session, so the global `max_sessions` bound holds even
    /// under concurrent admissions on different shards.
    tracked_sessions: AtomicU64,
    /// Rollups pushed up by child collectors, merged as they arrive.
    /// Served back (merged with this collector's own sessions) on
    /// `rollup` requests and forwarded upstream by the forwarder.
    received_rollup: Mutex<Rollup>,
    shutdown: AtomicBool,
    /// Analysis-loop pass counter + condvar: [`CollectorHandle::wait_until`]
    /// sleeps here instead of spinning on wall-clock polls. Every shard's
    /// analysis loop bumps it.
    passes: Mutex<u64>,
    progress: Condvar,
    /// Forwarder state; meaningful only when forwarding is configured.
    forward: Mutex<ForwardState>,
    /// The storage stack every durable write goes through: the
    /// (injectable) I/O layer, the collector-wide disk budget, the
    /// segment-rotation threshold and the journal counters.
    journal_opts: JournalOptions,
    config: CollectorConfig,
    metrics: CollectorMetrics,
}

impl Shared {
    /// The shard that owns (or will own) a session. Token sessions hash
    /// the token so reconnects find their session; anonymous sessions
    /// spread by id.
    fn shard_for(&self, token: &[u8], id: u64) -> &Shard {
        let n = self.shards.len();
        let index = if token.is_empty() { (id % n as u64) as usize } else { token_shard(token, n) };
        &self.shards[index]
    }

    /// Every tracked session across all shards, ordered by session id.
    fn all_sessions(&self) -> Vec<Arc<SessionState>> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.sessions.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned());
        }
        all.sort_by_key(|s| s.id);
        all
    }

    fn status(&self) -> CollectorStatus {
        let mut shard_statuses = Vec::with_capacity(self.shards.len());
        let mut snaps = Vec::new();
        for shard in &self.shards {
            let sessions: Vec<Arc<SessionState>> =
                shard.sessions.lock().unwrap_or_else(|e| e.into_inner()).clone();
            let m = &shard.metrics;
            shard_statuses.push(ShardStatus {
                shard: shard.index as u64,
                sessions: sessions.len() as u64,
                sessions_total: m.sessions_total.get(),
                timed_out_sessions: m.sessions_timed_out.get(),
                resumed_sessions: m.sessions_resumed.get(),
                recovered_sessions: m.sessions_recovered.get(),
                shed_sessions: m.sessions_shed.get(),
                quota_stopped_sessions: m.sessions_quota_stopped.get(),
                worker_panics: m.worker_panics.get(),
                queue_depth: sessions.iter().map(|s| s.queue.depth() as u64).sum(),
                queue_high_water: sessions.iter().map(|s| s.queue.high_water()).max().unwrap_or(0),
            });
            snaps.extend(sessions.iter().map(|s| s.current_snapshot()));
        }
        snaps.sort_by_key(|s| s.session);
        let sum = |f: fn(&ShardStatus) -> u64| shard_statuses.iter().map(f).sum::<u64>();
        CollectorStatus {
            protocol_version: STREAM_VERSION,
            sessions_total: sum(|s| s.sessions_total),
            rejected_sessions: self.rejected_sessions.load(Ordering::Relaxed),
            timed_out_sessions: sum(|s| s.timed_out_sessions),
            resumed_sessions: sum(|s| s.resumed_sessions),
            recovered_sessions: sum(|s| s.recovered_sessions),
            shed_sessions: sum(|s| s.shed_sessions),
            quota_stopped_sessions: sum(|s| s.quota_stopped_sessions),
            worker_panics: sum(|s| s.worker_panics),
            forward: self.forward_status(),
            shards: shard_statuses,
            sessions: snaps,
        }
    }

    /// The forwarder's observable state, or `None` when this collector
    /// does not forward.
    fn forward_status(&self) -> Option<ForwardStatus> {
        self.config.forward.as_ref()?;
        let fwd = self.forward.lock().unwrap_or_else(|e| e.into_inner());
        Some(ForwardStatus {
            pushes: self.metrics.forward_pushes.get(),
            failures: self.metrics.forward_failures.get(),
            consecutive_failures: fwd.consecutive_failures,
            last_success_age_secs: fwd.last_success.map(|at| at.elapsed().as_secs()),
            using_fallback: fwd.using_fallback,
            spooled: fwd.spooled,
        })
    }

    /// Classify this collector's health — the `health` request's answer.
    /// Reads only queue counters, atomics and the forwarder state; never
    /// a session assembler lock, so a probe cannot hang behind analysis.
    fn health(&self) -> HealthReport {
        let mut sessions_active = 0u64;
        let mut queue_depth = 0u64;
        let mut journal_degraded = 0u64;
        for shard in &self.shards {
            let sessions = shard.sessions.lock().unwrap_or_else(|e| e.into_inner());
            sessions_active += sessions.len() as u64;
            queue_depth += sessions.iter().map(|s| s.queue.depth() as u64).sum::<u64>();
            journal_degraded +=
                sessions.iter().filter(|s| s.journal_degraded.load(Ordering::Acquire)).count()
                    as u64;
        }
        classify(&HealthInputs {
            sessions_active,
            queue_depth,
            queue_capacity: sessions_active * self.config.queue_capacity as u64,
            shed_sessions: self.metrics.sessions_shed.get(),
            quota_stopped_sessions: self.metrics.sessions_quota_stopped.get(),
            journal_append_failures: self.metrics.journal_append_failures.get(),
            journal_degraded_sessions: journal_degraded,
            worker_panics: self.metrics.worker_panics.get(),
            forward_interval: self.config.forward_interval,
            forward: self.forward_status(),
        })
    }

    /// This collector's CLAG rollup: every tracked session digested at
    /// its current snapshot, merged over anything child collectors have
    /// pushed up. Deterministic for quiesced sessions — the digest is
    /// taken from the same snapshot `status` serves.
    fn rollup(&self) -> Rollup {
        let mut rollup = self.received_rollup.lock().unwrap_or_else(|e| e.into_inner()).clone();
        for session in self.all_sessions() {
            let snap = session.current_snapshot();
            let key = session.rollup_key(&self.config.collector_id);
            let mut digest = digest_report(&key, &snap.report);
            // When windowing is on, annotate the digest with the most
            // recently closed window so CLAG parents can report "critical
            // locks over the last N seconds" fleet-wide.
            digest.window = snap.windows.last().cloned();
            rollup.insert(digest);
        }
        rollup
    }

    fn bump_pass(&self) {
        *self.passes.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        self.progress.notify_all();
    }

    /// Refresh the scrape-time gauges and render the metrics text.
    /// Deliberately avoids session assembler locks: only queue counters
    /// and atomics are read, so a scrape never contends with analysis.
    fn render_metrics(&self) -> String {
        let mut active = 0u64;
        let mut depth = 0u64;
        let mut high_water = 0u64;
        let mut journal_degraded = 0u64;
        for shard in &self.shards {
            let sessions: Vec<Arc<SessionState>> =
                shard.sessions.lock().unwrap_or_else(|e| e.into_inner()).clone();
            let shard_depth: u64 = sessions.iter().map(|s| s.queue.depth() as u64).sum();
            let shard_high = sessions.iter().map(|s| s.queue.high_water()).max().unwrap_or(0);
            shard.metrics.sessions_active.set(sessions.len() as u64);
            shard.metrics.queue_depth.set(shard_depth);
            shard.metrics.queue_high_water.set(shard_high);
            active += sessions.len() as u64;
            depth += shard_depth;
            high_water = high_water.max(shard_high);
            journal_degraded +=
                sessions.iter().filter(|s| s.journal_degraded.load(Ordering::Acquire)).count()
                    as u64;
        }
        let m = &self.metrics;
        m.sessions_active.set(active);
        m.queue_depth.set(depth);
        m.queue_high_water.set(high_water);
        m.journal_degraded_sessions.set(journal_degraded);
        m.journal_disk_used_bytes.set(self.journal_opts.budget.used());
        if let Some(at) = self.forward.lock().unwrap_or_else(|e| e.into_inner()).last_success {
            m.forward_last_success_seconds.set(at.elapsed().as_secs());
        }
        m.registry.render_prometheus()
    }
}

/// A running collector daemon. Dropping the handle does *not* stop the
/// daemon; call [`CollectorHandle::shutdown`].
pub struct CollectorHandle {
    ingest_addr: Addr,
    status_addr: Option<Addr>,
    metrics_addr: Option<Addr>,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl CollectorHandle {
    /// The address producers should stream to (ephemeral TCP ports
    /// resolved).
    pub fn ingest_addr(&self) -> &Addr {
        &self.ingest_addr
    }

    /// The bound status address, if a status endpoint was configured.
    pub fn status_addr(&self) -> Option<&Addr> {
        self.status_addr.as_ref()
    }

    /// The bound metrics address, if a metrics endpoint was configured.
    pub fn metrics_addr(&self) -> Option<&Addr> {
        self.metrics_addr.as_ref()
    }

    /// Compute the current status in-process — the same data the status
    /// socket serves.
    pub fn status(&self) -> CollectorStatus {
        self.shared.status()
    }

    /// Compute the current CLAG rollup in-process — the same bytes the
    /// status socket serves for a `rollup` request.
    pub fn rollup(&self) -> Rollup {
        self.shared.rollup()
    }

    /// Classify the collector's health in-process — the same report the
    /// status socket serves for a `health` request.
    pub fn health(&self) -> HealthReport {
        self.shared.health()
    }

    /// Render the metrics in-process — the same text the metrics socket
    /// serves (available whether or not an endpoint is bound).
    pub fn metrics_text(&self) -> String {
        self.shared.render_metrics()
    }

    /// A deterministic (name-sorted) snapshot of every collector metric.
    pub fn metrics_snapshot(&self) -> critlock_obs::MetricsSnapshot {
        // render_metrics refreshes the scrape-time gauges as a side effect.
        let _ = self.shared.render_metrics();
        self.shared.metrics.registry.snapshot()
    }

    /// Block until `pred` holds for the collector status or `timeout`
    /// elapses; returns whether the predicate held. Wakes on every
    /// analysis pass via a condvar — no wall-clock spinning — so tests
    /// built on it are paced by the collector, not by sleeps.
    ///
    /// A `timeout` too large for the monotonic clock to represent (e.g.
    /// `Duration::MAX` from `--timeout u64::MAX`) saturates to "no
    /// deadline" instead of panicking on `Instant` overflow.
    pub fn wait_until(&self, timeout: Duration, pred: impl Fn(&CollectorStatus) -> bool) -> bool {
        let deadline = Instant::now().checked_add(timeout);
        loop {
            // Evaluate outside the pass lock: status() takes session
            // locks the analysis loop also needs.
            if pred(&self.shared.status()) {
                return true;
            }
            let passes = self.shared.passes.lock().unwrap_or_else(|e| e.into_inner());
            let seen = *passes;
            let remaining = match deadline {
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return false;
                    }
                    remaining
                }
                // No representable deadline: wake on progress (or at a
                // coarse re-check interval) forever.
                None => Duration::from_secs(3600),
            };
            let (guard, _timeout) = self
                .shared
                .progress
                .wait_timeout_while(passes, remaining, |p| *p == seen)
                .unwrap_or_else(|e| e.into_inner());
            drop(guard);
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return pred(&self.shared.status());
            }
        }
    }

    /// The finalized (repaired) trace of a session, if it exists.
    /// `None` for quarantined sessions — their assembler state is not
    /// trusted after a worker panic.
    pub fn session_trace(&self, session: u64) -> Option<Trace> {
        let state = self.shared.all_sessions().into_iter().find(|s| s.id == session)?;
        state.supervised(|| {
            state.apply_pending();
            let asm = state.asm.lock().unwrap_or_else(|e| e.into_inner());
            asm.finalize()
        })
    }

    /// Stop accepting connections, finish pending analysis and join the
    /// daemon threads. Sessions still connected are finalized as
    /// disconnects; journals are synced to disk.
    pub fn shutdown(mut self) {
        self.stop();
        // Graceful drain: fold anything the analysis loop left behind and
        // make every journal durable. Quarantined sessions skip the
        // drain (their assembler is not trusted) but still sync their
        // journal — the frames are good even if the analysis panicked.
        for session in self.shared.all_sessions() {
            session.supervised(|| {
                session.apply_pending();
                if session.dirty.load(Ordering::Acquire) {
                    session.refresh_snapshot();
                }
            });
            if let Some(journal) =
                session.journal.lock().unwrap_or_else(|e| e.into_inner()).as_mut()
            {
                let _ = journal.sync();
            }
        }
    }

    /// Tear the daemon down *without* the graceful drain — connections are
    /// severed abruptly and no final journal sync happens. Approximates a
    /// collector crash for recovery testing: everything a restarted
    /// collector may rely on must already be in the write-ahead journal.
    pub fn crash(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Sever live connections and unblock any reader parked on a full
        // queue, then poke the accept loops so they notice the flag.
        for session in self.shared.all_sessions() {
            if let Some(conn) = session.conn.lock().unwrap_or_else(|e| e.into_inner()).take() {
                let _ = conn.shutdown_both();
            }
            session.queue.close();
        }
        let _ = Stream::connect(&self.ingest_addr);
        if let Some(addr) = &self.status_addr {
            let _ = Stream::connect(addr);
        }
        if let Some(addr) = &self.metrics_addr {
            let _ = Stream::connect(addr);
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// The highest `anon-N` journal index already present in a journal
/// directory, so restarted collectors never truncate an earlier run's
/// anonymous journal by reusing its session id.
fn max_anon_index(dir: &std::path::Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let path = e.path();
            let stem = path.file_stem()?.to_str()?;
            stem.strip_prefix("anon-")?.parse::<u64>().ok().map(|n| n + 1)
        })
        .max()
        .unwrap_or(0)
}

/// Every directory journals may live in under `root`: the root itself
/// (the single-shard layout, and legacy journals after a shard-count
/// change) plus any existing `shard-N/` subdirectory — including shards
/// beyond the current count, so scaling *down* loses nothing.
fn journal_dirs(root: &std::path::Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.to_path_buf()];
    if let Ok(entries) = std::fs::read_dir(root) {
        let mut subs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.is_dir()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .and_then(|n| n.strip_prefix("shard-"))
                        .is_some_and(|n| n.parse::<u64>().is_ok())
            })
            .collect();
        subs.sort();
        dirs.extend(subs);
    }
    dirs
}

/// Bytes of durable collector state currently on disk under `root`:
/// journal segments, checkpoints (and their tmp files) and the outbox
/// spool, across the root and every shard subdirectory. Seeds the disk
/// budget at startup so the quota bounds total size, not just the bytes
/// this process writes.
fn scan_disk_usage(root: &std::path::Path) -> u64 {
    let journal_marker = format!(".{}", journal::JOURNAL_EXT);
    let checkpoint_marker = format!(".{}", ckpt::CHECKPOINT_EXT);
    let mut total = 0u64;
    for dir in journal_dirs(root) {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let durable = name.contains(&journal_marker)
                || name.contains(&checkpoint_marker)
                || name == outbox::OUTBOX_FILE
                || name == "outbox.clag.tmp";
            if durable && path.is_file() {
                total += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    total
}

/// Bind the configured addresses, recover journaled sessions (if a
/// journal directory is configured) and start the daemon threads.
pub fn start(config: CollectorConfig) -> io::Result<CollectorHandle> {
    let mut config = config;
    config.shards = config.shards.max(1);
    let ingest = Listener::bind(&config.ingest_addr)?;
    let ingest_addr = ingest.bound_addr()?;
    let status_listener = match &config.status_addr {
        Some(addr) => Some(Listener::bind(addr)?),
        None => None,
    };
    let status_addr = match &status_listener {
        Some(l) => Some(l.bound_addr()?),
        None => None,
    };
    let metrics_listener = match &config.metrics_addr {
        Some(addr) => Some(Listener::bind(addr)?),
        None => None,
    };
    let metrics_addr = match &metrics_listener {
        Some(l) => Some(l.bound_addr()?),
        None => None,
    };
    let metrics = CollectorMetrics::new();
    let journal_opts = JournalOptions {
        io: Arc::clone(&config.journal_io),
        budget: DiskBudget::with_limit(config.journal_quota_bytes),
        segment_bytes: config.journal_segment_bytes,
        counters: Some(metrics.journal_counters()),
    };

    // Crash recovery: replay every journal under the directory (root and
    // any shard subdirectory) into a pre-populated session before any
    // producer can connect. Each recovered session remembers which
    // directory it came from so its checkpoint is found next to it.
    let mut recovered = Vec::new();
    let mut first_id = 0u64;
    if let Some(root) = &config.journal_dir {
        std::fs::create_dir_all(root)?;
        for dir in journal_dirs(root) {
            first_id = first_id.max(max_anon_index(&dir));
            let (sessions, _unreadable) = journal::recover_dir_with(&dir, &journal_opts)?;
            recovered.extend(sessions.into_iter().map(|s| (dir.clone(), s)));
        }
        // Seed the disk budget with what already sits on disk (recovery
        // above may have deleted torn segments): the quota bounds the
        // durable state's total size, not just this process's writes.
        journal_opts.budget.seed(scan_disk_usage(root));
    }

    let shards = (0..config.shards)
        .map(|index| {
            let journal_dir = config.journal_dir.as_ref().map(|root| {
                if config.shards == 1 {
                    root.clone()
                } else {
                    root.join(format!("shard-{index}"))
                }
            });
            if let Some(dir) = &journal_dir {
                let _ = std::fs::create_dir_all(dir);
            }
            Shard {
                index,
                sessions: Mutex::new(Vec::new()),
                journal_dir,
                metrics: metrics.shard(index),
            }
        })
        .collect();

    let shared = Arc::new(Shared {
        shards,
        next_session_id: AtomicU64::new(first_id),
        rejected_sessions: AtomicU64::new(0),
        tracked_sessions: AtomicU64::new(0),
        received_rollup: Mutex::new(Rollup::new()),
        shutdown: AtomicBool::new(false),
        passes: Mutex::new(0),
        progress: Condvar::new(),
        forward: Mutex::new(ForwardState::default()),
        journal_opts: journal_opts.clone(),
        config: config.clone(),
        metrics: metrics.clone(),
    });

    // A spool left by an earlier run (it died before delivering a
    // rollup) merges straight back into the forwarded state. The merge
    // is idempotent, so a spool that did reach the parent is harmless.
    // Deliberately not subject to `max_rollup_sessions`: this is the
    // collector's own previously-accepted data, not an untrusted push.
    if let Some(root) = &config.journal_dir {
        if let Some(spooled) = outbox::load(root) {
            shared.received_rollup.lock().unwrap_or_else(|e| e.into_inner()).merge(&spooled);
            shared.forward.lock().unwrap_or_else(|e| e.into_inner()).spooled = true;
        }
    }

    for (dir, rec) in recovered {
        let id = shared.next_session_id.fetch_add(1, Ordering::Relaxed);
        // Recovered sessions count against the global admission bound
        // (they may exceed it — recovery never drops journaled data —
        // but further admissions then shed until capacity frees up).
        shared.tracked_sessions.fetch_add(1, Ordering::Relaxed);
        let shard = shared.shard_for(&rec.token, id);
        shard.metrics.sessions_total.inc();
        metrics.sessions_started.inc();
        let journal_file = rec.journal.path();
        let peer =
            format!("journal:{}", journal_file.file_name().and_then(|n| n.to_str()).unwrap_or("?"));
        // Recovered anonymous sessions keep the `anon-N` index of their
        // journal file as their rollup identity, so the key they were
        // already forwarded under before the crash stays theirs.
        let rollup_id = rec.stem.strip_prefix("anon-").and_then(|s| s.parse().ok()).unwrap_or(id);
        // O(tail) recovery: restore the fold from the checkpoint (when
        // one exists and belongs to this session) and stream only the
        // frames past its watermark through the assembler — never
        // materializing the journal in memory, and byte-identical to an
        // assembler that folded every frame live.
        let checkpoint =
            ckpt::load_checkpoint(&dir, &rec.stem).filter(|doc| doc.token == rec.token);
        let mut checkpointed = 0u64;
        let mut asm = match checkpoint {
            Some(doc) => {
                checkpointed = doc.frames;
                metrics.checkpoint_recoveries.inc();
                SessionAssembler::restore(doc, config.session_budget(), config.window_width)
            }
            None => config.new_assembler(),
        };
        // The journal's oldest surviving frame can sit past the
        // checkpoint watermark when absorbed segments were pruned and the
        // checkpoint was then lost (deleted or corrupted on disk). The
        // pruned prefix is unrecoverable; keep the global frame numbering
        // consistent by starting an empty fold at the first surviving
        // frame instead of silently renumbering.
        let oldest = rec.segments.first().map(|s| s.start).unwrap_or(0);
        if checkpointed < oldest {
            checkpointed = oldest;
            let placeholder = critlock_trace::CheckpointDoc {
                token: rec.token.clone(),
                frames: oldest,
                started: false,
                ended: false,
                events: 0,
                events_dropped: 0,
                windows_stale: false,
                trace: Trace::default(),
                window: None,
            };
            asm = SessionAssembler::restore(
                placeholder,
                config.session_budget(),
                config.window_width,
            );
        }
        asm.set_counters(metrics.events_in.clone(), metrics.events_budget_dropped.clone());
        let replayed = rec.replay_tail(checkpointed, |frame| asm.apply(frame)).unwrap_or(0);
        metrics.journal_frames_recovered.add(replayed);
        let mut journal = Some(rec.journal);
        let mut journal_degraded = false;
        // The checkpoint can be *ahead* of the surviving journal (the
        // session was journaling degraded, or absorbed segments were
        // pruned and the tail lost to a torn write). Appends must then
        // resume at the checkpoint watermark: open a fresh segment there,
        // or drop to journal-less degraded mode if even that fails.
        if let Some(j) = journal.as_mut() {
            if checkpointed > j.frames() && j.align_to(checkpointed).is_err() {
                journal = None;
                journal_degraded = true;
            }
        }
        let frames = journal.as_ref().map(|j| j.frames()).unwrap_or(0).max(checkpointed);
        let session = Arc::new(SessionState {
            id,
            rollup_id,
            peer,
            token: rec.token.clone(),
            stem: rec.stem.clone(),
            queue: FrameQueue::new(config.queue_capacity, config.backpressure),
            asm: Mutex::new(asm),
            dirty: AtomicBool::new(true),
            snapshot: Mutex::new(None),
            received_seq: AtomicU64::new(frames),
            attached: AtomicBool::new(false),
            journal: Mutex::new(journal),
            journal_degraded: AtomicBool::new(journal_degraded),
            checkpointed_frames: AtomicU64::new(checkpointed),
            conn: Mutex::new(None),
            bytes_ingested: AtomicU64::new(0),
            over_quota: AtomicBool::new(false),
            quota_counted: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            panic_app: config.panic_on_app.clone(),
            metrics: metrics.clone(),
            shard_metrics: shard.metrics.clone(),
        });
        shard.sessions.lock().unwrap_or_else(|e| e.into_inner()).push(session);
        shard.metrics.sessions_recovered.inc();
        metrics.sessions_recovered.inc();
    }

    let mut threads = Vec::new();

    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(ingest, shared)));
    }
    for index in 0..shared.shards.len() {
        let shared = Arc::clone(&shared);
        // Supervised: a panic that somehow escapes the per-session
        // quarantine (a bug in the loop itself) restarts the worker
        // instead of silently halting the shard's analysis forever.
        threads.push(std::thread::spawn(move || loop {
            let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                analysis_loop(Arc::clone(&shared), index)
            }));
            if run.is_ok() || shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            shared.metrics.worker_panics.inc();
            shared.shards[index].metrics.worker_panics.inc();
        }));
    }
    if let Some(listener) = status_listener {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || status_loop(listener, shared)));
    }
    if let Some(listener) = metrics_listener {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || metrics_loop(listener, shared)));
    }
    if shared.config.forward.is_some() {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || forward_loop(shared)));
    }

    Ok(CollectorHandle { ingest_addr, status_addr, metrics_addr, shared, threads })
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let shared = Arc::clone(&shared);
        // Reader threads are intentionally not joined on shutdown: they
        // exit when their producer disconnects.
        std::thread::spawn(move || session_reader(stream, peer, shared));
    }
}

/// Outcome of a connection's attempt to claim a session.
enum Claim {
    /// The connection owns the session; the flag says it resumed one.
    Attached(Arc<SessionState>, bool),
    /// The session exists but another connection already owns it.
    Busy,
    /// Admission control: the owning shard is at its session cap, the
    /// connection was shed before a session was created.
    Shed,
}

/// Look up the session a resumable handshake refers to, or create a new
/// session (resumable or anonymous) in its shard. Session ids come from
/// the dedicated [`Shared::next_session_id`] allocator — never from the
/// statistics counters — so concurrent connects always get unique,
/// monotonic ids. The owning shard's map lock is held across the
/// lookup-or-create, so two concurrent claims of one token cannot both
/// create; claims on different shards never contend.
fn claim_session(shared: &Arc<Shared>, token: &[u8], peer: String) -> Claim {
    if !token.is_empty() {
        // Token sessions route by the token hash — no id needed, so a
        // resume (the common reconnect path) allocates nothing.
        let shard = shared.shard_for(token, 0);
        let sessions = shard.sessions.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(session) = sessions.iter().find(|s| s.token == token).cloned() {
            drop(sessions);
            if session.attached.swap(true, Ordering::AcqRel) {
                // Another reader owns this session: reject the duplicate
                // connection; the producer retries with backoff.
                return Claim::Busy;
            }
            return Claim::Attached(session, true);
        }
        if shard_at_cap(shared, shard, sessions.len()) {
            return Claim::Shed;
        }
        let id = shared.next_session_id.fetch_add(1, Ordering::Relaxed);
        return create_session(shared, shard, sessions, id, token, peer);
    }
    if shared.shards.len() == 1 {
        // Anonymous, single shard: cap first, then allocate — exactly
        // the unsharded collector's order, so shed connections burn no
        // session id.
        let shard = &shared.shards[0];
        let sessions = shard.sessions.lock().unwrap_or_else(|e| e.into_inner());
        if shard_at_cap(shared, shard, sessions.len()) {
            return Claim::Shed;
        }
        let id = shared.next_session_id.fetch_add(1, Ordering::Relaxed);
        return create_session(shared, shard, sessions, id, token, peer);
    }
    // Anonymous, multiple shards: routed by id, so the id must exist
    // before the shard is known; an id burned on a shed connection is
    // harmless (ids only need to be unique and monotonic).
    let id = shared.next_session_id.fetch_add(1, Ordering::Relaxed);
    let shard = shared.shard_for(token, id);
    let sessions = shard.sessions.lock().unwrap_or_else(|e| e.into_inner());
    if shard_at_cap(shared, shard, sessions.len()) {
        return Claim::Shed;
    }
    create_session(shared, shard, sessions, id, token, peer)
}

/// Two-layer admission check: each shard owns an equal slice
/// (`ceil(max / shards)`) of the global cap so one hot shard cannot
/// starve the others, and the collector-wide total is additionally held
/// to `max_sessions` itself by reserving a slot in the global counter —
/// every caller that passes this check creates its session immediately
/// (under the shard map lock it already holds), so a reserved slot is
/// always consumed. Counts the shed on both the shard and the
/// collector-wide counter.
fn shard_at_cap(shared: &Shared, shard: &Shard, tracked: usize) -> bool {
    let Some(max) = shared.config.max_sessions else { return false };
    let shed = tracked >= max.div_ceil(shared.shards.len())
        || shared
            .tracked_sessions
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < max as u64).then_some(n + 1)
            })
            .is_err();
    if shed {
        shard.metrics.sessions_shed.inc();
        shared.metrics.sessions_shed.inc();
    }
    shed
}

/// Build a new session in `shard` (whose map lock the caller holds) and
/// attach the calling connection to it.
fn create_session(
    shared: &Arc<Shared>,
    shard: &Shard,
    mut sessions: std::sync::MutexGuard<'_, Vec<Arc<SessionState>>>,
    id: u64,
    token: &[u8],
    peer: String,
) -> Claim {
    shard.metrics.sessions_total.inc();
    shared.metrics.sessions_started.inc();
    let journal = shard.journal_dir.as_deref().and_then(|dir| {
        // A journal that cannot be created (disk quota, ENOSPC, ...)
        // degrades the session to unjournaled rather than refusing the
        // producer: availability over durability.
        SessionJournal::create(dir, token, id, shared.journal_opts.clone()).ok()
    });
    let journal_degraded = shard.journal_dir.is_some() && journal.is_none();
    let mut asm = shared.config.new_assembler();
    asm.set_counters(
        shared.metrics.events_in.clone(),
        shared.metrics.events_budget_dropped.clone(),
    );
    let session = Arc::new(SessionState {
        id,
        rollup_id: id,
        peer,
        token: token.to_vec(),
        stem: journal_stem(token, id),
        queue: FrameQueue::new(shared.config.queue_capacity, shared.config.backpressure),
        asm: Mutex::new(asm),
        dirty: AtomicBool::new(true),
        snapshot: Mutex::new(None),
        received_seq: AtomicU64::new(0),
        attached: AtomicBool::new(true),
        journal: Mutex::new(journal),
        journal_degraded: AtomicBool::new(journal_degraded),
        checkpointed_frames: AtomicU64::new(0),
        conn: Mutex::new(None),
        bytes_ingested: AtomicU64::new(0),
        over_quota: AtomicBool::new(false),
        quota_counted: AtomicBool::new(false),
        poisoned: AtomicBool::new(false),
        panic_app: shared.config.panic_on_app.clone(),
        metrics: shared.metrics.clone(),
        shard_metrics: shard.metrics.clone(),
    });
    sessions.push(Arc::clone(&session));
    Claim::Attached(session, false)
}

fn session_reader(stream: Stream, peer: String, shared: Arc<Shared>) {
    if let Some(idle) = shared.config.idle_timeout {
        let _ = stream.set_read_timeout(Some(idle));
    }
    // The write half for acks: the read half is about to be owned by the
    // frame decoder.
    let ack_conn = stream.try_clone().ok();

    // Handshake: magic + version (+ resume token) are read here, so an
    // incompatible producer is rejected before a session is created.
    let mut reader = match StreamReader::new(BufReader::new(stream)) {
        Ok(reader) => reader,
        Err(_) => {
            shared.rejected_sessions.fetch_add(1, Ordering::Relaxed);
            shared.metrics.sessions_rejected.inc();
            return;
        }
    };
    let handshake = reader.handshake().clone();

    let (session, resumed) = match claim_session(&shared, &handshake.token, peer) {
        Claim::Attached(session, resumed) => (session, resumed),
        Claim::Busy | Claim::Shed => return,
    };
    if resumed {
        session.shard_metrics.sessions_resumed.inc();
        shared.metrics.sessions_resumed.inc();
    }
    *session.conn.lock().unwrap_or_else(|e| e.into_inner()) = ack_conn;

    // Resumable producers get told where to (re)start: the next sequence
    // number this session expects. A session whose ack cannot be written
    // is severed — the producer would otherwise replay blindly.
    if handshake.resumable() {
        let acked = {
            let mut conn = session.conn.lock().unwrap_or_else(|e| e.into_inner());
            match conn.as_mut() {
                Some(c) => write_ack(c, session.received_seq.load(Ordering::Acquire)).is_ok(),
                None => false,
            }
        };
        if !acked {
            session.attached.store(false, Ordering::Release);
            return;
        }
    }

    // Frame loop. Frame i of this connection carries implicit sequence
    // number `start_seq + i`; frames the session already holds (a replay
    // overlap) are skipped, and the journal append happens *before* the
    // queue push so acknowledgements only ever cover durable frames.
    let mut seq = handshake.start_seq;
    let mut timed_out = false;
    let mut quota_cut = false;
    let mut conn_bytes = 0u64;
    let metrics = &shared.metrics;
    loop {
        match reader.next_frame_raw() {
            Ok(Some(frame)) => {
                metrics.frames_in.inc();
                // Per-session byte quota, counted across reconnects. The
                // frame that crosses the line is discarded (not queued,
                // not acknowledged) and ingest stops deterministically.
                let now = reader.payload_bytes();
                session.bytes_ingested.fetch_add(now - conn_bytes, Ordering::Relaxed);
                metrics.bytes_in.add(now - conn_bytes);
                conn_bytes = now;
                if let Some(quota) = shared.config.session_quota_bytes {
                    if session.bytes_ingested.load(Ordering::Relaxed) > quota {
                        metrics.frames_quota_dropped.inc();
                        session.over_quota.store(true, Ordering::Release);
                        if !session.quota_counted.swap(true, Ordering::AcqRel) {
                            session.shard_metrics.sessions_quota_stopped.inc();
                            metrics.sessions_quota_stopped.inc();
                        }
                        quota_cut = true;
                        break;
                    }
                }
                let expected = session.received_seq.load(Ordering::Acquire);
                if seq < expected {
                    metrics.frames_replayed.inc();
                    seq += 1;
                    continue;
                }
                if seq > expected {
                    // The producer skipped ahead — a protocol violation
                    // (or an ack it never saw). Force a re-handshake.
                    metrics.frames_gap_rejected.inc();
                    break;
                }
                let is_end = frame.is_end();
                {
                    let mut journal = session.journal.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(j) = journal.as_mut() {
                        if j.append_raw(&frame).is_err() {
                            // Disk quota or write failure: drop to
                            // journal-less degraded mode but keep
                            // ingesting — the session is no longer
                            // crash-resumable, which the published
                            // report and health both surface.
                            *journal = None;
                            session.journal_degraded.store(true, Ordering::Release);
                            session.dirty.store(true, Ordering::Release);
                        } else if is_end {
                            let _ = j.sync();
                        }
                    }
                }
                if session.queue.push(frame) {
                    metrics.frames_assembled.inc();
                } else {
                    metrics.frames_queue_dropped.inc();
                }
                seq += 1;
                session.received_seq.store(seq, Ordering::Release);
            }
            Ok(None) => break,
            Err(TraceError::Io(ref e)) if Stream::is_timeout(e) => {
                timed_out = true;
                break;
            }
            Err(TraceError::Decode(_)) => {
                // Frame CRC mismatch or corrupt framing: the connection is
                // unusable past this point; count it and sever.
                metrics.frames_crc_failed.inc();
                break;
            }
            Err(_) => break,
        }
    }
    if timed_out {
        session.shard_metrics.sessions_timed_out.inc();
        metrics.sessions_timed_out.inc();
    }

    // Tell a resumable producer how far this connection got (best effort
    // — the wire may already be gone), then release the session.
    let mut conn = session.conn.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(c) = conn.as_mut() {
        if handshake.resumable() {
            let _ = write_ack(c, session.received_seq.load(Ordering::Acquire));
        }
        if timed_out || quota_cut {
            let _ = c.shutdown_both();
        }
    }
    *conn = None;
    drop(conn);
    session.attached.store(false, Ordering::Release);
    session.dirty.store(true, Ordering::Release);
}

/// One shard's analysis loop: drain that shard's queues, enforce the
/// strict resource policy, republish snapshots on the configured
/// interval. Each shard gets an equal slice of the analysis worker pool.
fn analysis_loop(shared: Arc<Shared>, shard_index: usize) {
    // The snapshot analysis (repair + offline analyze) runs inside a
    // dedicated worker pool sized by `analysis_threads`, split across
    // shards; snapshots are bit-identical at any pool size, so this is
    // purely a latency knob.
    let workers = shared
        .config
        .analysis_threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    let workers = workers.div_ceil(shared.shards.len()).max(1);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build().ok();
    let mut last_publish = Instant::now();
    let mut last_checkpoint = Instant::now();
    loop {
        let stopping = shared.shutdown.load(Ordering::Acquire);
        let sessions: Vec<Arc<SessionState>> =
            shared.shards[shard_index].sessions.lock().unwrap_or_else(|e| e.into_inner()).clone();
        for session in &sessions {
            if session.poisoned.load(Ordering::Acquire) {
                // Quarantined: discard instead of assembling, so a
                // blocked producer is released and the queue never
                // wedges shutdown. The published snapshot is frozen.
                let _ = session.queue.drain();
                continue;
            }
            session.supervised(|| session.apply_pending());
            if shared.config.strict {
                // Strict resource policy: a session whose assembly had to
                // be truncated (event budget) or whose ingest hit the
                // byte quota is severed instead of served degraded.
                let over = session.asm.lock().unwrap_or_else(|e| e.into_inner()).degraded()
                    || session.over_quota.load(Ordering::Acquire);
                if over {
                    if let Some(conn) =
                        session.conn.lock().unwrap_or_else(|e| e.into_inner()).take()
                    {
                        let _ = conn.shutdown_both();
                    }
                }
            }
        }
        if stopping || last_publish.elapsed() >= shared.config.snapshot_interval {
            for session in &sessions {
                if session.dirty.load(Ordering::Acquire) {
                    // The panic guard sits *inside* the pool closure, so
                    // a panicking refresh quarantines one session without
                    // ever unwinding through rayon into this loop.
                    match &pool {
                        Some(pool) => {
                            pool.install(|| session.supervised(|| session.refresh_snapshot()));
                        }
                        None => {
                            session.supervised(|| session.refresh_snapshot());
                        }
                    }
                }
            }
            last_publish = Instant::now();
        }
        if shared.shards[shard_index].journal_dir.is_some()
            && (stopping || last_checkpoint.elapsed() >= shared.config.checkpoint_interval)
        {
            for session in &sessions {
                maybe_checkpoint(&shared, shard_index, session);
            }
            last_checkpoint = Instant::now();
        }
        shared.bump_pass();
        if stopping {
            break;
        }
        std::thread::sleep(shared.config.poll_interval);
    }
}

/// Checkpoint one session's fold state if it advanced since the last
/// checkpoint, then prune journal segments the checkpoint fully absorbs.
/// Failures are counted, never fatal: the journal stays authoritative
/// and recovery just replays more of it.
///
/// Skipped while the session's queue has dropped frames
/// ([`Backpressure::Drop`]): journaled frame numbers and the applied
/// frame count diverge once a journaled frame is shed before assembly,
/// so a checkpoint watermark would cover frames that were never folded.
fn maybe_checkpoint(shared: &Shared, shard_index: usize, session: &SessionState) {
    let Some(dir) = shared.shards[shard_index].journal_dir.as_ref() else { return };
    if session.poisoned.load(Ordering::Acquire) || session.queue.dropped() > 0 {
        return;
    }
    let doc = {
        let asm = session.asm.lock().unwrap_or_else(|e| e.into_inner());
        if asm.frames() == session.checkpointed_frames.load(Ordering::Acquire) {
            return;
        }
        asm.checkpoint_doc(&session.token)
    };
    let opts = &shared.journal_opts;
    match ckpt::write_checkpoint(opts.io.as_ref(), &opts.budget, dir, &session.stem, &doc) {
        Ok(()) => {
            shared.metrics.checkpoint_writes.inc();
            session.checkpointed_frames.store(doc.frames, Ordering::Release);
            if let Some(j) = session.journal.lock().unwrap_or_else(|e| e.into_inner()).as_mut() {
                let (pruned, _bytes) = j.prune_absorbed(doc.frames);
                shared.metrics.journal_segments_pruned.add(pruned);
            }
        }
        Err(_) => shared.metrics.checkpoint_failures.inc(),
    }
}

/// While on the fallback parent, every Nth tick probes the primary first
/// so forwarding fails back as soon as the primary recovers.
const FAILBACK_PROBE_TICKS: u64 = 4;

/// How long the forwarder sleeps before its next tick: the plain forward
/// interval while pushes succeed, the retry policy's capped exponential
/// backoff once they fail (failure `n` sleeps `retry.backoff(n - 1)`, so
/// the first retry is prompt and sustained failure settles at the
/// policy's cap instead of hammering a dead parent). Pure, so the
/// schedule is unit-testable.
fn forward_pause(retry: &RetryPolicy, interval: Duration, consecutive_failures: u64) -> Duration {
    if consecutive_failures == 0 {
        return interval;
    }
    let attempt = (consecutive_failures - 1).min(u64::from(u32::MAX)) as u32;
    retry.backoff(attempt)
}

/// The instant the forwarder's next tick is due, `pause` from `now`.
/// A pause too large for the monotonic clock to represent (e.g. a
/// `Duration::MAX` backoff cap from the CLI) saturates to `None` — "not
/// before shutdown" — instead of panicking on `Instant` overflow, the
/// same convention as [`CollectorHandle::wait_until`].
fn forward_deadline(now: Instant, pause: Duration) -> Option<Instant> {
    now.checked_add(pause)
}

/// One push attempt to one parent, counting the outcome.
fn try_push(
    shared: &Shared,
    addr: &Addr,
    rollup: &Rollup,
    faults: &Option<Arc<Mutex<FaultState>>>,
) -> bool {
    let timeout = Some(shared.config.forward_timeout);
    match crate::client::push_rollup_with(addr, rollup, timeout, faults) {
        Ok(_) => {
            shared.metrics.forward_pushes.inc();
            true
        }
        Err(_) => {
            shared.metrics.forward_failures.inc();
            false
        }
    }
}

/// A rollup was delivered: reset the failure streak, note which parent
/// took it, and clear the spool — everything spooled is now upstream.
fn record_forward_success(shared: &Shared, on_fallback: bool) {
    let mut fwd = shared.forward.lock().unwrap_or_else(|e| e.into_inner());
    fwd.consecutive_failures = 0;
    fwd.last_success = Some(Instant::now());
    fwd.using_fallback = on_fallback;
    if fwd.spooled {
        if let Some(root) = &shared.config.journal_dir {
            let opts = &shared.journal_opts;
            let _ = outbox::clear_with(opts.io.as_ref(), &opts.budget, root);
        }
        fwd.spooled = false;
    }
}

/// Persist the undelivered rollup to the outbox spool (when journaling
/// gives us a directory to spool into) and extend the failure streak.
/// Returns the streak length.
fn record_forward_failure(shared: &Shared, rollup: &Rollup) -> u64 {
    if let Some(root) = &shared.config.journal_dir {
        let opts = &shared.journal_opts;
        if outbox::save_with(opts.io.as_ref(), &opts.budget, root, rollup).is_ok() {
            shared.forward.lock().unwrap_or_else(|e| e.into_inner()).spooled = true;
        }
    }
    let mut fwd = shared.forward.lock().unwrap_or_else(|e| e.into_inner());
    fwd.consecutive_failures += 1;
    fwd.consecutive_failures
}

/// One forward tick: deliver `rollup` to the primary or the fallback,
/// driving the failover state machine. Returns whether it was delivered.
///
/// * On the primary: push there; a failure spools the rollup, and once
///   the streak reaches `forward_retry.max_attempts` the fallback (if
///   configured) is tried in the same tick — success fails over.
/// * On the fallback: every [`FAILBACK_PROBE_TICKS`]th tick probes the
///   primary first (success fails back), otherwise the fallback carries
///   the push; a tick with no delivery spools and extends the streak.
fn forward_tick(
    shared: &Shared,
    primary: &Addr,
    fallback: Option<&Addr>,
    rollup: &Rollup,
    faults: &Option<Arc<Mutex<FaultState>>>,
) -> bool {
    let using_fallback = {
        let mut fwd = shared.forward.lock().unwrap_or_else(|e| e.into_inner());
        fwd.ticks += 1;
        fwd.using_fallback
    };
    if !using_fallback {
        if try_push(shared, primary, rollup, faults) {
            record_forward_success(shared, false);
            return true;
        }
        let streak = record_forward_failure(shared, rollup);
        if let Some(fb) = fallback {
            if streak >= u64::from(shared.config.forward_retry.max_attempts.max(1))
                && try_push(shared, fb, rollup, faults)
            {
                record_forward_success(shared, true);
                return true;
            }
        }
        return false;
    }
    let probe = shared
        .forward
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .ticks
        .is_multiple_of(FAILBACK_PROBE_TICKS);
    if probe && try_push(shared, primary, rollup, faults) {
        record_forward_success(shared, false);
        return true;
    }
    if let Some(fb) = fallback {
        if try_push(shared, fb, rollup, faults) {
            record_forward_success(shared, true);
            return true;
        }
    }
    record_forward_failure(shared, rollup);
    false
}

/// Periodically push this collector's rollup to the parent collector's
/// status socket. At-least-once with an idempotent merge: a failed push
/// is spooled to the outbox and retried with capped exponential backoff
/// ([`CollectorConfig::forward_retry`]), failing over to
/// [`CollectorConfig::forward_fallback`] after a sustained streak and
/// probing its way back to the primary. Shutdown flushes the final
/// rollup with the same bounded retry budget — and spools it first, so
/// a child dying with every parent unreachable still loses nothing.
fn forward_loop(shared: Arc<Shared>) {
    let Some(primary) = shared.config.forward.clone() else { return };
    let fallback = shared.config.forward_fallback.clone();
    let retry = shared.config.forward_retry;
    let interval = shared.config.forward_interval;
    // One FaultState for the thread's lifetime: one-shot fault actions
    // are consumed across pushes, like the trace-push path across
    // reconnects.
    let faults = shared.config.forward_fault_plan.as_ref().map(FaultState::new);
    let step = Duration::from_millis(10).min(interval.max(Duration::from_millis(1)));
    loop {
        let streak = shared.forward.lock().unwrap_or_else(|e| e.into_inner()).consecutive_failures;
        let deadline = forward_deadline(Instant::now(), forward_pause(&retry, interval, streak));
        // Sleep in small steps so shutdown is prompt; an unrepresentable
        // deadline (saturated pause) sleeps until shutdown.
        while deadline.is_none_or(|d| Instant::now() < d)
            && !shared.shutdown.load(Ordering::Acquire)
        {
            std::thread::sleep(step);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let rollup = shared.rollup();
        if rollup.is_empty() {
            continue;
        }
        forward_tick(&shared, &primary, fallback.as_ref(), &rollup, &faults);
    }
    // Shutdown flush. Spool before the first attempt: the rollup is
    // durable even if the process is killed mid-flush.
    let rollup = shared.rollup();
    if rollup.is_empty() {
        return;
    }
    if let Some(root) = &shared.config.journal_dir {
        let opts = &shared.journal_opts;
        if outbox::save_with(opts.io.as_ref(), &opts.budget, root, &rollup).is_ok() {
            shared.forward.lock().unwrap_or_else(|e| e.into_inner()).spooled = true;
        }
    }
    for attempt in 0..shared.config.forward_retry.max_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(retry.backoff(attempt - 1));
        }
        if forward_tick(&shared, &primary, fallback.as_ref(), &rollup, &faults) {
            break;
        }
    }
}

/// Explicitly refuse a connection accepted in the window between the
/// shutdown flag being raised and the accept loop observing it. The
/// client gets a definite `err` line instead of a silently dropped
/// socket it might block on.
fn refuse_request(mut stream: Stream) -> io::Result<()> {
    stream.write_all(b"err collector shutting down\n")?;
    stream.flush()
}

fn status_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = refuse_request(stream);
            break;
        }
        let _ = serve_status_request(stream, &shared);
    }
}

fn metrics_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = refuse_request(stream);
            break;
        }
        let _ = serve_metrics_request(stream, &shared);
    }
}

/// Serve one scrape: read the request line (`metrics`, or an HTTP GET —
/// the reply is the same plaintext exposition either way) and write the
/// rendered metrics.
fn serve_metrics_request(stream: Stream, shared: &Shared) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let reply = shared.render_metrics();
    let mut stream = reader.into_inner();
    stream.write_all(reply.as_bytes())?;
    stream.flush()
}

/// Serve one status-socket request. The socket is line-oriented:
///
/// * `status` / `status json` — the status document (text / JSON);
/// * `health` / `health json` — the ok/degraded/unhealthy
///   classification (see [`crate::health`]);
/// * `rollup` — this collector's CLAG rollup, as raw bytes;
/// * `rollup-push LEN` followed by exactly LEN CLAG bytes — merge a
///   child collector's rollup into this one; replies `ok N\n` (N = the
///   parent's total retained session count after the merge) or
///   `err REASON\n`. A push whose bytes fail the CRC (a child died
///   mid-forward) is rejected whole, as is one that would lift the
///   retained state past [`CollectorConfig::max_rollup_sessions`]: the
///   parent keeps its last good rollup and the child re-sends next
///   tick.
fn serve_status_request(stream: Stream, shared: &Shared) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let request = line.trim();

    if request == "rollup" {
        let reply = shared.rollup().to_bytes();
        let mut stream = reader.into_inner();
        stream.write_all(&reply)?;
        return stream.flush();
    }
    if request == "health" || request == "health json" {
        let report = shared.health();
        let reply = if request == "health json" {
            report.render_json().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        } else {
            report.render_text()
        };
        let mut stream = reader.into_inner();
        stream.write_all(reply.as_bytes())?;
        return stream.flush();
    }
    if let Some(len) = request.strip_prefix("rollup-push ") {
        let reply = match receive_rollup(&mut reader, len) {
            Ok(rollup) => {
                let mut received = shared.received_rollup.lock().unwrap_or_else(|e| e.into_inner());
                let new = rollup
                    .sessions
                    .keys()
                    .filter(|key| !received.sessions.contains_key(*key))
                    .count();
                let cap = shared.config.max_rollup_sessions;
                if received.len() + new > cap {
                    format!("err rollup cap {cap} sessions reached\n")
                } else {
                    received.merge(&rollup);
                    format!("ok {}\n", received.len())
                }
            }
            Err(reason) => format!("err {reason}\n"),
        };
        let mut stream = reader.into_inner();
        stream.write_all(reply.as_bytes())?;
        return stream.flush();
    }

    let status = shared.status();
    let reply = match request {
        "status json" => {
            status.render_json().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        }
        _ => status.render_text(),
    };
    let mut stream = reader.into_inner();
    stream.write_all(reply.as_bytes())?;
    stream.flush()
}

/// Read and decode the body of a `rollup-push`: a declared length, then
/// that many CLAG bytes. Every failure mode (bad length, oversized push,
/// short read, framing/CRC mismatch) is folded into a printable reason —
/// the connection served an invalid push, not the collector's problem.
fn receive_rollup(reader: &mut impl Read, len: &str) -> Result<Rollup, String> {
    let len: usize = len.trim().parse().map_err(|_| "bad length".to_string())?;
    if len > MAX_ROLLUP_LEN + 64 {
        return Err(format!("rollup too large ({len} bytes)"));
    }
    let mut bytes = vec![0u8; len];
    reader.read_exact(&mut bytes).map_err(|e| format!("short read: {e}"))?;
    Rollup::from_bytes(&bytes).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_pause_is_interval_then_capped_exponential() {
        let retry = RetryPolicy::default();
        let interval = Duration::from_millis(500);
        assert_eq!(forward_pause(&retry, interval, 0), interval);
        // Failure n sleeps backoff(n - 1): doubling from the policy's
        // initial backoff up to its documented cap, never past it.
        assert_eq!(forward_pause(&retry, interval, 1), retry.initial_backoff);
        assert_eq!(forward_pause(&retry, interval, 2), retry.initial_backoff * 2);
        assert_eq!(forward_pause(&retry, interval, 3), retry.initial_backoff * 4);
        let mut prev = Duration::ZERO;
        for failures in 1..=64u64 {
            let pause = forward_pause(&retry, interval, failures);
            assert!(pause <= retry.max_backoff, "failure {failures} slept {pause:?}");
            assert!(pause >= prev, "backoff must be monotone");
            prev = pause;
        }
        assert_eq!(forward_pause(&retry, interval, 64), retry.max_backoff);
        // A huge streak must not overflow the shift.
        assert_eq!(forward_pause(&retry, interval, u64::MAX), retry.max_backoff);
    }

    #[test]
    fn forward_deadline_saturates_instead_of_panicking() {
        let now = Instant::now();
        // Ordinary pauses produce a real deadline.
        let soon = forward_deadline(now, Duration::from_millis(5)).expect("representable");
        assert!(soon > now);
        assert_eq!(forward_deadline(now, Duration::ZERO), Some(now));
        // An unbounded backoff cap (e.g. `--forward-max-backoff` set to
        // the maximum) previously panicked via `Instant + Duration`;
        // now it saturates to "no deadline before shutdown".
        let retry = RetryPolicy {
            max_backoff: Duration::MAX,
            initial_backoff: Duration::MAX,
            ..Default::default()
        };
        let pause = forward_pause(&retry, Duration::from_secs(1), 1);
        assert_eq!(forward_deadline(now, pause), None);
        assert_eq!(forward_deadline(now, Duration::MAX), None);
    }
}

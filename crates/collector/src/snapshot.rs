//! Periodic analysis snapshots published by the collector.
//!
//! A [`SessionSnapshot`] is computed by repairing the session's partial
//! trace ([`crate::assembler`]) and running the *full offline analysis*
//! (`critlock_analysis::analyze`) over it, so for a completed session the
//! published critical-lock ranking and critical-path length are exactly
//! what `critlock analyze` reports on the same trace. The forward online
//! pass runs alongside as the paper's run-time variant; since the
//! assembler maintains it incrementally, each snapshot reads the current
//! frontier (extended by only the events applied since the last snapshot)
//! instead of re-walking the whole session. When windowing is enabled the
//! snapshot also carries the session's closed sliding-window digests.

use crate::assembler::SessionAssembler;
use critlock_analysis::{analyze, AnalysisReport};
use critlock_trace::rollup::WindowDigest;
use critlock_trace::Ts;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Point-in-time analysis of one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Collector-assigned session id.
    pub session: u64,
    /// Peer address the session connected from.
    pub peer: String,
    /// Whether the producer ended the session gracefully.
    pub ended: bool,
    /// Frames folded into the session so far.
    pub frames: u64,
    /// Events folded into the session so far.
    pub events: u64,
    /// Frames currently queued and not yet analyzed.
    pub queue_depth: u64,
    /// Deepest the session's queue has ever been.
    pub queue_high_water: u64,
    /// Frames dropped under the `Drop` backpressure policy.
    pub dropped_frames: u64,
    /// Critical-path length estimated by the forward online pass.
    pub online_cp_length: Ts,
    /// Closed sliding-window digests (oldest first), when the collector
    /// runs with `--window-secs`. A pre-windowing snapshot (or a session
    /// without windowing) deserializes to an empty list.
    #[serde(default)]
    pub windows: Vec<WindowDigest>,
    /// The offline analysis of the repaired partial trace — identical to
    /// `critlock analyze` output once the session has ended.
    pub report: AnalysisReport,
}

/// One ingestion shard's slice of the collector counters. The global
/// fields on [`CollectorStatus`] are exact sums over these (plus the
/// pre-handshake `rejected_sessions`, which has no shard to land on).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStatus {
    /// Shard index (`0..shards`).
    pub shard: u64,
    /// Sessions currently tracked by this shard.
    pub sessions: u64,
    /// Sessions accepted (or recovered) into this shard over its lifetime.
    pub sessions_total: u64,
    /// Connections on this shard severed by the idle timeout.
    pub timed_out_sessions: u64,
    /// Reconnections that resumed one of this shard's sessions.
    pub resumed_sessions: u64,
    /// Sessions recovered into this shard from journals at startup.
    pub recovered_sessions: u64,
    /// Connections shed by this shard's admission cap.
    pub shed_sessions: u64,
    /// Sessions on this shard stopped by the byte quota.
    pub quota_stopped_sessions: u64,
    /// Analysis worker panics caught on this shard; each one quarantined
    /// the poisoned session. A pre-supervision status document
    /// deserializes to zero.
    #[serde(default)]
    pub worker_panics: u64,
    /// Frames currently queued across this shard's sessions.
    pub queue_depth: u64,
    /// Deepest any of this shard's session queues has ever been.
    pub queue_high_water: u64,
}

/// Live state of the rollup forwarder, surfaced in the status document
/// and in health classification.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ForwardStatus {
    /// Successful rollup pushes since startup.
    pub pushes: u64,
    /// Failed push attempts since startup (primary or fallback).
    pub failures: u64,
    /// Consecutive fully-failed forward ticks (0 while healthy). Resets
    /// on any successful push, to either parent.
    pub consecutive_failures: u64,
    /// Seconds since the last successful push; `None` before the first.
    pub last_success_age_secs: Option<u64>,
    /// Whether the forwarder has failed over to the fallback parent.
    pub using_fallback: bool,
    /// Whether an undelivered rollup is currently spooled to
    /// `outbox.clag`.
    pub spooled: bool,
}

/// Everything the status endpoint publishes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectorStatus {
    /// Stream protocol version the collector speaks.
    pub protocol_version: u64,
    /// Sessions accepted over the collector's lifetime.
    pub sessions_total: u64,
    /// Connections rejected at the handshake (bad magic or an
    /// incompatible protocol version).
    pub rejected_sessions: u64,
    /// Connections severed because no frame arrived within the idle
    /// timeout.
    pub timed_out_sessions: u64,
    /// Reconnections that successfully resumed an existing session by
    /// token.
    pub resumed_sessions: u64,
    /// Sessions recovered from write-ahead journals at startup.
    pub recovered_sessions: u64,
    /// Connections shed by admission control (the collector was at its
    /// `max_sessions` cap when they arrived).
    #[serde(default)]
    pub shed_sessions: u64,
    /// Sessions whose ingest was stopped by the per-session byte quota.
    #[serde(default)]
    pub quota_stopped_sessions: u64,
    /// Analysis worker panics caught collector-wide (sum of the shard
    /// counters). Each one quarantined exactly one session.
    #[serde(default)]
    pub worker_panics: u64,
    /// Live forwarder state, present when this collector forwards its
    /// rollup to a parent. A pre-resilience status document (or a
    /// non-forwarding collector) deserializes to `None`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub forward: Option<ForwardStatus>,
    /// Per-shard counter slices, one per ingestion shard, ordered by
    /// shard index. A pre-sharding status document deserializes to an
    /// empty list.
    #[serde(default)]
    pub shards: Vec<ShardStatus>,
    /// One snapshot per live or completed session, ordered by session id.
    pub sessions: Vec<SessionSnapshot>,
}

impl SessionSnapshot {
    /// Analyze the session's current state. Mutable because computing a
    /// snapshot advances the assembler's incremental machinery: the
    /// online frontier folds events applied since the last snapshot, and
    /// newly closed sliding windows are analyzed and cached.
    pub fn compute(
        session: u64,
        peer: String,
        asm: &mut SessionAssembler,
        queue_depth: u64,
        queue_high_water: u64,
        dropped_frames: u64,
    ) -> Self {
        let trace = asm.finalize();
        let report = analyze(&trace);
        let online = asm.online_horizon_report();
        asm.advance_windows(&trace);
        SessionSnapshot {
            session,
            peer,
            ended: asm.ended(),
            frames: asm.frames(),
            events: asm.events(),
            queue_depth,
            queue_high_water,
            dropped_frames,
            online_cp_length: online.cp_length,
            windows: asm.windows(),
            report,
        }
    }
}

impl CollectorStatus {
    /// Render the status as the human-readable text served by the status
    /// socket (one session block per session, top locks by CP time).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critlock collector: protocol v{}, {} session(s)",
            self.protocol_version, self.sessions_total
        );
        if self.rejected_sessions
            + self.timed_out_sessions
            + self.resumed_sessions
            + self.recovered_sessions
            + self.shed_sessions
            + self.quota_stopped_sessions
            + self.worker_panics
            > 0
        {
            let _ = writeln!(
                out,
                "  rejected={} timed_out={} resumed={} recovered={} shed={} quota_stopped={} worker_panics={}",
                self.rejected_sessions,
                self.timed_out_sessions,
                self.resumed_sessions,
                self.recovered_sessions,
                self.shed_sessions,
                self.quota_stopped_sessions,
                self.worker_panics,
            );
        }
        if let Some(fwd) = &self.forward {
            let age = match fwd.last_success_age_secs {
                Some(secs) => format!("{secs}s ago"),
                None => "never".to_string(),
            };
            let _ = writeln!(
                out,
                "  forward: pushes={} failures={} consecutive_failures={} last_success={}{}{}",
                fwd.pushes,
                fwd.failures,
                fwd.consecutive_failures,
                age,
                if fwd.using_fallback { " (on fallback)" } else { "" },
                if fwd.spooled { " (rollup spooled)" } else { "" },
            );
        }
        if self.shards.len() > 1 {
            for shard in &self.shards {
                let _ = writeln!(
                    out,
                    "  shard {}: sessions={} total={} timed_out={} resumed={} recovered={} shed={} quota_stopped={} queued={} high_water={}",
                    shard.shard,
                    shard.sessions,
                    shard.sessions_total,
                    shard.timed_out_sessions,
                    shard.resumed_sessions,
                    shard.recovered_sessions,
                    shard.shed_sessions,
                    shard.quota_stopped_sessions,
                    shard.queue_depth,
                    shard.queue_high_water,
                );
            }
        }
        for snap in &self.sessions {
            let state = if snap.ended { "ended" } else { "live" };
            let _ = writeln!(
                out,
                "session {} [{}{}] {} app={:?} threads={} frames={} events={} queued={} high_water={} dropped={}",
                snap.session,
                state,
                if snap.report.degraded { " degraded" } else { "" },
                snap.peer,
                snap.report.app,
                snap.report.num_threads,
                snap.frames,
                snap.events,
                snap.queue_depth,
                snap.queue_high_water,
                snap.dropped_frames,
            );
            let _ = writeln!(
                out,
                "  cp_length={} (online estimate {})  makespan={}  coverage={:.1}%",
                snap.report.cp_length,
                snap.online_cp_length,
                snap.report.makespan,
                snap.report.coverage * 100.0,
            );
            if let Some(last) = snap.windows.last() {
                let top = last
                    .locks
                    .iter()
                    .max_by(|a, b| a.cp_time.cmp(&b.cp_time).then_with(|| b.name.cmp(&a.name)))
                    .map(|l| {
                        format!(
                            " top={} cp%={:.2}",
                            l.name,
                            l.cp_share_ppm as f64 / critlock_trace::rollup::PPM as f64 * 100.0
                        )
                    })
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  windows: {} closed; last [{}..{}] cp_length={}{}",
                    snap.windows.len(),
                    last.lo,
                    last.hi,
                    last.cp_length,
                    top,
                );
            }
            for lock in snap.report.locks.iter().take(5) {
                let _ = writeln!(
                    out,
                    "  lock {:<16} cp_time={:<10} cp%={:<6.2} cont_prob_on_cp%={:<6.2} invo_on_cp={}",
                    lock.name,
                    lock.cp_time,
                    lock.cp_time_frac * 100.0,
                    lock.cont_prob_on_cp * 100.0,
                    lock.invocations_on_cp,
                );
            }
        }
        out
    }

    /// Render the status as JSON (the `status json` reply).
    pub fn render_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Parse a JSON status reply (used by tests and `critlock status`).
    pub fn parse_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_trace::stream::Frame;
    use critlock_trace::TraceBuilder;

    fn assembled() -> SessionAssembler {
        let mut b = TraceBuilder::new("snap");
        let l = b.lock("hot");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 4).exit_at(5);
        b.on(t1).work(1).cs_blocked(l, 4, 2).work(3).exit();
        let trace = b.build().unwrap();

        let mut buf = Vec::new();
        critlock_trace::stream::write_trace(&trace, &mut buf).unwrap();
        let mut reader =
            critlock_trace::stream::StreamReader::new(std::io::Cursor::new(buf)).unwrap();
        let mut asm = SessionAssembler::new();
        while let Some(frame) = reader.next_frame().unwrap() {
            asm.apply(frame);
        }
        asm
    }

    #[test]
    fn snapshot_matches_offline_analysis_exactly() {
        let mut asm = assembled();
        let snap = SessionSnapshot::compute(1, "test".into(), &mut asm, 0, 0, 0);
        let offline = analyze(asm.partial());
        assert_eq!(snap.report, offline);
        assert_eq!(snap.report.top_critical_lock().unwrap().name, "hot");
        // The incrementally maintained online pass agrees with a
        // from-scratch forward pass of the same events.
        assert_eq!(
            snap.online_cp_length,
            critlock_analysis::online_analyze(asm.partial()).cp_length
        );
    }

    #[test]
    fn windowed_snapshot_carries_closed_digests() {
        let mut b = TraceBuilder::new("snap-windows");
        let l = b.lock("hot");
        let t0 = b.thread("T0", 0);
        b.on(t0).cs(l, 8).work(30).exit();
        let trace = b.build().unwrap();
        let mut buf = Vec::new();
        critlock_trace::stream::write_trace(&trace, &mut buf).unwrap();
        let mut reader =
            critlock_trace::stream::StreamReader::new(std::io::Cursor::new(buf)).unwrap();
        let mut asm = SessionAssembler::new();
        asm.set_window(10);
        while let Some(frame) = reader.next_frame().unwrap() {
            asm.apply(frame);
        }
        let snap = SessionSnapshot::compute(1, "test".into(), &mut asm, 0, 0, 0);
        assert!(!snap.windows.is_empty(), "ended session must close its windows");
        // Oracle: each closed window is exactly clip + analyze + digest.
        for w in &snap.windows {
            let report = analyze(&critlock_analysis::clip(&trace, w.lo, w.hi));
            assert_eq!(*w, critlock_analysis::digest_window(w.index, w.lo, w.hi, &report));
        }
        let text = CollectorStatus {
            protocol_version: critlock_trace::stream::STREAM_VERSION,
            sessions_total: 1,
            rejected_sessions: 0,
            timed_out_sessions: 0,
            resumed_sessions: 0,
            recovered_sessions: 0,
            shed_sessions: 0,
            quota_stopped_sessions: 0,
            worker_panics: 0,
            forward: None,
            shards: Vec::new(),
            sessions: vec![snap],
        }
        .render_text();
        assert!(text.contains("windows:"), "window line missing:\n{text}");
    }

    #[test]
    fn status_json_roundtrips() {
        let mut asm = assembled();
        let status = CollectorStatus {
            protocol_version: critlock_trace::stream::STREAM_VERSION,
            sessions_total: 1,
            rejected_sessions: 0,
            timed_out_sessions: 1,
            resumed_sessions: 2,
            recovered_sessions: 3,
            shed_sessions: 4,
            quota_stopped_sessions: 5,
            worker_panics: 1,
            forward: Some(ForwardStatus {
                pushes: 9,
                failures: 2,
                consecutive_failures: 1,
                last_success_age_secs: Some(3),
                using_fallback: true,
                spooled: true,
            }),
            shards: vec![
                ShardStatus { shard: 0, sessions: 1, sessions_total: 1, ..Default::default() },
                ShardStatus { shard: 1, shed_sessions: 4, ..Default::default() },
            ],
            sessions: vec![SessionSnapshot::compute(7, "unix".into(), &mut asm, 3, 4, 2)],
        };
        let json = status.render_json().unwrap();
        let parsed = CollectorStatus::parse_json(&json).unwrap();
        assert_eq!(parsed, status);
        let text = status.render_text();
        assert!(text.contains("hot"));
        assert!(text.contains("shard 1"), "multi-shard status must list shards:\n{text}");
        assert!(text.contains("on fallback"), "forward line missing:\n{text}");
        assert!(text.contains("worker_panics=1"), "panic counter missing:\n{text}");
    }

    #[test]
    fn single_shard_status_text_has_no_shard_lines() {
        let status = CollectorStatus {
            protocol_version: critlock_trace::stream::STREAM_VERSION,
            sessions_total: 0,
            rejected_sessions: 0,
            timed_out_sessions: 0,
            resumed_sessions: 0,
            recovered_sessions: 0,
            shed_sessions: 0,
            quota_stopped_sessions: 0,
            worker_panics: 0,
            forward: None,
            shards: vec![ShardStatus::default()],
            sessions: Vec::new(),
        };
        assert!(!status.render_text().contains("shard"));
    }

    #[test]
    fn partial_session_snapshot_is_well_formed() {
        let mut asm = SessionAssembler::new();
        asm.apply(Frame::Start { meta: Default::default() });
        // No threads/events at all: analysis of an empty trace must not
        // panic and reports zero everything.
        let snap = SessionSnapshot::compute(0, "p".into(), &mut asm, 0, 0, 0);
        assert_eq!(snap.report.cp_length, 0);
        assert!(!snap.ended);
    }
}

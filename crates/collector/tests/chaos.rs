//! Fleet chaos harness: kill parents mid-forward, spool through dead
//! parents, fail over and back, inject transport faults on the
//! rollup-push wire, and panic analysis workers — always checking the
//! same invariant: the surviving parent's fleet view equals the union of
//! per-child offline analyses, with no session double-counted.

use critlock_aggregate::FleetReport;
use critlock_analysis::{analyze, digest_report};
use critlock_collector::{
    fetch_health, fetch_rollup, outbox, push_with, start, Addr, CollectorConfig, CollectorHandle,
    CollectorStatus, HealthClass, PushOptions,
};
use critlock_trace::rollup::Rollup;
use critlock_trace::{Anomaly, FaultPlan, RetryPolicy, Trace};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn test_config() -> CollectorConfig {
    let mut config = CollectorConfig::new(Addr::parse("127.0.0.1:0").unwrap());
    config.status_addr = Some(Addr::parse("127.0.0.1:0").unwrap());
    config
}

/// A child tuned for chaos: fast forward ticks, fast capped backoff, a
/// short push timeout, so every failure mode plays out in milliseconds.
fn chaos_child(parent: Addr) -> CollectorConfig {
    let mut config = test_config();
    config.forward = Some(parent);
    config.forward_interval = Duration::from_millis(10);
    config.forward_timeout = Duration::from_millis(500);
    config.forward_retry = RetryPolicy {
        max_attempts: 2,
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
    };
    config.collector_id = "chaos-child".into();
    config
}

/// A fixed unix status address, so a crashed parent can be restarted on
/// the *same* address its children keep pushing to.
fn unix_addr(name: &str) -> Addr {
    let path = std::env::temp_dir().join(format!("clk-chaos-{name}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    Addr::parse(&format!("unix:{}", path.display())).unwrap()
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("critlock-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[track_caller]
fn wait_for(handle: &CollectorHandle, what: &str, pred: impl Fn(&CollectorStatus) -> bool) {
    assert!(handle.wait_until(Duration::from_secs(30), pred), "timeout waiting for {what}");
}

/// Three distinct sessions; "hot" dominates the critical path in two.
fn fleet_traces() -> Vec<(Vec<u8>, Trace)> {
    let mut out = Vec::new();
    for (i, (hot_hold, cold_hold)) in [(40u64, 5u64), (30, 8), (6, 25)].iter().enumerate() {
        let mut b = critlock_trace::TraceBuilder::new(format!("chaos-app-{i}"));
        let hot = b.lock("hot");
        let cold = b.lock("cold");
        let t0 = b.thread("main", 0);
        let t1 = b.thread("worker", 0);
        b.on(t0).cs(hot, *hot_hold).cs(cold, *cold_hold).work(2).exit();
        b.on(t1).work(3).cs_blocked(hot, 3 + *hot_hold, *hot_hold / 2).work(1).exit();
        out.push((format!("chaos-session-{i}").into_bytes(), b.build().unwrap()));
    }
    out
}

fn push_fleet(handle: &CollectorHandle, traces: &[(Vec<u8>, Trace)]) {
    for (token, trace) in traces {
        push_with(
            handle.ingest_addr(),
            trace,
            &PushOptions {
                token: Some(token.clone()),
                retry: RetryPolicy::none(),
                ..PushOptions::default()
            },
        )
        .unwrap();
    }
    wait_for(handle, "all fleet sessions to end", |s| {
        s.sessions.len() == traces.len() && s.sessions.iter().all(|snap| snap.ended)
    });
}

/// The ground truth every chaos scenario must converge to: each session
/// analyzed offline and digested under its token, union-merged.
fn offline_union(traces: &[(Vec<u8>, Trace)]) -> Rollup {
    let mut rollup = Rollup::new();
    for (token, trace) in traces {
        let key = String::from_utf8(token.clone()).unwrap();
        rollup.insert(digest_report(&key, &analyze(trace)));
    }
    rollup
}

#[track_caller]
fn assert_union(rollup: &Rollup, union: &Rollup, what: &str) {
    assert_eq!(rollup.to_bytes(), union.to_bytes(), "{what}: rollup must be the offline union");
    let (got, want) = (FleetReport::from_rollup(rollup), FleetReport::from_rollup(union));
    assert_eq!(got, want, "{what}: fleet report must match the offline union");
    assert_eq!(got.to_json(), want.to_json());
    assert_eq!(got.sessions, 3, "{what}: no session may be double-counted");
}

#[track_caller]
fn wait_rollup(status_addr: &Addr, union: &Rollup, what: &str) -> Rollup {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(rollup) = fetch_rollup(status_addr, Some(Duration::from_secs(5))) {
            if rollup.to_bytes() == union.to_bytes() {
                break rollup;
            }
        }
        assert!(Instant::now() < deadline, "timeout waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Parent dies mid-forward and restarts on the same address: the child's
/// at-least-once re-pushes rebuild the parent's fleet view from nothing,
/// byte-identical to the offline union — nothing lost, nothing counted
/// twice.
#[test]
fn parent_restart_mid_forward_recovers_the_union() {
    let parent_status = unix_addr("restart");
    let mut parent_config = CollectorConfig::new(Addr::parse("127.0.0.1:0").unwrap());
    parent_config.status_addr = Some(parent_status.clone());
    let parent = start(parent_config.clone()).unwrap();

    let child = start(chaos_child(parent_status.clone())).unwrap();
    let traces = fleet_traces();
    let union = offline_union(&traces);
    push_fleet(&child, &traces);
    wait_rollup(&parent_status, &union, "first parent to assemble the union");

    // Kill the parent abruptly (no drain) while the child keeps pushing.
    parent.crash();
    std::thread::sleep(Duration::from_millis(50));

    // Restart on the same address: the child's forwarder reconnects and
    // re-pushes its full rollup; the merge is idempotent.
    let parent = start(parent_config).unwrap();
    let rollup = wait_rollup(&parent_status, &union, "restarted parent to recover the union");
    assert_union(&rollup, &union, "restarted parent");
    let status = child.status();
    let fwd = status.forward.expect("forwarding child must report forward status");
    assert!(fwd.pushes > 0, "child must have delivered pushes");
    child.shutdown();
    parent.shutdown();
}

/// Every parent is dead when the child shuts down: the final flush fails
/// and the rollup lands in the outbox spool instead. A restarted
/// collector on the same journal re-serves it, and loading the spool
/// directly (what `critlock aggregate <dir>` does) yields the union.
#[test]
fn child_shutdown_with_dead_parent_spools_the_union() {
    let dir = scratch_dir("spool");
    let dead_parent = unix_addr("dead-parent"); // nothing listens here
    let mut config = chaos_child(dead_parent);
    config.journal_dir = Some(dir.clone());
    let child = start(config.clone()).unwrap();

    let traces = fleet_traces();
    let union = offline_union(&traces);
    push_fleet(&child, &traces);
    // Let at least one forward tick fail so the failure path (not just
    // the shutdown flush) exercises the spool.
    let deadline = Instant::now() + Duration::from_secs(30);
    while child.status().forward.as_ref().is_none_or(|f| f.consecutive_failures == 0) {
        assert!(Instant::now() < deadline, "timeout waiting for a failed push");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.shutdown();

    // The spool holds exactly the union.
    let spooled = outbox::load(&dir).expect("shutdown with dead parent must leave a spool");
    assert_union(&spooled, &union, "outbox spool");

    // A restarted collector merges the spool back into its rollup, so
    // nothing depends on a parent ever having been reachable. (The
    // journaled sessions recover too; the merge keyed by session stays
    // the plain union.)
    let restarted = start(config).unwrap();
    wait_for(&restarted, "journaled sessions to recover", |s| s.recovered_sessions == 3);
    let rollup = restarted.rollup();
    assert_union(&rollup, &union, "restarted child");
    assert!(restarted.status().forward.is_some_and(|f| f.spooled), "spool must be reported");
    restarted.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Primary dies → after the retry budget the forwarder fails over to the
/// fallback parent; when the primary comes back, a probe tick fails back.
/// Both parents end up holding the exact union.
#[test]
fn forwarder_fails_over_to_fallback_and_probes_back() {
    let primary_status = unix_addr("failover-primary");
    let mut primary_config = CollectorConfig::new(Addr::parse("127.0.0.1:0").unwrap());
    primary_config.status_addr = Some(primary_status.clone());
    let primary = start(primary_config.clone()).unwrap();

    let fallback = start(test_config()).unwrap();
    let fallback_status = fallback.status_addr().unwrap().clone();

    let mut child_config = chaos_child(primary_status.clone());
    child_config.forward_fallback = Some(fallback_status.clone());
    let child = start(child_config).unwrap();

    let traces = fleet_traces();
    let union = offline_union(&traces);
    push_fleet(&child, &traces);
    wait_rollup(&primary_status, &union, "primary to assemble the union");
    assert!(!child.status().forward.unwrap().using_fallback);

    // Primary dies: the forwarder must fail over and deliver the same
    // union to the fallback parent.
    primary.crash();
    let deadline = Instant::now() + Duration::from_secs(30);
    while !child.status().forward.as_ref().is_some_and(|f| f.using_fallback) {
        assert!(Instant::now() < deadline, "timeout waiting for failover");
        std::thread::sleep(Duration::from_millis(5));
    }
    let rollup = wait_rollup(&fallback_status, &union, "fallback to assemble the union");
    assert_union(&rollup, &union, "fallback parent");
    // On the fallback, health says degraded — the fleet is serving, but
    // an operator needs to know the primary is gone.
    assert_eq!(child.health().class, HealthClass::Degraded);

    // Primary returns on the same address: a probe tick must fail back.
    let primary = start(primary_config).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while child.status().forward.as_ref().is_some_and(|f| f.using_fallback) {
        assert!(Instant::now() < deadline, "timeout waiting for fail-back");
        std::thread::sleep(Duration::from_millis(5));
    }
    let rollup = wait_rollup(&primary_status, &union, "recovered primary to reassemble the union");
    assert_union(&rollup, &union, "recovered primary");
    child.shutdown();
    primary.shutdown();
    fallback.shutdown();
}

/// Deterministic transport faults on the rollup-push wire — every
/// built-in plan plus low-offset cut/flip specs guaranteed to hit the
/// small push body. One-shot faults are consumed, later pushes are
/// clean, and the parent always converges to the byte-exact union.
#[test]
fn forward_chaos_matrix_converges_to_the_union() {
    let traces = fleet_traces();
    let union = offline_union(&traces);
    let mut plans = FaultPlan::all_builtin();
    plans.push(FaultPlan::resolve("cut@64").unwrap());
    plans.push(FaultPlan::resolve("flip@40;cut@200").unwrap());
    for plan in plans {
        let name = plan.name.clone();
        let parent = start(test_config()).unwrap();
        let parent_status = parent.status_addr().unwrap().clone();
        let mut child_config = chaos_child(parent_status.clone());
        child_config.forward_fault_plan = Some(plan);
        let child = start(child_config).unwrap();
        push_fleet(&child, &traces);
        let rollup = wait_rollup(&parent_status, &union, &format!("plan {name} to converge"));
        assert_union(&rollup, &union, &format!("plan {name}"));
        child.shutdown();
        // The child's death changes nothing the parent already merged.
        let after = fetch_rollup(&parent_status, Some(Duration::from_secs(5))).unwrap();
        assert_union(&after, &union, &format!("plan {name} after child shutdown"));
        parent.shutdown();
    }
}

/// An analysis worker panic quarantines exactly the poisoned session:
/// its last state is served degraded with a typed anomaly, the panic is
/// counted in metrics/status/health, and every other session — including
/// ones admitted afterwards — streams and analyzes normally.
#[test]
fn worker_panic_quarantines_only_the_poisoned_session() {
    let mut config = test_config();
    config.snapshot_interval = Duration::from_millis(20);
    config.panic_on_app = Some("chaos-app-1".into());
    let handle = start(config).unwrap();

    let traces = fleet_traces();
    for (token, trace) in &traces {
        push_with(
            handle.ingest_addr(),
            trace,
            &PushOptions {
                token: Some(token.clone()),
                retry: RetryPolicy::none(),
                ..PushOptions::default()
            },
        )
        .unwrap();
    }
    // The healthy sessions end; the poisoned one is quarantined instead.
    wait_for(&handle, "healthy sessions to end and the panic to be caught", |s| {
        s.worker_panics == 1 && s.sessions.iter().filter(|snap| snap.ended).count() == 2
    });

    let status = handle.status();
    assert_eq!(status.worker_panics, 1);
    assert_eq!(status.shards.iter().map(|s| s.worker_panics).sum::<u64>(), 1);
    let poisoned: Vec<_> = status
        .sessions
        .iter()
        .filter(|snap| {
            snap.report.anomalies.iter().any(|a| matches!(a, Anomaly::AnalysisPanicked { .. }))
        })
        .collect();
    assert_eq!(poisoned.len(), 1, "exactly one session quarantined");
    assert!(poisoned[0].report.degraded, "quarantined session must be served degraded");
    let poisoned_id = poisoned[0].session;
    for snap in &status.sessions {
        if snap.session != poisoned_id {
            assert!(snap.ended, "healthy session {} must finish analysis", snap.session);
            assert!(!snap
                .report
                .anomalies
                .iter()
                .any(|a| { matches!(a, Anomaly::AnalysisPanicked { .. }) }));
        }
    }

    // Quarantine is visible on every surface: labelled metric, health
    // classification, and the finalized-trace API refusing the session.
    let metrics = handle.metrics_text();
    assert!(
        metrics.contains("critlock_shard_worker_panics_total{shard=\"0\"} 1"),
        "missing panic counter in metrics:\n{metrics}"
    );
    let health = handle.health();
    assert_eq!(health.class, HealthClass::Degraded);
    assert!(health.findings.iter().any(|f| f.contains("panic")), "{:?}", health.findings);
    assert!(handle.session_trace(poisoned_id).is_none());

    // The shard keeps admitting and analyzing new sessions.
    let mut b = critlock_trace::TraceBuilder::new("chaos-late");
    let l = b.lock("late");
    let t = b.thread("main", 0);
    b.on(t).cs(l, 10).work(1).exit();
    let late = b.build().unwrap();
    push_with(
        handle.ingest_addr(),
        &late,
        &PushOptions {
            token: Some(b"chaos-late-session".to_vec()),
            retry: RetryPolicy::none(),
            ..PushOptions::default()
        },
    )
    .unwrap();
    wait_for(&handle, "a post-quarantine session to end", |s| {
        s.sessions.iter().filter(|snap| snap.ended).count() == 3
    });
    handle.shutdown();
}

/// `critlock health` semantics end to end: ok while the parent answers,
/// degraded within one forward interval of the parent dying, ok again
/// after the parent restarts — with the probe served over the socket.
#[test]
fn health_flips_on_parent_death_and_recovery() {
    let parent_status = unix_addr("health-parent");
    let mut parent_config = CollectorConfig::new(Addr::parse("127.0.0.1:0").unwrap());
    parent_config.status_addr = Some(parent_status.clone());
    let parent = start(parent_config.clone()).unwrap();

    let child = start(chaos_child(parent_status.clone())).unwrap();
    let child_status = child.status_addr().unwrap().clone();
    let traces = fleet_traces();
    push_fleet(&child, &traces);
    wait_rollup(&parent_status, &offline_union(&traces), "parent to assemble the union");

    let probe = || fetch_health(&child_status, Some(Duration::from_secs(5))).unwrap();
    assert_eq!(probe().class, HealthClass::Ok);
    assert_eq!(probe().class.exit_code(), 0);

    parent.crash();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let report = probe();
        if report.class != HealthClass::Ok {
            assert!(report.class.exit_code() >= 1);
            assert!(
                report.findings.iter().any(|f| f.contains("forward")),
                "findings must name the failing forward: {:?}",
                report.findings
            );
            break;
        }
        assert!(Instant::now() < deadline, "timeout waiting for degraded health");
        std::thread::sleep(Duration::from_millis(5));
    }

    let parent = start(parent_config).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while probe().class != HealthClass::Ok {
        assert!(Instant::now() < deadline, "timeout waiting for health to recover");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.shutdown();
    parent.shutdown();
}

//! Durable-storage chaos: the disk-fault matrix. Every fault point the
//! injectable I/O layer can produce — ENOSPC at byte N, a short write
//! tearing a frame, failed fsyncs, failed renames (crash-after-tmp),
//! failed creates — is driven through a live collector with journaling,
//! segment rotation, checkpoints and pruning enabled, followed by an
//! abrupt crash and a clean-disk restart. The invariants under every
//! plan:
//!
//! 1. Ingestion never wedges: all sessions stream to completion and the
//!    live rollup equals the offline union, faults or not.
//! 2. Health degrades, it never goes unhealthy from a disk fault.
//! 3. Whatever recovery reproduces is byte-identical: a fully-journaled
//!    session's digest equals its offline analysis, and a second
//!    crash+restart (now exercising the checkpoints the first recovery
//!    wrote) reproduces the exact same rollup bytes.

use critlock_analysis::{analyze, digest_report};
use critlock_collector::{
    push_with, start, Addr, CollectorConfig, CollectorHandle, CollectorStatus, DiskFaultPlan,
    FaultyIo, HealthClass, PushOptions,
};
use critlock_trace::rollup::Rollup;
use critlock_trace::{Anomaly, RetryPolicy, Trace};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("critlock-dur-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A collector tuned for the matrix: journaling on, tiny segments so
/// rotation happens within a single session, checkpoints every few
/// milliseconds so pruning and tail-replay are exercised, fast
/// snapshots.
fn durable_config(dir: &Path) -> CollectorConfig {
    let mut config = CollectorConfig::new(Addr::parse("127.0.0.1:0").unwrap());
    config.status_addr = Some(Addr::parse("127.0.0.1:0").unwrap());
    config.snapshot_interval = Duration::from_millis(10);
    config.journal_dir = Some(dir.to_path_buf());
    config.journal_segment_bytes = Some(128);
    config.checkpoint_interval = Duration::from_millis(10);
    config
}

#[track_caller]
fn wait_for(handle: &CollectorHandle, what: &str, pred: impl Fn(&CollectorStatus) -> bool) {
    assert!(handle.wait_until(Duration::from_secs(30), pred), "timeout waiting for {what}");
}

/// Three distinct sessions (same shape as the fleet tests) pushed under
/// fixed resume tokens so rollup keys survive restarts.
fn fleet_traces() -> Vec<(Vec<u8>, Trace)> {
    let mut out = Vec::new();
    for (i, (hot_hold, cold_hold)) in [(40u64, 5u64), (30, 8), (6, 25)].iter().enumerate() {
        let mut b = critlock_trace::TraceBuilder::new(format!("dur-app-{i}"));
        let hot = b.lock("hot");
        let cold = b.lock("cold");
        let t0 = b.thread("main", 0);
        let t1 = b.thread("worker", 0);
        b.on(t0).cs(hot, *hot_hold).cs(cold, *cold_hold).work(2).exit();
        b.on(t1).work(3).cs_blocked(hot, 3 + *hot_hold, *hot_hold / 2).work(1).exit();
        out.push((format!("dur-session-{i}").into_bytes(), b.build().unwrap()));
    }
    out
}

fn push_fleet(handle: &CollectorHandle, traces: &[(Vec<u8>, Trace)]) {
    for (token, trace) in traces {
        push_with(
            handle.ingest_addr(),
            trace,
            &PushOptions {
                token: Some(token.clone()),
                retry: RetryPolicy::none(),
                ..PushOptions::default()
            },
        )
        .unwrap();
    }
    wait_for(handle, "all sessions to end", |s| {
        s.sessions.len() == traces.len() && s.sessions.iter().all(|snap| snap.ended)
    });
}

fn offline_union(traces: &[(Vec<u8>, Trace)]) -> Rollup {
    let mut rollup = Rollup::new();
    for (token, trace) in traces {
        let key = String::from_utf8(token.clone()).unwrap();
        rollup.insert(digest_report(&key, &analyze(trace)));
    }
    rollup
}

/// Rollup bytes with every per-session `degraded` flag cleared. A session
/// whose journaling degraded is deliberately served degraded (it lost
/// crash-resumability), which flips exactly one flag in its digest; the
/// analysis numbers underneath must still be the offline union.
fn bytes_sans_degraded(rollup: &Rollup) -> Vec<u8> {
    let mut rollup = rollup.clone();
    for digest in rollup.sessions.values_mut() {
        digest.degraded = false;
    }
    rollup.to_bytes()
}

/// Poll the journal directory until `pred` holds over its file names.
#[track_caller]
fn wait_dir(dir: &Path, what: &str, pred: impl Fn(&[String]) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let names: Vec<String> = std::fs::read_dir(dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok().and_then(|e| e.file_name().into_string().ok())).collect()
            })
            .unwrap_or_default();
        if pred(&names) {
            return;
        }
        assert!(Instant::now() < deadline, "timeout waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Crash-and-recover with no faults first: segments rotated, checkpoints
/// written, absorbed segments pruned — and the recovered collector's
/// rollup is byte-identical to the offline union.
#[test]
fn checkpointed_segment_recovery_is_byte_identical() {
    let dir = scratch_dir("exact");
    let config = durable_config(&dir);
    let traces = fleet_traces();
    let union = offline_union(&traces);

    let handle = start(config.clone()).unwrap();
    push_fleet(&handle, &traces);
    // Rotation happened (numbered segments exist) and checkpoints landed.
    wait_dir(&dir, "rotated segments", |names| names.iter().any(|n| n.contains(".clsj.00")));
    wait_dir(&dir, "checkpoints", |names| {
        names.iter().filter(|n| n.ends_with(".clck")).count() == traces.len()
    });
    // Checkpoints absorb the full sessions, so the covered segments are
    // eventually pruned down to the active tail.
    let metrics = handle.metrics_text();
    assert!(metrics.contains("critlock_checkpoint_writes_total"), "missing metric:\n{metrics}");
    handle.crash();

    let restarted = start(config.clone()).unwrap();
    wait_for(&restarted, "journaled sessions to recover", |s| {
        s.recovered_sessions == 3 && s.sessions.iter().all(|snap| snap.ended)
    });
    let rollup = restarted.rollup();
    assert_eq!(
        rollup.to_bytes(),
        union.to_bytes(),
        "recovered rollup must equal the offline union byte for byte"
    );
    assert_eq!(restarted.health().class, HealthClass::Ok);

    // Crash the *recovered* collector and recover again: the second pass
    // replays from the checkpoints the first recovery run wrote, and must
    // land on the exact same bytes.
    restarted.crash();
    let again = start(config).unwrap();
    wait_for(&again, "second recovery", |s| s.recovered_sessions == 3);
    assert_eq!(again.rollup().to_bytes(), union.to_bytes(), "second recovery must be identical");
    again.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The disk-fault matrix. Every plan runs the same script: faulted run →
/// abrupt crash → clean-disk recovery → crash → second recovery. See the
/// module docs for the invariants.
#[test]
fn disk_fault_matrix_recovery_is_byte_identical() {
    let plans: Vec<(&str, DiskFaultPlan)> = vec![
        ("enospc-at-0", DiskFaultPlan { write_budget_bytes: Some(0), ..DiskFaultPlan::default() }),
        (
            "enospc-at-200",
            DiskFaultPlan { write_budget_bytes: Some(200), ..DiskFaultPlan::default() },
        ),
        (
            "enospc-at-2000",
            DiskFaultPlan { write_budget_bytes: Some(2000), ..DiskFaultPlan::default() },
        ),
        (
            "short-write-at-150",
            DiskFaultPlan {
                write_budget_bytes: Some(150),
                short_final_write: true,
                ..DiskFaultPlan::default()
            },
        ),
        (
            "fsync-fails-after-3",
            DiskFaultPlan { syncs_allowed: Some(3), ..DiskFaultPlan::default() },
        ),
        (
            "rename-always-fails",
            DiskFaultPlan { renames_allowed: Some(0), ..DiskFaultPlan::default() },
        ),
        (
            "rename-fails-after-1",
            DiskFaultPlan { renames_allowed: Some(1), ..DiskFaultPlan::default() },
        ),
        (
            "create-fails-after-2",
            DiskFaultPlan { creates_allowed: Some(2), ..DiskFaultPlan::default() },
        ),
    ];
    let traces = fleet_traces();
    let union = offline_union(&traces);

    for (name, plan) in plans {
        let dir = scratch_dir(&format!("matrix-{name}"));
        let mut config = durable_config(&dir);
        config.journal_io = Arc::new(FaultyIo::new(plan));

        // Faulted run: ingestion and analysis must be untouched by any
        // disk fault — every session ends, the live rollup is the exact
        // union, and health never passes degraded.
        let handle = start(config).unwrap();
        push_fleet(&handle, &traces);
        assert_eq!(
            bytes_sans_degraded(&handle.rollup()),
            union.to_bytes(),
            "plan {name}: live analysis must be the union regardless of disk faults"
        );
        let health = handle.health();
        assert_ne!(
            health.class,
            HealthClass::Unhealthy,
            "plan {name}: a disk fault must never make the collector unhealthy: {:?}",
            health.findings
        );
        handle.crash();

        // Clean-disk recovery: whatever survived on disk must replay into
        // exactly the state it was journaled from. A session whose end
        // frame reached the journal recovers byte-identical to its
        // offline analysis; a torn or partial journal recovers a prefix —
        // never garbage, never a wedge.
        let config = durable_config(&dir);
        let restarted = start(config.clone()).unwrap();
        let status = restarted.status();
        let rollup = restarted.rollup();
        // Recovery invents nothing: every recovered key is one of ours.
        for key in rollup.sessions.keys() {
            assert!(
                traces.iter().any(|(token, _)| String::from_utf8_lossy(token) == *key),
                "plan {name}: recovered rollup has unexpected session {key}"
            );
        }
        // Each trace carries a distinct app name, so the recovered
        // snapshot maps back to its token: a session whose end frame
        // reached the journal must recover byte-identical to its offline
        // analysis; a partially-journaled one is a legal prefix.
        for snap in &status.sessions {
            let Some((token, _)) =
                traces.iter().find(|(_, trace)| trace.meta.app == snap.report.app)
            else {
                assert_eq!(snap.frames, 0, "plan {name}: unknown app {}", snap.report.app);
                continue;
            };
            if snap.ended {
                let key = String::from_utf8(token.clone()).unwrap();
                assert_eq!(
                    rollup.sessions.get(&key),
                    union.sessions.get(&key),
                    "plan {name}: fully-journaled session {key} must be byte-exact"
                );
            }
        }

        // Second crash+recovery must reproduce the exact same bytes: the
        // first recovery's own checkpoints and pruning changed the disk
        // layout, but never the recovered state.
        let first = rollup.to_bytes();
        restarted.crash();
        let again = start(config).unwrap();
        assert_eq!(
            again.rollup().to_bytes(),
            first,
            "plan {name}: recovery must be idempotent across restarts"
        );
        again.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Quota exhaustion: a collector whose disk budget is far too small for
/// even one journal header keeps ingesting every session, serves the
/// exact union, reports `degraded` (never unhealthy), surfaces the typed
/// anomaly on each affected session, and exports the degraded-sessions
/// gauge. Restarting with a real quota clears the degradation.
#[test]
fn quota_exhaustion_degrades_but_never_wedges() {
    let dir = scratch_dir("quota");
    let mut config = durable_config(&dir);
    config.journal_quota_bytes = Some(16); // smaller than one CLSM header
    let traces = fleet_traces();
    let union = offline_union(&traces);

    let handle = start(config).unwrap();
    push_fleet(&handle, &traces);
    assert_eq!(
        bytes_sans_degraded(&handle.rollup()),
        union.to_bytes(),
        "quota exhaustion must not touch the analysis numbers"
    );

    let status = handle.status();
    for snap in &status.sessions {
        assert!(snap.report.degraded, "session {} must be served degraded", snap.session);
        assert!(
            snap.report.anomalies.iter().any(|a| matches!(a, Anomaly::JournalDegraded { .. })),
            "session {} must carry the typed journal anomaly: {:?}",
            snap.session,
            snap.report.anomalies
        );
    }
    let health = handle.health();
    assert_eq!(health.class, HealthClass::Degraded, "findings: {:?}", health.findings);
    assert!(
        health.findings.iter().any(|f| f.contains("journal")),
        "health must name the journal degradation: {:?}",
        health.findings
    );
    let metrics = handle.metrics_text();
    assert!(
        metrics.contains("critlock_journal_degraded_sessions 3"),
        "missing degraded-sessions gauge:\n{metrics}"
    );
    handle.shutdown();

    // Nothing resumable was journaled; a restart with a sane quota starts
    // clean and journals new sessions again.
    let mut config = durable_config(&dir);
    config.journal_quota_bytes = Some(10 * 1024 * 1024);
    let restarted = start(config).unwrap();
    // At most one empty journal prefix survives: the first session's
    // header landed before its bytes tripped the quota; every later
    // create was refused outright. An empty prefix recovers as a
    // resumable 0-frame session, which the re-push below resumes.
    assert!(restarted.status().recovered_sessions <= 1);
    push_fleet(&restarted, &traces);
    assert_eq!(restarted.health().class, HealthClass::Ok);
    assert_eq!(restarted.rollup().to_bytes(), union.to_bytes());
    wait_dir(&dir, "journals under the restored quota", |names| {
        names.iter().any(|n| n.contains(".clsj"))
    });
    restarted.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: recovery streams the journal through the assembler frame
/// by frame, so a journal holding more events than the per-session
/// budget recovers to the same truncated, degraded state the live run
/// produced — the replay respects the budget instead of materializing
/// the whole journal.
#[test]
fn oversized_journal_recovers_within_the_event_budget() {
    let dir = scratch_dir("budget");
    let mut config = durable_config(&dir);
    config.max_events = Some(64);

    // A trace with far more events than the budget admits.
    let mut b = critlock_trace::TraceBuilder::new("dur-big");
    let l = b.lock("only");
    let t = b.thread("main", 0);
    let mut chain = b.on(t);
    for _ in 0..200 {
        chain.cs(l, 3).work(1);
    }
    chain.exit();
    let big = b.build().unwrap();

    let handle = start(config.clone()).unwrap();
    push_with(
        handle.ingest_addr(),
        &big,
        &PushOptions {
            token: Some(b"dur-big-session".to_vec()),
            retry: RetryPolicy::none(),
            ..PushOptions::default()
        },
    )
    .unwrap();
    wait_for(&handle, "the budgeted session to end", |s| {
        s.sessions.len() == 1 && s.sessions[0].ended
    });
    let before = handle.status().sessions[0].clone();
    assert_eq!(before.events, 64, "assembly must stop exactly at the event budget");
    assert!(before.report.degraded);
    handle.crash();

    let restarted = start(config).unwrap();
    wait_for(&restarted, "the oversized journal to recover", |s| {
        s.recovered_sessions == 1 && s.sessions.len() == 1 && s.sessions[0].ended
    });
    let after = restarted.status().sessions[0].clone();
    assert_eq!(after.events, before.events, "replay must respect the event budget");
    assert_eq!(after.report, before.report, "recovered report must be byte-identical");
    assert_eq!(after.online_cp_length, before.online_cp_length);
    restarted.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

//! Fault-tolerance end-to-end tests: the deterministic fault matrix
//! (every built-in `FaultPlan` against a resumable push), idle-timeout
//! degradation, crash-safe journal recovery, and an instrumented session
//! surviving a collector restart.

use critlock_analysis::analyze;
use critlock_collector::{
    push_with, start, Addr, CollectorConfig, CollectorHandle, CollectorStatus, PushOptions, Stream,
};
use critlock_instrument::Session;
use critlock_trace::stream::{trace_frames, Handshake, StreamWriter};
use critlock_trace::{FaultPlan, RetryPolicy, Trace};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn test_config() -> CollectorConfig {
    let mut config = CollectorConfig::new(Addr::parse("127.0.0.1:0").unwrap());
    config.status_addr = Some(Addr::parse("127.0.0.1:0").unwrap());
    config
}

#[track_caller]
fn wait_for(handle: &CollectorHandle, what: &str, pred: impl Fn(&CollectorStatus) -> bool) {
    assert!(handle.wait_until(Duration::from_secs(30), pred), "timeout waiting for {what}");
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("critlock-faults-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A trace large enough on the wire (tens of kilobytes) that every
/// built-in fault plan's byte offsets actually fire.
fn chunky_trace() -> Trace {
    let mut b = critlock_trace::TraceBuilder::new("fault-matrix");
    let hot = b.lock("hot");
    let cold = b.lock("cold");
    let t0 = b.thread("main", 0);
    let t1 = b.thread("worker", 0);
    for _ in 0..300 {
        b.on(t0).work(1).cs(hot, 2).cs(cold, 1);
    }
    b.on(t0).exit();
    b.on(t1).work(5);
    for _ in 0..300 {
        b.on(t1).cs(hot, 2).work(1);
    }
    b.on(t1).exit();
    b.build().unwrap()
}

/// The acceptance criterion of the tentpole: under every built-in fault
/// plan, a resumable push still delivers the complete session and the
/// live snapshot equals the offline `analyze` exactly.
#[test]
fn fault_matrix_resumable_push_matches_offline_analyze() {
    let trace = chunky_trace();
    let offline = analyze(&trace);
    for plan in FaultPlan::all_builtin() {
        let name = plan.name.clone();
        let mut config = test_config();
        // Short idle timeout so the stall plan degrades into a severed
        // connection the client must recover from (stall = 900 ms).
        config.idle_timeout = Some(Duration::from_millis(200));
        let handle = start(config).unwrap();

        let opts = PushOptions {
            timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy::with_attempts(8),
            fault_plan: Some(plan),
            ..PushOptions::default()
        };
        let sent = push_with(handle.ingest_addr(), &trace, &opts)
            .unwrap_or_else(|e| panic!("plan `{name}`: push failed: {e}"));
        assert!(sent > 0, "plan `{name}`: no frames pushed");

        wait_for(&handle, "session to end", |s| s.sessions.first().is_some_and(|snap| snap.ended));
        let status = handle.status();
        assert_eq!(
            status.sessions.len(),
            1,
            "plan `{name}`: resumed connections must fold into one session"
        );
        assert_eq!(status.sessions[0].report, offline, "plan `{name}`: snapshot != offline");
        assert_eq!(status.sessions[0].dropped_frames, 0, "plan `{name}`");
        handle.shutdown();
    }
}

/// A connection that goes quiet mid-session is severed by the idle
/// timeout, counted, and its partial session finalized into a trace that
/// still validates.
#[test]
fn idle_timeout_finalizes_stalled_session() {
    let mut config = test_config();
    config.idle_timeout = Some(Duration::from_millis(100));
    let handle = start(config).unwrap();

    let frames = trace_frames(&chunky_trace());
    let stream = Stream::connect(handle.ingest_addr()).unwrap();
    let mut writer = StreamWriter::new(stream).unwrap();
    for frame in &frames[..4] {
        writer.write_frame(frame).unwrap();
    }
    writer.flush().unwrap();
    // ... and now the producer hangs without disconnecting.

    wait_for(&handle, "idle timeout to fire", |s| s.timed_out_sessions == 1);
    wait_for(&handle, "stalled frames to be applied", |s| {
        s.sessions.first().is_some_and(|snap| snap.frames == 4)
    });
    let partial = handle.session_trace(0).unwrap();
    partial.validate().unwrap();
    drop(writer); // keep the connection alive until after the assertions
    handle.shutdown();
}

/// Kill the collector mid-stream, restart it on the same journal
/// directory, and finish the push with the same resume token: the
/// recovered session picks up exactly where the journal left off and the
/// final snapshot equals the offline analysis.
#[test]
fn crashed_collector_recovers_journaled_session_and_push_resumes() {
    let dir = tmpdir("crash");
    let trace = chunky_trace();
    let frames = trace_frames(&trace);
    let token = b"crashy-session".to_vec();

    let mut config = test_config();
    config.journal_dir = Some(dir.clone());
    let handle = start(config).unwrap();

    // Partial push by hand: handshake with the resume token, four frames,
    // then the producer "dies" (connection kept open, no End).
    let stream = Stream::connect(handle.ingest_addr()).unwrap();
    let handshake = Handshake { token: token.clone(), start_seq: 0 };
    let mut writer = StreamWriter::with_handshake(stream, &handshake).unwrap();
    for frame in &frames[..4] {
        writer.write_frame(frame).unwrap();
    }
    writer.flush().unwrap();

    wait_for(&handle, "partial frames to be journaled", |s| {
        s.sessions.first().is_some_and(|snap| snap.frames == 4)
    });
    handle.crash(); // no drain, no final sync — as a real crash would
    drop(writer);

    // Restart on the same journal directory: the session comes back with
    // its four frames before any producer reconnects.
    let mut config = test_config();
    config.journal_dir = Some(dir.clone());
    let handle = start(config).unwrap();
    let status = handle.status();
    assert_eq!(status.recovered_sessions, 1, "status: {status:?}");
    assert_eq!(status.sessions.len(), 1);
    assert_eq!(status.sessions[0].frames, 4);

    // The producer reconnects with the same token and finishes the push.
    let opts = PushOptions {
        timeout: Some(Duration::from_secs(10)),
        retry: RetryPolicy::with_attempts(8),
        token: Some(token),
        ..PushOptions::default()
    };
    push_with(handle.ingest_addr(), &trace, &opts).unwrap();

    wait_for(&handle, "resumed session to end", |s| {
        s.sessions.first().is_some_and(|snap| snap.ended)
    });
    let status = handle.status();
    assert_eq!(status.sessions.len(), 1, "resume must not open a second session");
    assert!(status.resumed_sessions >= 1, "status: {status:?}");
    assert_eq!(status.sessions[0].report, analyze(&trace));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An instrumented session streaming with `stream_to_resumable` survives
/// the collector being killed and restarted mid-workload: the restarted
/// collector recovers the journaled prefix, the client reconnects with
/// its token and replays the gap, and the final server-side trace equals
/// the locally finished one.
#[cfg(unix)]
#[test]
fn instrument_session_resumes_across_collector_restart() {
    let dir = tmpdir("restart");
    let sock = dir.join("ingest.sock");
    let addr = format!("unix:{}", sock.display());

    let mut config = CollectorConfig::new(Addr::parse(&addr).unwrap());
    config.journal_dir = Some(dir.clone());
    let handle = start(config).unwrap();

    let session = Session::new("restart-app");
    session.stream_to_resumable(&addr, RetryPolicy::with_attempts(20)).unwrap();
    let m = Arc::new(session.mutex("hot", 0u64));

    let work = |session: &Session, m: &Arc<critlock_instrument::Mutex<u64>>| {
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let m = Arc::clone(m);
                critlock_instrument::spawn(session, format!("w{i}"), move || {
                    for _ in 0..200 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    };

    work(&session, &m); // first half streams to the first collector
    handle.crash();

    // Restart on the same socket path and journal directory.
    let mut config = CollectorConfig::new(Addr::parse(&addr).unwrap());
    config.journal_dir = Some(dir.clone());
    let handle = start(config).unwrap();
    assert_eq!(handle.status().recovered_sessions, 1);

    work(&session, &m); // second half reconnects and resumes
    let local = session.finish().unwrap();

    wait_for(&handle, "resumed session to end", |s| {
        s.sessions.first().is_some_and(|snap| snap.ended)
    });
    let status = handle.status();
    assert_eq!(status.sessions.len(), 1);
    assert!(status.resumed_sessions >= 1, "status: {status:?}");
    let server_trace = handle.session_trace(0).unwrap();
    assert_eq!(server_trace, local);
    assert_eq!(analyze(&server_trace), analyze(&local));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

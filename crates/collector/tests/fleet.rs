//! Fleet-scale collection tests: sharded ingestion, cross-session
//! rollups over the status socket, shard-count invariance of the CLAG
//! bytes, child→parent forwarding, and per-shard observability.

use critlock_aggregate::FleetReport;
use critlock_analysis::{analyze, digest_report};
use critlock_collector::{
    fetch_metrics_text, fetch_rollup, push, push_rollup, push_with, start, Addr, CollectorConfig,
    CollectorHandle, CollectorStatus, PushOptions,
};
use critlock_trace::rollup::{Rollup, SessionDigest};
use critlock_trace::{RetryPolicy, Trace};
use std::time::Duration;

fn test_config() -> CollectorConfig {
    let mut config = CollectorConfig::new(Addr::parse("127.0.0.1:0").unwrap());
    config.status_addr = Some(Addr::parse("127.0.0.1:0").unwrap());
    config
}

#[track_caller]
fn wait_for(handle: &CollectorHandle, what: &str, pred: impl Fn(&CollectorStatus) -> bool) {
    assert!(handle.wait_until(Duration::from_secs(30), pred), "timeout waiting for {what}");
}

/// Three distinct sessions; "hot" dominates the critical path in two of
/// them, so it must come out as the fleet's top critical lock.
fn fleet_traces() -> Vec<(Vec<u8>, Trace)> {
    let mut out = Vec::new();
    for (i, (hot_hold, cold_hold)) in [(40u64, 5u64), (30, 8), (6, 25)].iter().enumerate() {
        let mut b = critlock_trace::TraceBuilder::new(format!("fleet-app-{i}"));
        let hot = b.lock("hot");
        let cold = b.lock("cold");
        let t0 = b.thread("main", 0);
        let t1 = b.thread("worker", 0);
        b.on(t0).cs(hot, *hot_hold).cs(cold, *cold_hold).work(2).exit();
        b.on(t1).work(3).cs_blocked(hot, 3 + *hot_hold, *hot_hold / 2).work(1).exit();
        out.push((format!("fleet-session-{i}").into_bytes(), b.build().unwrap()));
    }
    out
}

/// Push each trace under its fixed resume token, so rollup keys are
/// stable across collectors regardless of shard count or session ids.
fn push_fleet(handle: &CollectorHandle, traces: &[(Vec<u8>, Trace)]) {
    for (token, trace) in traces {
        push_with(
            handle.ingest_addr(),
            trace,
            &PushOptions {
                token: Some(token.clone()),
                retry: RetryPolicy::none(),
                ..PushOptions::default()
            },
        )
        .unwrap();
    }
    wait_for(handle, "all fleet sessions to end", |s| {
        s.sessions.len() == traces.len() && s.sessions.iter().all(|snap| snap.ended)
    });
}

#[test]
fn sharded_collector_rollup_yields_expected_fleet_report() {
    let mut config = test_config();
    config.shards = 2;
    let handle = start(config).unwrap();
    let status_addr = handle.status_addr().unwrap().clone();
    let traces = fleet_traces();
    push_fleet(&handle, &traces);

    // Rollup over the status socket == the handle's own view.
    let rollup = fetch_rollup(&status_addr, Some(Duration::from_secs(5))).unwrap();
    assert_eq!(rollup, handle.rollup());
    assert_eq!(rollup.len(), traces.len());

    // Each session digest equals analyzing that trace offline.
    for (token, trace) in &traces {
        let key = String::from_utf8(token.clone()).unwrap();
        let digest = rollup.sessions.get(&key).expect("session in rollup");
        assert_eq!(digest, &digest_report(&key, &analyze(trace)));
    }

    let report = FleetReport::from_rollup(&rollup);
    assert_eq!(report.sessions, 3);
    let top = report.top_critical_lock().expect("a top critical lock");
    assert_eq!(top.name, "hot");
    assert_eq!(top.sessions_seen, 3);
    handle.shutdown();
}

#[test]
fn per_shard_status_sums_to_global_counters() {
    let mut config = test_config();
    config.shards = 2;
    let handle = start(config).unwrap();
    push_fleet(&handle, &fleet_traces());

    let status = handle.status();
    assert_eq!(status.shards.len(), 2);
    let sum: u64 = status.shards.iter().map(|s| s.sessions_total).sum();
    assert_eq!(sum, status.sessions_total);
    assert_eq!(status.sessions_total, 3);
    // Sessions were actually spread by token hash, not piled on shard 0.
    let spread: Vec<u64> = status.shards.iter().map(|s| s.sessions_total).collect();
    assert!(spread.iter().all(|&n| n <= 3), "per-shard counts {spread:?}");
    for (shard, st) in status.shards.iter().enumerate() {
        assert_eq!(st.shard, shard as u64);
        assert_eq!(st.shed_sessions, 0);
        assert_eq!(st.quota_stopped_sessions, 0);
    }
    handle.shutdown();
}

#[test]
fn rollup_bytes_are_identical_across_shard_counts() {
    let traces = fleet_traces();
    let mut rollups = Vec::new();
    for shards in [1usize, 4] {
        let mut config = test_config();
        config.shards = shards;
        let handle = start(config).unwrap();
        push_fleet(&handle, &traces);
        rollups.push(handle.rollup());
        handle.shutdown();
    }
    // The acceptance criterion: byte-identical CLAG output and reports
    // for --shards 1 vs --shards 4.
    assert_eq!(rollups[0].to_bytes(), rollups[1].to_bytes());
    let (a, b) = (FleetReport::from_rollup(&rollups[0]), FleetReport::from_rollup(&rollups[1]));
    assert_eq!(a, b);
    assert_eq!(a.render_text(None), b.render_text(None));
    assert_eq!(a.to_json(), b.to_json());
}

/// Shard-count invariance must survive crash recovery too: journal with
/// `--shards 4` (segments rotating, checkpoints landing, absorbed
/// segments pruned), crash, recover the same directory with `--shards 1`
/// and then `--shards 3`. Sessions re-route to different shards on every
/// restart — token hash modulo a different shard count — yet every
/// recovered rollup is byte-identical to the never-sharded, never-crashed
/// analysis.
#[test]
fn recovery_is_byte_identical_across_shard_count_changes() {
    let dir = std::env::temp_dir().join(format!("critlock-fleet-reshard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let traces = fleet_traces();
    let mut expected = Rollup::new();
    for (token, trace) in &traces {
        let key = String::from_utf8(token.clone()).unwrap();
        expected.insert(digest_report(&key, &analyze(trace)));
    }

    let durable = |shards: usize| {
        let mut config = test_config();
        config.shards = shards;
        config.journal_dir = Some(dir.clone());
        config.journal_segment_bytes = Some(128);
        config.checkpoint_interval = Duration::from_millis(10);
        config.snapshot_interval = Duration::from_millis(10);
        config
    };

    // Journal under 4 shards; let checkpoints land so recovery replays
    // tails, not history, then crash without any drain.
    let handle = start(durable(4)).unwrap();
    push_fleet(&handle, &traces);
    let has_checkpoint = |root: &std::path::Path| {
        // Sharded journals live in `shard-N/` subdirectories.
        let mut dirs = vec![root.to_path_buf()];
        dirs.extend(
            std::fs::read_dir(root)
                .unwrap()
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir()),
        );
        dirs.iter().any(|d| {
            std::fs::read_dir(d).is_ok_and(|rd| {
                rd.filter_map(|e| e.ok())
                    .any(|e| e.file_name().to_string_lossy().ends_with(".clck"))
            })
        })
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !has_checkpoint(&dir) {
        assert!(std::time::Instant::now() < deadline, "timeout waiting for a checkpoint");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.crash();

    // Recover under different shard counts; each pass re-routes sessions,
    // writes its own checkpoints and prunes, and crashes again.
    for shards in [1usize, 3] {
        let handle = start(durable(shards)).unwrap();
        wait_for(&handle, "journaled sessions to recover", |s| {
            s.recovered_sessions == 3 && s.sessions.iter().all(|snap| snap.ended)
        });
        let status = handle.status();
        assert_eq!(status.shards.len(), shards);
        let per_shard: u64 = status.shards.iter().map(|s| s.recovered_sessions).sum();
        assert_eq!(per_shard, 3, "recovered sessions must land on the live shards");
        assert_eq!(
            handle.rollup().to_bytes(),
            expected.to_bytes(),
            "recovery under {shards} shard(s) must be byte-identical to the offline union"
        );
        handle.crash();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn child_collector_forwards_rollup_to_parent() {
    let parent = start(test_config()).unwrap();
    let parent_status = parent.status_addr().unwrap().clone();

    let mut child_config = test_config();
    child_config.shards = 2;
    child_config.forward = Some(parent_status.clone());
    child_config.forward_interval = Duration::from_millis(20);
    child_config.collector_id = "child-a".into();
    let child = start(child_config).unwrap();

    let traces = fleet_traces();
    push_fleet(&child, &traces);

    // The parent has no sessions of its own; its rollup fills up purely
    // from pushes by the child's forward loop.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let rollup = loop {
        let rollup = fetch_rollup(&parent_status, Some(Duration::from_secs(5))).unwrap();
        if rollup.len() == traces.len() {
            break rollup;
        }
        assert!(std::time::Instant::now() < deadline, "timeout waiting for forwarded rollup");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(rollup, child.rollup());
    assert_eq!(FleetReport::from_rollup(&rollup).top_critical_lock().unwrap().name, "hot");

    // Child death does not erase what the parent already holds.
    child.shutdown();
    let after = fetch_rollup(&parent_status, Some(Duration::from_secs(5))).unwrap();
    assert_eq!(after.len(), traces.len());
    parent.shutdown();
}

/// A parent bounds what `rollup-push` can make it retain, and replies
/// with its post-merge session count (not the pushed rollup's size).
#[test]
fn rollup_push_is_capped_and_reports_post_merge_count() {
    let mut config = test_config();
    config.max_rollup_sessions = 2;
    let handle = start(config).unwrap();
    let status_addr = handle.status_addr().unwrap().clone();
    let timeout = Some(Duration::from_secs(5));

    let digest = |key: &str| SessionDigest {
        key: key.into(),
        app: "fleet".into(),
        cp_length: 10,
        makespan: 12,
        degraded: false,
        locks: Vec::new(),
        window: None,
    };
    let mut two = Rollup::new();
    two.insert(digest("a"));
    two.insert(digest("b"));
    assert_eq!(push_rollup(&status_addr, &two, timeout).unwrap(), 2);
    // Re-pushing retained sessions at the cap is idempotent, not an error.
    assert_eq!(push_rollup(&status_addr, &two, timeout).unwrap(), 2);

    let mut three = two.clone();
    three.insert(digest("c"));
    let err = push_rollup(&status_addr, &three, timeout).unwrap_err();
    assert!(err.to_string().contains("rollup cap"), "unexpected error: {err}");
    // The rejected push left the last good state untouched.
    let retained = fetch_rollup(&status_addr, timeout).unwrap();
    assert_eq!(retained.len(), 2);
    assert!(!retained.sessions.contains_key("c"));
    handle.shutdown();
}

/// A crashed-and-recovered collector must re-forward its anonymous
/// sessions under the *same* rollup keys: recovery hands out fresh
/// session ids, but the key is pinned to the journal's `anon-N` index,
/// so a parent that already merged the session never double-counts it.
#[test]
fn recovered_anonymous_session_keeps_its_rollup_key() {
    let dir = std::env::temp_dir().join(format!("critlock-fleet-anonkey-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut config = test_config();
    config.journal_dir = Some(dir.clone());
    config.collector_id = "child-a".into();
    let handle = start(config.clone()).unwrap();
    let (_, trace) = fleet_traces().remove(0);
    push(handle.ingest_addr(), &trace, None).unwrap();
    wait_for(&handle, "anonymous session to end", |s| s.sessions.len() == 1 && s.sessions[0].ended);
    let before: Vec<String> = handle.rollup().sessions.keys().cloned().collect();
    handle.crash();

    let handle = start(config).unwrap();
    wait_for(&handle, "journaled session to recover", |s| s.recovered_sessions == 1);
    let after: Vec<String> = handle.rollup().sessions.keys().cloned().collect();
    assert_eq!(before, after, "rollup key must survive crash recovery");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_labelled_metrics_are_served() {
    let mut config = test_config();
    config.shards = 2;
    config.metrics_addr = Some(Addr::parse("127.0.0.1:0").unwrap());
    let handle = start(config).unwrap();
    let metrics_addr = handle.metrics_addr().unwrap().clone();
    push_fleet(&handle, &fleet_traces());

    let text = fetch_metrics_text(&metrics_addr, Some(Duration::from_secs(5))).unwrap();
    for shard in 0..2 {
        assert!(
            text.contains(&format!("critlock_shard_sessions_total{{shard=\"{shard}\"}}")),
            "missing shard {shard} series in metrics:\n{text}"
        );
    }
    // Labelled shard totals agree with the global counter.
    let mut shard_sum = 0u64;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("critlock_shard_sessions_total{") {
            let value = rest.split_whitespace().next_back().unwrap();
            shard_sum += value.parse::<u64>().unwrap();
        }
    }
    assert_eq!(shard_sum, 3, "metrics text:\n{text}");
    handle.shutdown();
}

//! Resource-governance tests for the collector: admission control,
//! per-session byte quotas, per-session event budgets, the strict
//! disconnect policy, and the dedicated session-id allocator under
//! concurrent connects and journal recovery.

use critlock_collector::{push, start, Addr, CollectorConfig, CollectorHandle, CollectorStatus};
use critlock_trace::Trace;
use std::time::Duration;

fn test_config() -> CollectorConfig {
    let mut config = CollectorConfig::new(Addr::parse("127.0.0.1:0").unwrap());
    config.status_addr = Some(Addr::parse("127.0.0.1:0").unwrap());
    config
}

#[track_caller]
fn wait_for(handle: &CollectorHandle, what: &str, pred: impl Fn(&CollectorStatus) -> bool) {
    assert!(handle.wait_until(Duration::from_secs(30), pred), "timeout waiting for {what}");
}

/// Two threads contending on one lock.
fn sample_trace() -> Trace {
    let mut b = critlock_trace::TraceBuilder::new("gov-app");
    let hot = b.lock("hot");
    let t0 = b.thread("main", 0);
    let t1 = b.thread("worker", 0);
    b.on(t0).cs(hot, 40).exit_at(50);
    b.on(t1).work(10).cs_blocked(hot, 40, 15).work(5).exit();
    b.build().unwrap()
}

/// One thread, enough critical sections to span many Events frames.
fn big_trace() -> Trace {
    let mut b = critlock_trace::TraceBuilder::new("gov-big");
    let l = b.lock("L");
    let t0 = b.thread("main", 0);
    for _ in 0..700 {
        b.on(t0).work(1).cs(l, 1);
    }
    b.on(t0).exit();
    b.build().unwrap()
}

/// Regression for the id-allocator race: concurrent anonymous connects
/// must all get distinct session ids, and `sessions_total` must count
/// exactly the accepted sessions (it used to double as the id allocator,
/// so the two could not be checked independently).
#[test]
fn concurrent_anonymous_connects_get_unique_ids() {
    let handle = start(test_config()).unwrap();
    let trace = sample_trace();
    let n = 8;
    std::thread::scope(|scope| {
        for _ in 0..n {
            let addr = handle.ingest_addr().clone();
            let trace = &trace;
            scope.spawn(move || push(&addr, trace, None).unwrap());
        }
    });
    wait_for(&handle, "all concurrent sessions to end", |s| {
        s.sessions.len() == n && s.sessions.iter().all(|snap| snap.ended)
    });
    let status = handle.status();
    let mut ids: Vec<u64> = status.sessions.iter().map(|s| s.session).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..n as u64).collect::<Vec<_>>(), "ids must be unique and dense");
    assert_eq!(status.sessions_total, n as u64);
    handle.shutdown();
}

#[test]
fn admission_control_sheds_excess_sessions() {
    let mut config = test_config();
    config.max_sessions = Some(1);
    let handle = start(config).unwrap();
    let trace = sample_trace();
    push(handle.ingest_addr(), &trace, None).unwrap();
    wait_for(&handle, "first session to end", |s| s.sessions.len() == 1 && s.sessions[0].ended);
    // The collector is at capacity: the next producer is shed before a
    // session exists, and the shed is accounted for in the status.
    let _ = push(handle.ingest_addr(), &trace, None);
    wait_for(&handle, "second connect to be shed", |s| s.shed_sessions >= 1);
    let status = handle.status();
    assert_eq!(status.sessions.len(), 1, "no session may be created for a shed connect");
    assert_eq!(status.sessions_total, 1);
    handle.shutdown();
}

/// `max_sessions` is a hard *global* bound, not just per-shard slices:
/// with max 3 over 2 shards the per-shard ceiling is 2, so a fourth
/// connect landing on the less-loaded shard would slip in if only the
/// per-shard check existed. The global reservation must shed it.
#[test]
fn global_session_cap_holds_across_shards() {
    let mut config = test_config();
    config.max_sessions = Some(3);
    config.shards = 2;
    let handle = start(config).unwrap();
    let trace = sample_trace();
    // Anonymous sessions route by id % shards: ids 0..3 put two sessions
    // on shard 0 and one on shard 1.
    for _ in 0..3 {
        push(handle.ingest_addr(), &trace, None).unwrap();
    }
    wait_for(&handle, "three admitted sessions", |s| {
        s.sessions.len() == 3 && s.sessions.iter().all(|snap| snap.ended)
    });
    // The fourth routes to shard 1 (one session, under its ceiling of
    // 2) — only the global bound can shed it.
    let _ = push(handle.ingest_addr(), &trace, None);
    wait_for(&handle, "fourth connect to be shed", |s| s.shed_sessions >= 1);
    let status = handle.status();
    assert_eq!(status.sessions.len(), 3, "global max_sessions must hold across shards");
    assert_eq!(status.sessions_total, 3);
    handle.shutdown();
}

#[test]
fn byte_quota_stops_ingest_and_degrades_the_session() {
    let mut config = test_config();
    config.session_quota_bytes = Some(2048);
    let handle = start(config).unwrap();
    // The big trace's frame payload is far beyond 2 KiB: ingest stops at
    // the quota and the connection drops, which the producer may see as
    // an error — the collector itself must stay up.
    let _ = push(handle.ingest_addr(), &big_trace(), None);
    wait_for(&handle, "session to hit its byte quota", |s| {
        s.quota_stopped_sessions == 1 && s.sessions.first().is_some_and(|snap| snap.report.degraded)
    });
    // A session within quota on the same collector is untouched.
    push(handle.ingest_addr(), &sample_trace(), None).unwrap();
    wait_for(&handle, "small session to end clean", |s| {
        s.sessions.len() == 2 && s.sessions.iter().any(|snap| snap.ended && !snap.report.degraded)
    });
    handle.shutdown();
}

#[test]
fn event_budget_truncates_assembly_and_degrades_the_snapshot() {
    let mut config = test_config();
    config.max_events = Some(100);
    let handle = start(config).unwrap();
    let trace = big_trace();
    // All frames are accepted (the cap is on assembled events, not on
    // the wire), so the push completes and the session ends gracefully.
    push(handle.ingest_addr(), &trace, None).unwrap();
    wait_for(&handle, "budgeted session to end", |s| s.sessions.len() == 1 && s.sessions[0].ended);
    let status = handle.status();
    let snap = &status.sessions[0];
    assert_eq!(snap.events, 100, "assembly must stop exactly at the event budget");
    assert!(snap.report.degraded, "a truncated session must be marked degraded");
    // The truncated prefix still analyzes: the repair pass closes the cut.
    let repaired = handle.session_trace(snap.session).unwrap();
    repaired.validate().expect("budget-truncated session must repair to a valid trace");
    handle.shutdown();
}

#[test]
fn strict_mode_severs_over_budget_sessions() {
    let mut config = test_config();
    config.max_events = Some(50);
    config.strict = true;
    let handle = start(config).unwrap();
    // Paced so the producer is still writing when the analysis loop
    // notices the budget violation and severs the connection.
    let result = push(handle.ingest_addr(), &big_trace(), Some(Duration::from_millis(10)));
    assert!(result.is_err(), "strict mode must sever the over-budget producer");
    wait_for(&handle, "severed session to be marked degraded", |s| {
        s.sessions.first().is_some_and(|snap| snap.report.degraded)
    });
    handle.shutdown();
}

/// Journal recovery with the dedicated allocator: recovered sessions and
/// a fresh producer all get distinct ids, no `anon-N` journal of the
/// first run is ever reused (truncated) by the second, and
/// `sessions_total` counts sessions — not allocator state.
#[test]
fn recovered_and_new_sessions_share_the_id_space() {
    let dir = std::env::temp_dir().join(format!("critlock-governance-ids-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut config = test_config();
    config.journal_dir = Some(dir.clone());
    let handle = start(config.clone()).unwrap();
    let trace = sample_trace();
    push(handle.ingest_addr(), &trace, None).unwrap();
    push(handle.ingest_addr(), &trace, None).unwrap();
    wait_for(&handle, "two journaled sessions", |s| {
        s.sessions.len() == 2 && s.sessions.iter().all(|snap| snap.ended)
    });
    handle.shutdown();
    // Count only journal segments: shutdown also leaves checkpoint files
    // (`.clck`) next to the journals, which are not part of the id space.
    let list_journals = |dir: &std::path::Path| -> Vec<std::ffi::OsString> {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.file_name()))
            .filter(|name| name.to_string_lossy().contains(".clsj"))
            .collect()
    };
    let journals_before = list_journals(&dir);
    assert_eq!(journals_before.len(), 2);

    let handle = start(config).unwrap();
    push(handle.ingest_addr(), &trace, None).unwrap();
    wait_for(&handle, "recovered + new sessions", |s| {
        s.recovered_sessions == 2 && s.sessions.len() == 3
    });
    let status = handle.status();
    assert_eq!(status.sessions_total, 3, "2 recovered + 1 new, no phantom sessions");
    let mut ids: Vec<u64> = status.sessions.iter().map(|s| s.session).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 3, "recovered and new sessions must not share ids");
    // The first run's journals survived untouched alongside the new one.
    let journals_after = list_journals(&dir);
    assert_eq!(journals_after.len(), 3);
    for name in &journals_before {
        assert!(journals_after.contains(name), "journal {name:?} must survive the restart");
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

//! Incremental-maintenance exactness tests: the assembler's persistent
//! online state after any sequence of frame batches must be
//! bit-identical to a from-scratch pass over the assembled trace; closed
//! sliding windows served live must equal the offline `clip` + `analyze`
//! of the same spans; and both properties must survive transport faults
//! and crash-recovery (the snapshot dirty check keyed on applied events,
//! not just frames, so replayed frames after journal recovery are never
//! conflated with new ones).

use critlock_analysis::{analyze, clip, digest_window, online_analyze};
use critlock_collector::{
    push, push_with, start, Addr, CollectorConfig, CollectorHandle, CollectorStatus, PushOptions,
    SessionAssembler, Stream,
};
use critlock_trace::stream::{trace_frames, Handshake, StreamWriter};
use critlock_trace::{FaultPlan, RetryPolicy, Trace, Ts};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

fn test_config() -> CollectorConfig {
    let mut config = CollectorConfig::new(Addr::parse("127.0.0.1:0").unwrap());
    config.status_addr = Some(Addr::parse("127.0.0.1:0").unwrap());
    config
}

#[track_caller]
fn wait_for(handle: &CollectorHandle, what: &str, pred: impl Fn(&CollectorStatus) -> bool) {
    assert!(handle.wait_until(Duration::from_secs(30), pred), "timeout waiting for {what}");
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("critlock-incremental-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A contended two-lock trace whose size scales with `iters`.
fn build_trace(threads: usize, iters: usize) -> Trace {
    let mut b = critlock_trace::TraceBuilder::new("incremental-props");
    let hot = b.lock("hot");
    let cold = b.lock("cold");
    let tids: Vec<_> = (0..threads).map(|i| b.thread(format!("t{i}"), 0)).collect();
    for (i, &tid) in tids.iter().enumerate() {
        b.on(tid).work(i as u64 + 1);
        for k in 0..iters {
            b.on(tid).cs(hot, 3).work(2);
            if k % 3 == 0 {
                b.on(tid).cs(cold, 1);
            }
        }
        b.on(tid).exit();
    }
    b.build().unwrap()
}

/// Big enough on the wire that every built-in fault plan's offsets fire,
/// with a makespan spanning several 100-unit windows.
fn chunky_trace() -> Trace {
    let mut b = critlock_trace::TraceBuilder::new("fault-windows");
    let hot = b.lock("hot");
    let cold = b.lock("cold");
    let t0 = b.thread("main", 0);
    let t1 = b.thread("worker", 0);
    for _ in 0..300 {
        b.on(t0).work(1).cs(hot, 2).cs(cold, 1);
    }
    b.on(t0).exit();
    b.on(t1).work(5);
    for _ in 0..300 {
        b.on(t1).cs(hot, 2).work(1);
    }
    b.on(t1).exit();
    b.build().unwrap()
}

/// Every closed window a snapshot (or assembler) serves must equal the
/// offline oracle: `analyze(clip(trace, lo, hi))`, digested.
#[track_caller]
fn assert_windows_match_oracle(
    windows: &[critlock_trace::rollup::WindowDigest],
    trace: &Trace,
    width: Ts,
) {
    for w in windows {
        assert_eq!(w.lo, w.index * width);
        assert_eq!(w.hi, (w.index + 1) * width);
        let oracle = digest_window(w.index, w.lo, w.hi, &analyze(&clip(trace, w.lo, w.hi)));
        assert_eq!(w, &oracle, "window {} diverged from offline clip+analyze", w.index);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// However the frame stream is split into batches, the persistent
    /// online state's report after every batch is bit-identical to a
    /// from-scratch `online_analyze` of everything assembled so far, and
    /// the final state matches the one-shot pass over the full trace.
    #[test]
    fn batched_online_state_matches_one_shot(
        threads in 1usize..4,
        iters in 1usize..40,
        cuts in prop::collection::vec(1usize..30, 0..10),
    ) {
        let trace = build_trace(threads, iters);
        let frames = trace_frames(&trace);
        let mut asm = SessionAssembler::new();
        asm.set_window(16);
        let mut i = 0;
        for deliver in cuts {
            let end = (i + deliver).min(frames.len());
            for frame in &frames[i..end] {
                asm.apply(frame.clone());
            }
            i = end;
            let live = asm.online_report();
            let oracle = online_analyze(asm.partial());
            prop_assert_eq!(live, oracle, "mid-stream report diverged after {} frames", end);
        }
        for frame in &frames[i..] {
            asm.apply(frame.clone());
        }
        let live = asm.online_report();
        let oracle = online_analyze(asm.partial());
        prop_assert_eq!(live, oracle);
        prop_assert!(!asm.online_stale(), "in-order delivery must never go stale");

        // The assembled trace is the pushed trace, and closed windows
        // match the offline clip oracle on it.
        let full = asm.finalize();
        prop_assert_eq!(&full, &trace);
        asm.advance_windows(&full);
        assert_windows_match_oracle(&asm.windows(), &full, 16);
    }
}

/// Satellite: closed sliding windows served by a live collector equal
/// the offline `window::clip` + `analyze` of the same spans, and the
/// rollup annotation carries the latest of them.
#[test]
fn live_windows_match_offline_clip_exactly() {
    const WIDTH: Ts = 100;
    let mut config = test_config();
    config.window_width = Some(WIDTH);
    let handle = start(config).unwrap();
    let trace = chunky_trace();
    push(handle.ingest_addr(), &trace, None).unwrap();

    wait_for(&handle, "pushed session to end", |s| s.sessions.first().is_some_and(|x| x.ended));
    let status = handle.status();
    let snap = &status.sessions[0];
    assert_eq!(snap.report, analyze(&trace));
    assert_eq!(snap.online_cp_length, online_analyze(&trace).cp_length);
    assert!(!snap.windows.is_empty(), "an ended session must have closed its windows");
    assert_windows_match_oracle(&snap.windows, &trace, WIDTH);
    // With the session ended, the final window reaches the trace end.
    let makespan = trace.threads.iter().flat_map(|s| s.events.iter()).map(|e| e.ts).max().unwrap();
    assert_eq!(snap.windows.last().unwrap().index, makespan / WIDTH);

    // The rollup digest is annotated with the most recent closed window.
    let rollup = handle.rollup();
    let digest = rollup.sessions.values().next().unwrap();
    assert_eq!(digest.window.as_ref(), snap.windows.last());
    handle.shutdown();
}

/// Satellite: the fault matrix of PR 2 composed with incremental
/// maintenance — under every built-in transport fault plan, a resumable
/// push still yields a live snapshot whose offline report, online
/// report, and closed windows all equal the offline oracles.
#[test]
fn fault_matrix_preserves_online_and_window_exactness() {
    const WIDTH: Ts = 100;
    let trace = chunky_trace();
    let offline = analyze(&trace);
    let online = online_analyze(&trace);
    for plan in FaultPlan::all_builtin() {
        let name = plan.name.clone();
        let mut config = test_config();
        config.window_width = Some(WIDTH);
        // Short idle timeout so the stall plan degrades into a severed
        // connection the client must recover from.
        config.idle_timeout = Some(Duration::from_millis(200));
        let handle = start(config).unwrap();

        let opts = PushOptions {
            timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy::with_attempts(8),
            fault_plan: Some(plan),
            ..PushOptions::default()
        };
        push_with(handle.ingest_addr(), &trace, &opts)
            .unwrap_or_else(|e| panic!("plan `{name}`: push failed: {e}"));
        wait_for(&handle, "session to end", |s| s.sessions.first().is_some_and(|x| x.ended));

        let status = handle.status();
        let snap = &status.sessions[0];
        assert_eq!(snap.report, offline, "plan `{name}`: snapshot != offline");
        assert_eq!(snap.online_cp_length, online.cp_length, "plan `{name}`: online diverged");
        assert!(!snap.windows.is_empty(), "plan `{name}`: no closed windows");
        assert_windows_match_oracle(&snap.windows, &trace, WIDTH);
        handle.shutdown();
    }
}

/// Satellite regression: kill the collector mid-stream, restart on the
/// same journal, resume the push — the post-recovery snapshot must not
/// be served stale. The dirty check is keyed on applied events as well
/// as frames, so the replayed journal frames and the resumed tail are
/// never conflated; the final report, online estimate, and windows all
/// equal the offline oracles.
#[test]
fn recovery_resume_snapshot_is_never_stale() {
    const WIDTH: Ts = 100;
    let dir = tmpdir("recovery");
    let trace = chunky_trace();
    let frames = trace_frames(&trace);
    let token = b"incremental-recovery".to_vec();

    let mut config = test_config();
    config.journal_dir = Some(dir.clone());
    config.window_width = Some(WIDTH);
    let handle = start(config).unwrap();

    // Partial push by hand: handshake with a resume token, a prefix of
    // frames, then the producer "dies" (no End frame).
    let stream = Stream::connect(handle.ingest_addr()).unwrap();
    let handshake = Handshake { token: token.clone(), start_seq: 0 };
    let mut writer = StreamWriter::with_handshake(stream, &handshake).unwrap();
    let prefix = frames.len() / 2;
    for frame in &frames[..prefix] {
        writer.write_frame(frame).unwrap();
    }
    writer.flush().unwrap();
    wait_for(&handle, "prefix to be journaled", |s| {
        s.sessions.first().is_some_and(|snap| snap.frames == prefix as u64)
    });
    handle.crash();
    drop(writer);

    // Restart on the same journal: the session comes back, its snapshot
    // recomputed from the replayed frames (not carried over blindly).
    let mut config = test_config();
    config.journal_dir = Some(dir.clone());
    config.window_width = Some(WIDTH);
    let handle = start(config).unwrap();
    let status = handle.status();
    assert_eq!(status.recovered_sessions, 1, "status: {status:?}");
    assert_eq!(status.sessions[0].frames, prefix as u64);
    assert!(status.sessions[0].events > 0, "recovered snapshot must count replayed events");

    // Resume with the same token and finish.
    let opts = PushOptions {
        timeout: Some(Duration::from_secs(10)),
        retry: RetryPolicy::with_attempts(8),
        token: Some(token),
        ..PushOptions::default()
    };
    push_with(handle.ingest_addr(), &trace, &opts).unwrap();
    wait_for(&handle, "resumed session to end", |s| s.sessions.first().is_some_and(|x| x.ended));

    let status = handle.status();
    assert_eq!(status.sessions.len(), 1, "resume must not open a second session");
    let snap = &status.sessions[0];
    assert_eq!(snap.report, analyze(&trace), "post-recovery snapshot served stale");
    assert_eq!(snap.online_cp_length, online_analyze(&trace).cp_length);
    assert!(!snap.windows.is_empty());
    assert_windows_match_oracle(&snap.windows, &trace, WIDTH);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end tests of the live collector: pushed traces, real-thread
//! streaming sessions, mid-critical-section disconnects, backpressure
//! under both policies, and handshake rejection.

use critlock_analysis::{analyze, validate::check_trace};
use critlock_collector::{
    fetch_status, fetch_status_text, push, start, Addr, Backpressure, CollectorConfig,
    CollectorHandle, CollectorStatus, Stream,
};
use critlock_instrument::{spawn, Session};
use critlock_trace::stream::{Frame, StreamWriter};
use critlock_trace::{Event, EventKind, ObjId, ObjInfo, ObjKind, ThreadId, Trace, TraceMeta};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

fn test_config() -> CollectorConfig {
    let mut config = CollectorConfig::new(Addr::parse("127.0.0.1:0").unwrap());
    config.status_addr = Some(Addr::parse("127.0.0.1:0").unwrap());
    config
}

/// Wait for a collector-status condition without wall-clock spinning:
/// [`CollectorHandle::wait_until`] parks on the analysis loop's progress
/// condvar, so the test is paced by the collector, not by sleeps.
#[track_caller]
fn wait_for(handle: &CollectorHandle, what: &str, pred: impl Fn(&CollectorStatus) -> bool) {
    assert!(handle.wait_until(Duration::from_secs(30), pred), "timeout waiting for {what}");
}

/// Two threads contending on one lock plus an uncontended one.
fn sample_trace() -> Trace {
    let mut b = critlock_trace::TraceBuilder::new("pushed-app");
    let hot = b.lock("hot");
    let cold = b.lock("cold");
    let t0 = b.thread("main", 0);
    let t1 = b.thread("worker", 0);
    b.on(t0).cs(hot, 40).cs(cold, 5).exit_at(60);
    b.on(t1).work(10).cs_blocked(hot, 40, 15).work(5).exit();
    b.build().unwrap()
}

/// One thread, enough critical sections to span many Events frames.
fn big_trace() -> Trace {
    let mut b = critlock_trace::TraceBuilder::new("big-app");
    let l = b.lock("L");
    let t0 = b.thread("main", 0);
    for _ in 0..700 {
        b.on(t0).work(1).cs(l, 1);
    }
    b.on(t0).exit();
    b.build().unwrap()
}

fn shutdown(handle: CollectorHandle) {
    handle.shutdown();
}

#[test]
fn pushed_trace_snapshot_matches_offline_analyze_exactly() {
    let handle = start(test_config()).unwrap();
    let status_addr = handle.status_addr().unwrap().clone();
    let trace = sample_trace();
    let sent = push(handle.ingest_addr(), &trace, Some(Duration::from_millis(1))).unwrap();
    assert!(sent >= 6); // Start, Objects, 2×Thread, ≥1 Events, End

    wait_for(&handle, "pushed session to end", |s| s.sessions.len() == 1 && s.sessions[0].ended);

    // The acceptance criterion: live snapshot == `critlock analyze`.
    let status = fetch_status(&status_addr).unwrap();
    let snap = &status.sessions[0];
    let offline = analyze(&trace);
    assert_eq!(snap.report, offline);
    assert_eq!(snap.report.cp_length, offline.cp_length);
    assert_eq!(snap.report.locks[0].name, "hot");
    assert_eq!(snap.dropped_frames, 0);

    // Text endpoint carries the same ranking.
    let text = fetch_status_text(&status_addr, false).unwrap();
    assert!(text.contains("hot"), "status text:\n{text}");
    assert!(text.contains("[ended]"), "status text:\n{text}");
    shutdown(handle);
}

#[test]
fn real_thread_session_streams_to_collector() {
    let handle = start(test_config()).unwrap();

    let session = Session::new("live-app");
    session.stream_to(&handle.ingest_addr().to_string()).unwrap();
    session.param("workers", 4);
    let m = Arc::new(session.mutex("hot", 0u64));
    let workers: Vec<_> = (0..4)
        .map(|i| {
            let m = Arc::clone(&m);
            spawn(&session, format!("w{i}"), move || {
                for _ in 0..100 {
                    let mut g = m.lock();
                    *g += 1;
                    std::hint::black_box(&mut *g);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let local = session.finish().unwrap();

    wait_for(&handle, "streamed session to end", |s| {
        s.sessions.first().is_some_and(|snap| snap.ended)
    });

    let server_trace = handle.session_trace(0).unwrap();
    // Acceptance criterion: zero validation errors on the collector side.
    assert_eq!(check_trace(&server_trace), Vec::new());
    server_trace.validate().unwrap();
    // The collector reconstructed the exact trace the session recorded.
    assert_eq!(server_trace, local);
    assert_eq!(analyze(&server_trace), analyze(&local));
    shutdown(handle);
}

#[test]
fn mid_critical_section_disconnect_is_finalized() {
    let handle = start(test_config()).unwrap();

    let stream = Stream::connect(handle.ingest_addr()).unwrap();
    let mut writer = StreamWriter::new(stream).unwrap();
    writer.write_frame(&Frame::Start { meta: TraceMeta::named("crashy") }).unwrap();
    writer
        .write_frame(&Frame::Objects {
            first_id: 0,
            objects: vec![
                ObjInfo { kind: ObjKind::Lock, name: "L".into() },
                ObjInfo { kind: ObjKind::Lock, name: "M".into() },
            ],
        })
        .unwrap();
    writer.write_frame(&Frame::Thread { tid: ThreadId(0), name: Some("main".into()) }).unwrap();
    writer
        .write_frame(&Frame::Events {
            tid: ThreadId(0),
            events: vec![
                Event::new(0, EventKind::ThreadStart),
                Event::new(5, EventKind::LockAcquire { lock: ObjId(0) }),
                Event::new(6, EventKind::LockObtain { lock: ObjId(0) }),
                Event::new(7, EventKind::LockAcquire { lock: ObjId(1) }),
                Event::new(8, EventKind::LockContended { lock: ObjId(1) }),
            ],
        })
        .unwrap();
    writer.flush().unwrap();
    drop(writer); // dies holding L, contended on M, with no End frame

    wait_for(&handle, "disconnected session frames to be applied", |s| {
        s.sessions.first().is_some_and(|snap| snap.frames == 4)
    });

    let status = handle.status();
    let snap = &status.sessions[0];
    assert!(!snap.ended);

    let trace = handle.session_trace(0).unwrap();
    trace.validate().unwrap();
    assert_eq!(check_trace(&trace), Vec::new());
    // The held lock was released at the last-seen timestamp and counts as
    // an invocation; the incomplete contended acquire was excised.
    assert_eq!(snap.report.lock_by_name("L").unwrap().total_invocations, 1);
    assert!(snap.report.lock_by_name("M").is_none_or(|l| l.total_invocations == 0));
    shutdown(handle);
}

#[test]
fn drop_backpressure_sheds_frames_and_is_observable() {
    let mut config = test_config();
    config.queue_capacity = 2;
    config.backpressure = Backpressure::Drop;
    // Slow consumer: the analysis loop wakes rarely, so a fast push must
    // overflow the 2-frame queue.
    config.poll_interval = Duration::from_millis(500);
    config.snapshot_interval = Duration::from_secs(10);
    let handle = start(config).unwrap();
    let status_addr = handle.status_addr().unwrap().clone();

    let trace = big_trace();
    push(handle.ingest_addr(), &trace, None).unwrap();

    let status = fetch_status(&status_addr).unwrap();
    let snap = &status.sessions[0];
    assert!(snap.dropped_frames > 0, "expected drops, got {snap:?}");
    assert_eq!(snap.queue_high_water, 2);

    // Whatever survived still forms a valid trace.
    let survived = handle.session_trace(0).unwrap();
    survived.validate().unwrap();
    assert_eq!(check_trace(&survived), Vec::new());
    shutdown(handle);
}

#[test]
fn block_backpressure_loses_nothing() {
    let mut config = test_config();
    config.queue_capacity = 2;
    config.backpressure = Backpressure::Block;
    config.snapshot_interval = Duration::from_millis(20);
    let handle = start(config).unwrap();
    let status_addr = handle.status_addr().unwrap().clone();

    let trace = big_trace();
    push(handle.ingest_addr(), &trace, None).unwrap();

    wait_for(&handle, "blocked push to complete", |s| {
        s.sessions.first().is_some_and(|snap| snap.ended)
    });

    let status = fetch_status(&status_addr).unwrap();
    let snap = &status.sessions[0];
    assert_eq!(snap.dropped_frames, 0);
    // Despite the 2-frame queue, analysis is still exact.
    assert_eq!(snap.report, analyze(&trace));
    shutdown(handle);
}

#[test]
fn incompatible_handshake_is_rejected() {
    let handle = start(test_config()).unwrap();

    let mut stream = Stream::connect(handle.ingest_addr()).unwrap();
    stream.write_all(b"CLSM\x63").unwrap(); // claims protocol version 99
    stream.flush().unwrap();
    drop(stream);

    wait_for(&handle, "handshake rejection", |s| s.rejected_sessions == 1);
    let status = handle.status();
    assert_eq!(status.sessions_total, 0);
    assert!(status.sessions.is_empty());
    shutdown(handle);
}

//! Observability integration tests: the metrics endpoint end-to-end, the
//! frame conservation law under deterministic transport faults (a
//! property test over trace shape and fault plan), and proof that metrics
//! collection never perturbs the analysis — the live snapshot still
//! equals the offline `analyze` exactly with every counter hot.

use critlock_analysis::analyze;
use critlock_collector::{
    fetch_metrics_text, push_with, start, Addr, CollectorConfig, CollectorHandle, CollectorStatus,
    PushOptions,
};
use critlock_trace::{FaultPlan, RetryPolicy, Trace, TraceBuilder};
use proptest::prelude::*;
use std::time::Duration;

fn test_config() -> CollectorConfig {
    let mut config = CollectorConfig::new(Addr::parse("127.0.0.1:0").unwrap());
    config.status_addr = Some(Addr::parse("127.0.0.1:0").unwrap());
    config.metrics_addr = Some(Addr::parse("127.0.0.1:0").unwrap());
    config
}

#[track_caller]
fn wait_for(handle: &CollectorHandle, what: &str, pred: impl Fn(&CollectorStatus) -> bool) {
    assert!(handle.wait_until(Duration::from_secs(30), pred), "timeout waiting for {what}");
}

/// A two-thread contended trace whose wire size scales with `reps`, so
/// the built-in fault plans' byte offsets actually fire.
fn chunky_trace(reps: usize) -> Trace {
    let mut b = TraceBuilder::new("obs");
    let hot = b.lock("hot");
    let t0 = b.thread("main", 0);
    let t1 = b.thread("worker", 0);
    for _ in 0..reps {
        b.on(t0).work(1).cs(hot, 2);
    }
    b.on(t0).exit();
    b.on(t1).work(3);
    for _ in 0..reps {
        b.on(t1).cs(hot, 2).work(1);
    }
    b.on(t1).exit();
    b.build().unwrap()
}

/// The frame conservation law: every frame counted in must be accounted
/// to exactly one fate (assembled, replay-skipped, gap-rejected,
/// quota-dropped or queue-dropped).
#[track_caller]
fn assert_conservation(handle: &CollectorHandle, context: &str) {
    let snap = handle.metrics_snapshot();
    let c = |name: &str| {
        snap.counter(name).unwrap_or_else(|| panic!("{context}: missing counter {name}"))
    };
    let frames_in = c("critlock_frames_in_total");
    let fates = c("critlock_frames_assembled_total")
        + c("critlock_frames_replayed_total")
        + c("critlock_frames_gap_rejected_total")
        + c("critlock_frames_quota_dropped_total")
        + c("critlock_frames_queue_dropped_total");
    assert_eq!(frames_in, fates, "{context}: frame conservation violated");
}

/// The tentpole's inertness criterion, live: with the metrics endpoint
/// enabled and every counter hot, the collector's snapshot still equals
/// the offline `analyze` exactly, and the scrape exposes the traffic.
#[test]
fn live_snapshot_matches_offline_analyze_with_metrics_enabled() {
    let trace = chunky_trace(300);
    let offline = analyze(&trace);
    let handle = start(test_config()).unwrap();

    let opts = PushOptions { timeout: Some(Duration::from_secs(10)), ..PushOptions::default() };
    let sent = push_with(handle.ingest_addr(), &trace, &opts).unwrap();
    assert!(sent > 0);

    // Regression (satellite 3): an effectively-unbounded wait must mean
    // "no deadline", not an `Instant + Duration` overflow panic.
    assert!(handle.wait_until(Duration::MAX, |s| s.sessions.first().is_some_and(|snap| snap.ended)));
    assert_eq!(handle.status().sessions[0].report, offline, "metrics must not perturb analysis");

    // Scrape over the socket, as `critlock metrics <addr>` would.
    let text =
        fetch_metrics_text(handle.metrics_addr().unwrap(), Some(Duration::from_secs(10))).unwrap();
    assert!(text.contains("# TYPE critlock_frames_in_total counter"), "scrape:\n{text}");
    assert!(text.contains("critlock_snapshot_refresh_ns_bucket"), "scrape:\n{text}");

    let snap = handle.metrics_snapshot();
    assert!(snap.counter("critlock_frames_in_total").unwrap() > 0);
    assert!(snap.counter("critlock_frames_assembled_total").unwrap() > 0);
    assert!(snap.counter("critlock_bytes_in_total").unwrap() > 0);
    assert!(snap.counter("critlock_events_in_total").unwrap() > 0);
    assert_eq!(snap.counter("critlock_sessions_started_total"), Some(1));
    assert_conservation(&handle, "clean push");

    // Two scrapes with no traffic in between render identical text:
    // deterministic exposition order.
    let a = handle.metrics_text();
    let b = handle.metrics_text();
    assert_eq!(a, b);
    handle.shutdown();
}

/// Conservation must survive every deterministic transport fault: cut
/// connections, truncated frames, bit flips (CRC failures), stalls.
/// Replayed frames inflate `frames_in` but land in the replay fate;
/// corrupt frames are counted separately and never enter the law.
#[test]
fn conservation_holds_under_every_builtin_fault_plan() {
    let trace = chunky_trace(300);
    let offline = analyze(&trace);
    for plan in FaultPlan::all_builtin() {
        let name = plan.name.clone();
        let mut config = test_config();
        config.idle_timeout = Some(Duration::from_millis(200));
        let handle = start(config).unwrap();

        let opts = PushOptions {
            timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy::with_attempts(8),
            fault_plan: Some(plan),
            ..PushOptions::default()
        };
        push_with(handle.ingest_addr(), &trace, &opts)
            .unwrap_or_else(|e| panic!("plan `{name}`: push failed: {e}"));
        wait_for(&handle, "session to end", |s| s.sessions.first().is_some_and(|x| x.ended));

        assert_conservation(&handle, &format!("plan `{name}`"));
        assert_eq!(handle.status().sessions[0].report, offline, "plan `{name}`");
        handle.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The conservation law is shape-independent: whatever the trace size
    /// and whichever built-in fault plan mangles the transport, the
    /// counters balance once the session ends.
    #[test]
    fn conservation_is_invariant_over_trace_shape_and_fault_plan(
        reps in 20usize..240,
        plan_idx in 0usize..FaultPlan::all_builtin().len(),
    ) {
        let trace = chunky_trace(reps);
        let plan = FaultPlan::all_builtin().swap_remove(plan_idx);
        let name = plan.name.clone();
        let mut config = test_config();
        config.idle_timeout = Some(Duration::from_millis(200));
        let handle = start(config).unwrap();

        let opts = PushOptions {
            timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy::with_attempts(8),
            fault_plan: Some(plan),
            ..PushOptions::default()
        };
        // Small traces may legitimately fail under aggressive plans (the
        // whole wire fits before the fault offset resets); conservation
        // must hold either way.
        let pushed = push_with(handle.ingest_addr(), &trace, &opts).is_ok();
        if pushed {
            wait_for(&handle, "session to end", |s| {
                s.sessions.first().is_some_and(|x| x.ended)
            });
        }
        // Let any in-flight reader thread finish accounting.
        let _ = handle.wait_until(Duration::from_millis(200), |_| false);
        assert_conservation(&handle, &format!("plan `{name}` reps {reps}"));
        handle.shutdown();
    }
}

//! Property tests for the durable forward spool: saves are atomic
//! replacements, loads are all-or-nothing, and no corruption of the
//! on-disk bytes — torn tails, bit flips, appended garbage, stray tmp
//! files — can ever surface a torn or invented rollup.

use critlock_collector::outbox;
use critlock_trace::rollup::{cp_share_ppm, LockDigest, Rollup, SessionDigest};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "critlock-outbox-props-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn digest(key: &str, cp_length: u64, locks: &[(u8, u64)]) -> SessionDigest {
    let mut lock_digests: Vec<LockDigest> = locks
        .iter()
        .map(|(letter, cp_time)| LockDigest {
            name: format!("lock-{}", (b'a' + letter % 26) as char),
            cp_time: *cp_time,
            cp_share_ppm: cp_share_ppm(*cp_time, cp_length),
            invocations_on_cp: 1 + cp_time % 7,
            contended_on_cp: cp_time % 3,
            total_invocations: 2 + cp_time % 11,
            total_wait: cp_time / 2,
            total_hold: *cp_time,
        })
        .collect();
    lock_digests.sort_by(|a, b| a.name.cmp(&b.name));
    lock_digests.dedup_by(|a, b| a.name == b.name);
    SessionDigest {
        key: key.to_string(),
        app: format!("app-{key}"),
        cp_length,
        makespan: cp_length + 17,
        degraded: cp_length.is_multiple_of(5),
        locks: lock_digests,
        window: None,
    }
}

fn rollup_from(keys: &BTreeSet<String>, cp_base: u64, locks: &[(u8, u64)]) -> Rollup {
    let mut rollup = Rollup::new();
    for (i, key) in keys.iter().enumerate() {
        rollup.insert(digest(key, cp_base + i as u64 + 1, locks));
    }
    rollup
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replacement is atomic and corruption is contained: after saving A
    /// then B, mangling the spool bytes yields either exactly B or a
    /// clean `None` — never a panic, never a torn mixture, and a stray
    /// uncommitted tmp file never shadows the committed spool.
    #[test]
    fn spool_survives_the_corruption_matrix(
        raw_keys in prop::collection::vec(0u64..1_000_000, 1..8),
        locks in prop::collection::vec((0u8..26, 1u64..1_000_000), 0..6),
        cp_base in 1u64..1_000_000_000,
        cut in 0usize..1 << 20,
        flip_at in 0usize..1 << 20,
        flip_bit in 0u32..8,
        mode in 0u8..4,
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let dir = scratch_dir();
        let keys: BTreeSet<String> =
            raw_keys.iter().map(|n| format!("session-{n}")).collect();

        // Fresh dir: nothing to load, clear is a no-op.
        prop_assert!(outbox::load(&dir).is_none());
        outbox::clear(&dir).unwrap();

        // Save A, then replace with a distinct B; load must see exactly B.
        let a = rollup_from(&keys, cp_base, &locks);
        let b = rollup_from(&keys, cp_base + 1, &locks);
        prop_assert_ne!(a.to_bytes(), b.to_bytes());
        outbox::save(&dir, &a).unwrap();
        prop_assert_eq!(outbox::load(&dir).as_ref(), Some(&a));
        outbox::save(&dir, &b).unwrap();
        prop_assert_eq!(outbox::load(&dir).as_ref(), Some(&b));

        // A write that never reached the rename commit point must not
        // shadow the committed spool, whatever the tmp file holds.
        let tmp = outbox::outbox_path(&dir).with_extension("clag.tmp");
        std::fs::write(&tmp, &garbage).unwrap();
        prop_assert_eq!(outbox::load(&dir).as_ref(), Some(&b));
        let _ = std::fs::remove_file(&tmp);

        // Corrupt the committed bytes; load must be all-or-nothing.
        let clean = std::fs::read(outbox::outbox_path(&dir)).unwrap();
        let mut mangled = clean.clone();
        match mode {
            // Torn tail: the file stops mid-write.
            0 => mangled.truncate(cut % mangled.len()),
            // A single flipped bit anywhere in the framing or payload.
            1 => {
                let at = flip_at % mangled.len();
                mangled[at] ^= 1u8 << flip_bit;
            }
            // Trailing garbage appended after the framed document.
            2 => mangled.extend_from_slice(&garbage),
            // Full overwrite with unrelated bytes.
            _ => mangled = garbage.clone(),
        }
        let unchanged = mangled == clean;
        std::fs::write(outbox::outbox_path(&dir), &mangled).unwrap();
        match outbox::load(&dir) {
            Some(loaded) => {
                // Only byte-identical survivors may decode (e.g. an
                // append of zero garbage bytes that changed nothing).
                prop_assert!(unchanged, "corrupted spool decoded: mode={}", mode);
                prop_assert_eq!(loaded, b.clone());
            }
            None => prop_assert!(!unchanged, "intact spool failed to load"),
        }

        // Whatever state corruption left behind, a fresh save recovers
        // and clear removes it for good (idempotently).
        outbox::save(&dir, &a).unwrap();
        prop_assert_eq!(outbox::load(&dir).as_ref(), Some(&a));
        outbox::clear(&dir).unwrap();
        prop_assert!(outbox::load(&dir).is_none());
        outbox::clear(&dir).unwrap();

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Property tests for the resume protocol's sequence accounting: an
//! arbitrary split of a frame stream across K disconnects — with the
//! client replaying from any position at or before the collector's
//! acknowledged sequence, as a reconnecting producer does — reassembles
//! into a byte-identical trace.
//!
//! This drives the same dedup-by-sequence rule the collector's session
//! reader applies (`seq < expected` frames are skipped, `seq == expected`
//! frames are applied) through the real [`SessionAssembler`], without
//! sockets, so proptest can explore thousands of disconnect patterns
//! quickly. The socket path is covered end-to-end by `tests/faults.rs`.

use critlock_collector::SessionAssembler;
use critlock_trace::stream::{trace_frames, write_trace, Frame};
use critlock_trace::Trace;
use proptest::prelude::*;

/// A contended two-lock trace whose size scales with `iters`, so frame
/// counts range from a handful to several Events frames.
fn build_trace(threads: usize, iters: usize) -> Trace {
    let mut b = critlock_trace::TraceBuilder::new("resume-props");
    let hot = b.lock("hot");
    let tids: Vec<_> = (0..threads).map(|i| b.thread(format!("t{i}"), 0)).collect();
    for (i, &tid) in tids.iter().enumerate() {
        b.on(tid).work(i as u64 + 1);
        for _ in 0..iters {
            b.on(tid).cs(hot, 3).work(2);
        }
        b.on(tid).exit();
    }
    b.build().unwrap()
}

fn apply_connection(
    asm: &mut SessionAssembler,
    frames: &[Frame],
    start: usize,
    end: usize,
    expected: &mut usize,
) {
    for (i, frame) in frames[start..end].iter().enumerate() {
        let seq = start + i;
        if seq < *expected {
            continue; // duplicate of an already-applied frame
        }
        assert_eq!(seq, *expected, "client must never leave a gap");
        asm.apply(frame.clone());
        *expected += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However the stream is split across disconnects, and however stale
    /// the client's resume point is (as long as it is conservative, which
    /// the ack protocol guarantees), the reassembled trace is
    /// byte-identical to a single uninterrupted delivery.
    #[test]
    fn split_stream_reassembles_byte_identical(
        threads in 1usize..4,
        iters in 1usize..60,
        cuts in prop::collection::vec((0usize..40, 0usize..40, any::<bool>()), 0..8),
    ) {
        let trace = build_trace(threads, iters);
        let frames = trace_frames(&trace);
        let total = frames.len();

        // Reference: one connection, no faults.
        let mut reference = SessionAssembler::new();
        for frame in &frames {
            reference.apply(frame.clone());
        }

        // Faulty delivery: each cut ends a connection after `deliver`
        // frames; the next one resumes from the client's (possibly
        // stale, never ahead) view of the ack.
        let mut asm = SessionAssembler::new();
        let mut expected = 0usize; // collector's next expected sequence
        let mut client_acked = 0usize; // client's view, always <= expected
        for (deliver, stale, saw_final_ack) in cuts {
            let start = client_acked.saturating_sub(stale).min(expected);
            let end = (start + deliver).min(total);
            apply_connection(&mut asm, &frames, start, end, &mut expected);
            if saw_final_ack {
                client_acked = expected;
            }
        }
        // The last connection survives and delivers the remainder.
        apply_connection(&mut asm, &frames, client_acked, total, &mut expected);

        prop_assert_eq!(expected, total);
        prop_assert_eq!(asm.frames(), reference.frames());
        prop_assert_eq!(asm.events(), reference.events());
        let reassembled = asm.finalize();
        prop_assert_eq!(&reassembled, &reference.finalize());

        // Byte-identical, not merely structurally equal.
        let mut split_bytes = Vec::new();
        let mut straight_bytes = Vec::new();
        write_trace(&reassembled, &mut split_bytes).unwrap();
        write_trace(&trace, &mut straight_bytes).unwrap();
        prop_assert_eq!(split_bytes, straight_bytes);
    }
}

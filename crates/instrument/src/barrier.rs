//! Instrumented barrier.
//!
//! The arrival record is written *before* the real wait (paper §IV.A.2) so
//! the last arriver — the thread the critical path runs through — can be
//! identified by the analysis. The barrier generation (epoch) is tracked
//! with an atomic arrival counter so episodes match across threads.

use crate::session::{record, SessionInner};
use critlock_trace::{EventKind, ObjId, ObjKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An instrumented barrier for a fixed number of participants.
pub struct Barrier {
    id: ObjId,
    inner: std::sync::Barrier,
    parties: u64,
    arrivals: AtomicU64,
}

impl Barrier {
    pub(crate) fn new(session: Arc<SessionInner>, name: String, parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        let id = session.register_object(ObjKind::Barrier, name);
        Barrier {
            id,
            inner: std::sync::Barrier::new(parties),
            parties: parties as u64,
            arrivals: AtomicU64::new(0),
        }
    }

    /// The barrier's trace object id.
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// Wait at the barrier; returns `true` for the leader (as
    /// `std::sync::Barrier` reports it).
    pub fn wait(&self) -> bool {
        let idx = self.arrivals.fetch_add(1, Ordering::Relaxed);
        let epoch = (idx / self.parties) as u32;
        record(EventKind::BarrierArrive { barrier: self.id, epoch });
        let res = self.inner.wait();
        record(EventKind::BarrierDepart { barrier: self.id, epoch });
        res.is_leader()
    }
}

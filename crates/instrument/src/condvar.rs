//! Instrumented condition variable.
//!
//! Waits record the conceptual release of the guarding mutex, the wait
//! begin, the wakeup and the re-acquisition, matching the protocol the
//! simulator produces. Signals carry a per-condvar sequence number; the
//! wakee records the most recent sequence it observes, and the analysis
//! falls back to timestamp matching when sequences are ambiguous (real
//! schedulers do not reveal exactly which signal woke a waiter).

use crate::mutex::MutexGuard;
use crate::session::{record, SessionInner};
use critlock_trace::{EventKind, ObjId, ObjKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An instrumented condition variable. Use together with
/// [`crate::Mutex`], Pthreads-style.
pub struct Condvar {
    id: ObjId,
    inner: parking_lot::Condvar,
    seq: AtomicU64,
}

impl Condvar {
    pub(crate) fn new(session: Arc<SessionInner>, name: String) -> Self {
        let id = session.register_object(ObjKind::Condvar, name);
        Condvar { id, inner: parking_lot::Condvar::new(), seq: AtomicU64::new(0) }
    }

    /// The condvar's trace object id.
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// Block until signalled, releasing (and re-acquiring) the mutex
    /// guarding the wait. As with Pthreads, wrap in a predicate loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let mutex_id = guard.lock_id();
        record(EventKind::LockRelease { lock: mutex_id });
        record(EventKind::CondWaitBegin { cv: self.id });
        self.inner.wait(guard.inner_mut());
        let seq = self.seq.load(Ordering::Acquire);
        record(EventKind::CondWakeup { cv: self.id, signal_seq: seq });
        record(EventKind::LockAcquire { lock: mutex_id });
        record(EventKind::LockObtain { lock: mutex_id });
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel) + 1;
        record(EventKind::CondSignal { cv: self.id, signal_seq: seq });
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel) + 1;
        record(EventKind::CondBroadcast { cv: self.id, signal_seq: seq });
        self.inner.notify_all();
    }
}

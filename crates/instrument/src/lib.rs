//! # critlock-instrument
//!
//! Real-thread instrumentation runtime: the Rust equivalent of the
//! paper's `LD_PRELOAD` Pthreads interposition tool (§IV). Instrumented
//! [`Mutex`], [`Barrier`] and [`Condvar`] wrappers record the MAGIC()
//! event protocol into per-thread buffers with a monotonic nanosecond
//! clock (the portable stand-in for `mftb`/`rdtsc`), and a [`Session`]
//! assembles the buffers into a `critlock_trace::Trace` for the analysis
//! module.
//!
//! ```
//! use critlock_instrument::{Session, spawn};
//! use std::sync::Arc;
//!
//! let session = Session::new("quick");
//! let counter = Arc::new(session.mutex("counter", 0u64));
//!
//! let handles: Vec<_> = (0..4)
//!     .map(|i| {
//!         let counter = Arc::clone(&counter);
//!         spawn(&session, format!("w{i}"), move || {
//!             for _ in 0..100 {
//!                 *counter.lock() += 1;
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! let trace = session.finish().unwrap();
//! assert_eq!(trace.num_threads(), 5); // main + 4 workers
//! let report = critlock_analysis::analyze(&trace);
//! assert_eq!(report.lock_by_name("counter").unwrap().total_invocations, 400);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod barrier;
mod condvar;
mod mutex;
mod resume;
mod rwlock;
mod session;
mod thread;

pub use barrier::Barrier;
pub use condvar::Condvar;
pub use mutex::{Mutex, MutexGuard};
pub use rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};
pub use session::Session;
pub use thread::{run_workers, spawn, JoinHandle};

impl Session {
    /// Create an instrumented mutex owned by this session.
    pub fn mutex<T>(&self, name: impl Into<String>, value: T) -> Mutex<T> {
        Mutex::new(std::sync::Arc::clone(self.inner()), name.into(), value)
    }

    /// Create an instrumented barrier for `parties` threads.
    pub fn barrier(&self, name: impl Into<String>, parties: usize) -> Barrier {
        Barrier::new(std::sync::Arc::clone(self.inner()), name.into(), parties)
    }

    /// Create an instrumented condition variable.
    pub fn condvar(&self, name: impl Into<String>) -> Condvar {
        Condvar::new(std::sync::Arc::clone(self.inner()), name.into())
    }

    /// Create an instrumented reader-writer lock.
    pub fn rwlock<T>(&self, name: impl Into<String>, value: T) -> RwLock<T> {
        RwLock::new(std::sync::Arc::clone(self.inner()), name.into(), value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_analysis::analyze;
    use std::sync::Arc;

    #[test]
    fn contended_counter_produces_valid_trace() {
        let session = Session::new("counter");
        let m = Arc::new(session.mutex("L", 0u64));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let m = Arc::clone(&m);
                spawn(&session, format!("w{i}"), move || {
                    for _ in 0..50 {
                        let mut g = m.lock();
                        *g += 1;
                        // A little work inside the CS to force contention.
                        std::hint::black_box(&mut *g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = session.finish().unwrap();
        assert_eq!(trace.num_threads(), 5);
        let eps = critlock_trace::lock_episodes(&trace);
        assert_eq!(eps.len(), 200);

        let rep = analyze(&trace);
        let lr = rep.lock_by_name("L").unwrap();
        assert_eq!(lr.total_invocations, 200);
        // The walk must complete on a clean fork-join trace.
        assert!(rep.cp_complete);
        assert!(rep.cp_length <= rep.makespan);
    }

    #[test]
    fn try_lock_does_not_block() {
        let session = Session::new("trylock");
        let m = session.mutex("L", ());
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert!(m.try_lock().is_some());
        let trace = session.finish().unwrap();
        // Two successful invocations recorded.
        assert_eq!(critlock_trace::lock_episodes(&trace).len(), 2);
    }

    #[test]
    fn barrier_episodes_share_epochs() {
        let session = Session::new("barrier");
        let bar = Arc::new(session.barrier("B", 3));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let bar = Arc::clone(&bar);
                spawn(&session, format!("w{i}"), move || {
                    for _ in 0..5 {
                        bar.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = session.finish().unwrap();
        let eps = critlock_trace::barrier_episodes(&trace);
        assert_eq!(eps.len(), 15);
        for epoch in 0..5u32 {
            assert_eq!(eps.iter().filter(|e| e.epoch == epoch).count(), 3);
        }
        analyze(&trace); // must not panic
    }

    #[test]
    fn condvar_handshake() {
        let session = Session::new("cv");
        let m = Arc::new(session.mutex("M", false));
        let cv = Arc::new(session.condvar("CV"));

        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let consumer = spawn(&session, "consumer", move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        let (m3, cv3) = (Arc::clone(&m), Arc::clone(&cv));
        let producer = spawn(&session, "producer", move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            let mut g = m3.lock();
            *g = true;
            drop(g);
            cv3.notify_one();
        });
        consumer.join().unwrap();
        producer.join().unwrap();
        let trace = session.finish().unwrap();
        let waits = critlock_trace::cond_wait_episodes(&trace);
        assert!(!waits.is_empty());
        // The wait blocked for roughly the producer's sleep.
        assert!(waits.iter().any(|w| w.wait_time() > 1_000_000));
        analyze(&trace);
    }

    #[test]
    fn join_edges_recorded() {
        let session = Session::new("join");
        let h = spawn(&session, "w", || 42);
        assert_eq!(h.join().unwrap(), 42);
        let trace = session.finish().unwrap();
        let joins = critlock_trace::join_episodes(&trace);
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].child, critlock_trace::ThreadId(1));
    }

    #[test]
    fn run_workers_helper() {
        let session = Session::new("workers");
        let m = Arc::new(session.mutex("L", 0usize));
        let m2 = Arc::clone(&m);
        run_workers(&session, 4, move |_i| {
            *m2.lock() += 1;
        });
        assert_eq!(*m.lock(), 4);
        let trace = session.finish().unwrap();
        assert_eq!(trace.num_threads(), 5);
        assert!(critlock_trace::join_episodes(&trace).len() == 4);
    }

    #[test]
    fn rwlock_readers_concurrent_writers_exclusive() {
        let session = Session::new("rw");
        let cache = Arc::new(session.rwlock("cache", vec![0u64; 8]));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let cache = Arc::clone(&cache);
                spawn(&session, format!("w{i}"), move || {
                    for round in 0..50 {
                        if round % 10 == 0 {
                            let mut g = cache.write();
                            g[i % 8] += 1;
                        } else {
                            let g = cache.read();
                            std::hint::black_box(g[i % 8]);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = session.finish().unwrap();
        trace.validate().unwrap();
        let eps = critlock_trace::rw_episodes(&trace);
        assert_eq!(eps.len(), 200);
        assert_eq!(eps.iter().filter(|e| e.write).count(), 20);
        // Cross-thread rw exclusion holds on the recorded trace.
        let warnings = critlock_analysis::validate::check_trace(&trace);
        assert!(warnings.is_empty(), "{warnings:?}");
        analyze(&trace);
    }

    #[test]
    fn try_rwlock_does_not_block() {
        let session = Session::new("tryrw");
        let l = session.rwlock("R", ());
        {
            let _w = l.write();
            assert!(l.try_read().is_none());
            assert!(l.try_write().is_none());
        }
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_some());
        let trace = session.finish().unwrap();
        assert_eq!(critlock_trace::rw_episodes(&trace).len(), 3);
    }

    #[test]
    fn nested_instrumented_locks() {
        let session = Session::new("nested");
        let a = session.mutex("A", ());
        let b = session.mutex("B", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let trace = session.finish().unwrap();
        assert_eq!(critlock_trace::lock_episodes(&trace).len(), 2);
    }

    #[test]
    fn real_trace_cp_coverage_is_high() {
        // On a real-clock trace the CP should cover most of the makespan
        // (small wakeup latencies create gaps).
        let session = Session::new("coverage");
        let m = Arc::new(session.mutex("L", 0u64));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let m = Arc::clone(&m);
                spawn(&session, format!("w{i}"), move || {
                    for _ in 0..20 {
                        let mut g = m.lock();
                        for _ in 0..1000 {
                            *g = std::hint::black_box(*g + 1);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = session.finish().unwrap();
        let rep = analyze(&trace);
        assert!(rep.cp_complete, "walk should complete");
        assert!(rep.coverage > 0.5, "coverage {} unexpectedly low", rep.coverage);
    }
}

//! Instrumented mutex.
//!
//! Follows the paper's interposition strategy exactly (Fig. 4): a
//! non-blocking `try_lock` first — success means an uncontended
//! invocation; on failure a *contention* record is written and the thread
//! falls back to the blocking lock. The release record is written *after*
//! the real unlock so no tracing overhead lands inside the critical
//! section.

use crate::session::{record, SessionInner};
use critlock_trace::{EventKind, ObjId, ObjKind};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An instrumented mutual-exclusion lock around a value of type `T`.
///
/// Create through [`crate::Session::mutex`]; share across threads with
/// `Arc`. The API mirrors `parking_lot::Mutex`.
pub struct Mutex<T> {
    pub(crate) id: ObjId,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    pub(crate) fn new(session: Arc<SessionInner>, name: String, value: T) -> Self {
        let id = session.register_object(ObjKind::Lock, name);
        Mutex { id, inner: parking_lot::Mutex::new(value) }
    }

    /// The lock's trace object id.
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// Acquire the lock, recording acquire/contended/obtain events.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        record(EventKind::LockAcquire { lock: self.id });
        let guard = match self.inner.try_lock() {
            Some(g) => g,
            None => {
                record(EventKind::LockContended { lock: self.id });
                self.inner.lock()
            }
        };
        record(EventKind::LockObtain { lock: self.id });
        MutexGuard { lock: self, guard: Some(guard) }
    }

    /// Non-blocking acquire. A failed attempt is *not* recorded as a lock
    /// invocation (it neither waits nor holds).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        record(EventKind::LockAcquire { lock: self.id });
        record(EventKind::LockObtain { lock: self.id });
        Some(MutexGuard { lock: self, guard: Some(guard) })
    }

    /// Access the value without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// RAII guard for [`Mutex`]; releasing it records the release event after
/// the real unlock.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    guard: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real unlock first, then the trace record (paper §IV.A.1).
        drop(self.guard.take());
        record(EventKind::LockRelease { lock: self.lock.id });
    }
}

impl<'a, T> MutexGuard<'a, T> {
    /// The underlying `parking_lot` guard (used by the condvar wait).
    pub(crate) fn inner_mut(&mut self) -> &mut parking_lot::MutexGuard<'a, T> {
        self.guard.as_mut().expect("guard present until drop")
    }

    /// The trace id of the guarded lock.
    pub(crate) fn lock_id(&self) -> ObjId {
        self.lock.id
    }
}

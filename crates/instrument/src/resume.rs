//! Frame sinks for live streaming, including the fault-tolerant one.
//!
//! A [`Session`](crate::Session) streams frames through a [`FrameSink`]:
//! either a [`PlainSink`] (one shot over an arbitrary `Write`, dropped on
//! the first error — the original `stream_to` behavior) or a
//! [`ResumableSink`], which keeps every frame it has ever written in a
//! replay buffer and survives collector restarts. On any transport error
//! the resumable sink reconnects with capped exponential backoff, resends
//! its resume token in the CLSM handshake, reads back the sequence number
//! the collector has durably received, and replays the gap. The extra
//! memory — a second copy of the event stream for the session's lifetime
//! — is the price of being able to resume after the collector itself
//! crashed and recovered from its journal.
//!
//! The sequence-number contract mirrors `critlock_collector::push_with`:
//! the collector numbers a connection's frames from the handshake's
//! `start_seq`, so the replay always starts exactly there; frames the
//! collector already holds are skipped server-side by sequence number,
//! and the initial ack only feeds progress accounting.

use critlock_trace::stream::{read_ack, Frame, Handshake, StreamWriter};
use critlock_trace::{RetryPolicy, TraceError};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long a resumable sink waits for an acknowledgement before treating
/// the collector as unreachable and reconnecting.
const ACK_TIMEOUT: Duration = Duration::from_secs(5);

/// Where a live session's frames go. Implementations decide what a write
/// failure means: [`PlainSink`] surfaces it (and the session detaches the
/// sink), [`ResumableSink`] reconnects and replays first.
pub(crate) trait FrameSink: Send {
    /// Write one frame.
    fn write_frame(&mut self, frame: &Frame) -> critlock_trace::Result<()>;
    /// Flush buffered bytes to the transport.
    fn flush(&mut self) -> critlock_trace::Result<()>;
    /// Close the stream after the final frame; a resumable sink verifies
    /// here that the collector acknowledged everything.
    fn close(&mut self) -> critlock_trace::Result<()>;
}

/// The one-shot sink: a `StreamWriter` over an arbitrary byte sink.
pub(crate) struct PlainSink {
    writer: StreamWriter<Box<dyn Write + Send>>,
}

impl PlainSink {
    /// Write the CLSM header to `sink` and wrap it.
    pub(crate) fn new(sink: Box<dyn Write + Send>) -> critlock_trace::Result<PlainSink> {
        Ok(PlainSink { writer: StreamWriter::new(sink)? })
    }
}

impl FrameSink for PlainSink {
    fn write_frame(&mut self, frame: &Frame) -> critlock_trace::Result<()> {
        self.writer.write_frame(frame)
    }

    fn flush(&mut self) -> critlock_trace::Result<()> {
        self.writer.flush()
    }

    fn close(&mut self) -> critlock_trace::Result<()> {
        self.writer.flush()
    }
}

/// A connected collector transport (`unix:/path` or `host:port`).
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    fn connect(addr: &str) -> io::Result<Conn> {
        if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                return Ok(Conn::Unix(std::os::unix::net::UnixStream::connect(path)?));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix-domain sockets are not supported on this platform",
                ));
            }
        }
        Ok(Conn::Tcp(TcpStream::connect(addr)?))
    }

    fn set_timeouts(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
        }
    }

    fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The fault-tolerant sink behind [`Session::stream_to_resumable`]
/// (see the module docs for the protocol).
///
/// [`Session::stream_to_resumable`]: crate::Session::stream_to_resumable
pub(crate) struct ResumableSink {
    addr: String,
    token: Vec<u8>,
    policy: RetryPolicy,
    /// Every frame ever written, in order; `frames[acked..]` is the
    /// replay gap after a reconnect.
    frames: Vec<Frame>,
    /// Highest sequence number the collector has acknowledged.
    acked: u64,
    conn: Option<Conn>,
}

impl ResumableSink {
    /// Connect to `addr` and perform the resumable handshake. Fails fast:
    /// the *initial* connection does not retry, so a typo'd address
    /// surfaces immediately instead of after the backoff budget.
    pub(crate) fn connect(
        addr: &str,
        token: Vec<u8>,
        policy: RetryPolicy,
    ) -> io::Result<ResumableSink> {
        let mut sink = ResumableSink {
            addr: addr.to_string(),
            token,
            policy,
            frames: Vec::new(),
            acked: 0,
            conn: None,
        };
        sink.try_connect()?;
        Ok(sink)
    }

    /// One connection attempt: handshake announcing `acked` as the start
    /// sequence, read the collector's ack, replay `frames[start..]`.
    fn try_connect(&mut self) -> io::Result<()> {
        let mut conn = Conn::connect(&self.addr)?;
        conn.set_timeouts(Some(ACK_TIMEOUT))?;
        let start = self.acked.min(self.frames.len() as u64) as usize;
        let handshake = Handshake { token: self.token.clone(), start_seq: start as u64 };
        {
            let mut writer = StreamWriter::with_handshake(&mut conn, &handshake).map_err(to_io)?;
            writer.flush().map_err(to_io)?;
        }
        let ack = read_ack(&mut conn).map_err(to_io)?;
        self.acked = self.acked.max(ack.min(self.frames.len() as u64));
        {
            let mut writer = StreamWriter::append(&mut conn);
            for frame in &self.frames[start..] {
                writer.write_frame(frame).map_err(to_io)?;
            }
            writer.flush().map_err(to_io)?;
        }
        self.conn = Some(conn);
        Ok(())
    }

    /// Reconnect with backoff until the retry budget is spent. On
    /// success the connection is re-established and the gap replayed.
    fn recover(&mut self) -> critlock_trace::Result<()> {
        self.conn = None;
        let budget = self.policy.max_attempts.max(1);
        let mut last: Option<io::Error> = None;
        for attempt in 0..budget {
            std::thread::sleep(self.policy.backoff(attempt));
            match self.try_connect() {
                Ok(()) => return Ok(()),
                Err(e) => last = Some(e),
            }
        }
        Err(TraceError::Io(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::BrokenPipe, "reconnect budget exhausted")
        })))
    }

    /// Send one frame on the live connection, if there is one.
    fn send(&mut self, frame: &Frame) -> critlock_trace::Result<()> {
        match self.conn.as_mut() {
            Some(conn) => StreamWriter::append(conn).write_frame(frame),
            None => Err(TraceError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "collector connection lost",
            ))),
        }
    }
}

impl FrameSink for ResumableSink {
    fn write_frame(&mut self, frame: &Frame) -> critlock_trace::Result<()> {
        self.frames.push(frame.clone());
        if self.conn.is_some() && self.send(frame).is_ok() {
            return Ok(());
        }
        // The frame is in the replay buffer; recovery resends it along
        // with everything else the collector has not acknowledged.
        self.recover()
    }

    fn flush(&mut self) -> critlock_trace::Result<()> {
        match self.conn.as_mut() {
            Some(conn) => match conn.flush() {
                Ok(()) => Ok(()),
                Err(_) => self.recover(),
            },
            None => self.recover(),
        }
    }

    /// Half-close and wait for the final ack to cover every frame,
    /// reconnecting and replaying if it does not. Ack progress refunds
    /// the attempt, mirroring `push_with`.
    fn close(&mut self) -> critlock_trace::Result<()> {
        let total = self.frames.len() as u64;
        let budget = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            if let Some(mut conn) = self.conn.take() {
                let outcome = conn
                    .flush()
                    .and_then(|()| conn.shutdown_write())
                    .and_then(|()| read_ack(&mut conn).map_err(to_io));
                match outcome {
                    Ok(ack) if ack >= total => return Ok(()),
                    Ok(ack) => {
                        if ack > self.acked {
                            self.acked = ack.min(total);
                            attempt = 0;
                        }
                    }
                    Err(_) => {}
                }
            }
            attempt += 1;
            if attempt >= budget {
                return Err(TraceError::Decode(format!(
                    "stream close: collector acked {}/{} frames",
                    self.acked, total
                )));
            }
            std::thread::sleep(self.policy.backoff(attempt - 1));
            // A failed reconnect leaves `conn` empty; the next loop
            // iteration then burns another attempt.
            let _ = self.try_connect();
        }
    }
}

fn to_io(e: TraceError) -> io::Error {
    match e {
        TraceError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

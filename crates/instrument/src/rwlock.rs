//! Instrumented reader-writer lock.
//!
//! Same interposition strategy as the mutex (try first, record contention
//! on failure, record the release after the real unlock), with the hold
//! mode recorded so the analysis can distinguish shared from exclusive
//! critical sections. OpenLDAP — the paper's real-world case study — is
//! exactly the kind of code that lives on rwlocks.

use crate::session::{record, SessionInner};
use critlock_trace::{EventKind, ObjId, ObjKind};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An instrumented reader-writer lock around a value of type `T`.
pub struct RwLock<T> {
    id: ObjId,
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    pub(crate) fn new(session: Arc<SessionInner>, name: String, value: T) -> Self {
        let id = session.register_object(ObjKind::RwLock, name);
        RwLock { id, inner: parking_lot::RwLock::new(value) }
    }

    /// The lock's trace object id.
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// Acquire in shared (read) mode.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        record(EventKind::RwAcquire { lock: self.id, write: false });
        let guard = match self.inner.try_read() {
            Some(g) => g,
            None => {
                record(EventKind::RwContended { lock: self.id, write: false });
                self.inner.read()
            }
        };
        record(EventKind::RwObtain { lock: self.id, write: false });
        RwLockReadGuard { id: self.id, guard: Some(guard) }
    }

    /// Acquire in exclusive (write) mode.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        record(EventKind::RwAcquire { lock: self.id, write: true });
        let guard = match self.inner.try_write() {
            Some(g) => g,
            None => {
                record(EventKind::RwContended { lock: self.id, write: true });
                self.inner.write()
            }
        };
        record(EventKind::RwObtain { lock: self.id, write: true });
        RwLockWriteGuard { id: self.id, guard: Some(guard) }
    }

    /// Non-blocking shared acquire. Failed attempts are not recorded.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let guard = self.inner.try_read()?;
        record(EventKind::RwAcquire { lock: self.id, write: false });
        record(EventKind::RwObtain { lock: self.id, write: false });
        Some(RwLockReadGuard { id: self.id, guard: Some(guard) })
    }

    /// Non-blocking exclusive acquire. Failed attempts are not recorded.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let guard = self.inner.try_write()?;
        record(EventKind::RwAcquire { lock: self.id, write: true });
        record(EventKind::RwObtain { lock: self.id, write: true });
        Some(RwLockWriteGuard { id: self.id, guard: Some(guard) })
    }

    /// Access the value without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// RAII shared guard; records the release after the real unlock.
pub struct RwLockReadGuard<'a, T> {
    id: ObjId,
    guard: Option<parking_lot::RwLockReadGuard<'a, T>>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.guard.take());
        record(EventKind::RwRelease { lock: self.id, write: false });
    }
}

/// RAII exclusive guard; records the release after the real unlock.
pub struct RwLockWriteGuard<'a, T> {
    id: ObjId,
    guard: Option<parking_lot::RwLockWriteGuard<'a, T>>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.guard.take());
        record(EventKind::RwRelease { lock: self.id, write: true });
    }
}

//! Tracing sessions and per-thread event collection.
//!
//! The paper's tool interposes on Pthreads via `LD_PRELOAD` and records
//! MAGIC() events into per-thread buffers that are flushed to disk when
//! the application completes (§IV.A). Rust has no sanctioned symbol
//! interposition, so the equivalent here is explicit: a [`Session`] owns
//! the clock and the object registry, the instrumented primitives
//! ([`crate::Mutex`], [`crate::Barrier`], [`crate::Condvar`]) record into
//! a lock-free per-thread buffer held in thread-local storage, and
//! buffers are handed back to the session when each thread finishes.
//!
//! The timestamp source is a process-wide monotonic nanosecond clock
//! anchored at session creation — the portable stand-in for the paper's
//! `mftb`/`rdtsc` user-space timestamp reads.

use critlock_trace::{
    ClockDomain, Event, EventKind, ObjId, ObjInfo, ObjKind, ThreadId, ThreadStream, Trace,
    TraceMeta,
};
use parking_lot::Mutex as PlMutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

pub(crate) struct SessionInner {
    pub(crate) app: String,
    pub(crate) start: Instant,
    next_tid: AtomicU32,
    objects: PlMutex<Vec<ObjInfo>>,
    /// Flushed per-thread buffers, keyed by dense thread id.
    flushed: PlMutex<Vec<FlushedBuffer>>,
    params: PlMutex<Vec<(String, String)>>,
}

/// A finished thread's buffer: (id, name, events).
type FlushedBuffer = (ThreadId, Option<String>, Vec<Event>);

impl SessionInner {
    pub(crate) fn now(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    pub(crate) fn register_object(&self, kind: ObjKind, name: String) -> ObjId {
        let mut objs = self.objects.lock();
        let id = ObjId(objs.len() as u32);
        objs.push(ObjInfo { kind, name });
        id
    }

    fn alloc_tid(&self) -> ThreadId {
        ThreadId(self.next_tid.fetch_add(1, Ordering::Relaxed))
    }

    fn flush(&self, tid: ThreadId, name: Option<String>, events: Vec<Event>) {
        self.flushed.lock().push((tid, name, events));
    }
}

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

struct ThreadCtx {
    session: Arc<SessionInner>,
    tid: ThreadId,
    name: Option<String>,
    buf: Vec<Event>,
}

/// Record an event on the current thread, if it is registered with a
/// session. Events on unregistered threads are dropped (the real locking
/// still happens); register threads with [`crate::spawn`] or
/// [`Session::register_current_thread`].
pub(crate) fn record(kind: EventKind) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            let ts = ctx.session.now();
            ctx.buf.push(Event::new(ts, kind));
        }
    });
}

fn install_ctx(session: Arc<SessionInner>, tid: ThreadId, name: Option<String>) {
    CTX.with(|c| {
        let mut slot = c.borrow_mut();
        assert!(slot.is_none(), "thread already registered with a session");
        *slot = Some(ThreadCtx { session, tid, name, buf: Vec::with_capacity(1024) });
    });
}

fn uninstall_ctx() {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().take() {
            ctx.session.flush(ctx.tid, ctx.name, ctx.buf);
        }
    });
}

/// A tracing session: creates instrumented synchronization objects,
/// registers threads, and assembles the final [`Trace`].
///
/// The creating thread is registered as thread 0 (the "main" thread of
/// the trace); call [`Session::finish`] on that same thread to close the
/// trace.
#[derive(Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
}

impl Session {
    /// Start a session for an application called `app`, registering the
    /// calling thread as the trace's main thread.
    pub fn new(app: impl Into<String>) -> Session {
        let inner = Arc::new(SessionInner {
            app: app.into(),
            start: Instant::now(),
            next_tid: AtomicU32::new(0),
            objects: PlMutex::new(Vec::new()),
            flushed: PlMutex::new(Vec::new()),
            params: PlMutex::new(Vec::new()),
        });
        let tid = inner.alloc_tid();
        debug_assert_eq!(tid, ThreadId::MAIN);
        install_ctx(Arc::clone(&inner), tid, Some("main".into()));
        record(EventKind::ThreadStart);
        Session { inner }
    }

    /// Attach a workload parameter to the trace metadata.
    pub fn param(&self, key: impl Into<String>, value: impl ToString) {
        self.inner.params.lock().push((key.into(), value.to_string()));
    }

    pub(crate) fn inner(&self) -> &Arc<SessionInner> {
        &self.inner
    }

    /// Register the calling thread (when it was not created through
    /// [`crate::spawn`]). Returns its trace id. The thread must call
    /// [`Session::unregister_current_thread`] before the session finishes.
    pub fn register_current_thread(&self, name: impl Into<String>) -> ThreadId {
        let tid = self.inner.alloc_tid();
        install_ctx(Arc::clone(&self.inner), tid, Some(name.into()));
        record(EventKind::ThreadStart);
        tid
    }

    /// Record the exit of a thread registered with
    /// [`Session::register_current_thread`] and flush its buffer.
    pub fn unregister_current_thread(&self) {
        record(EventKind::ThreadExit);
        uninstall_ctx();
    }

    /// Allocate a thread id for a child about to be spawned (used by
    /// [`crate::spawn`]).
    pub(crate) fn alloc_child(&self) -> ThreadId {
        self.inner.alloc_tid()
    }

    /// Install the context for a freshly spawned child thread.
    pub(crate) fn enter_child(&self, tid: ThreadId, name: String) {
        install_ctx(Arc::clone(&self.inner), tid, Some(name));
        record(EventKind::ThreadStart);
    }

    /// Flush a finished child thread.
    pub(crate) fn exit_child(&self) {
        record(EventKind::ThreadExit);
        uninstall_ctx();
    }

    /// Finish the session on the main thread: records the main thread's
    /// exit, gathers all flushed buffers and returns the trace.
    ///
    /// All threads spawned through [`crate::spawn`] must have been joined
    /// first; otherwise their events are missing and validation may fail.
    pub fn finish(self) -> critlock_trace::Result<Trace> {
        record(EventKind::ThreadExit);
        uninstall_ctx();

        let mut meta = TraceMeta::named(self.inner.app.clone());
        meta.clock = ClockDomain::RealNs;
        for (k, v) in self.inner.params.lock().iter() {
            meta.params.insert(k.clone(), v.clone());
        }
        meta.params.insert(
            "traced_threads".into(),
            self.inner.next_tid.load(Ordering::Relaxed).to_string(),
        );

        let mut trace = Trace::new(meta);
        trace.objects = self.inner.objects.lock().clone();

        let mut buffers = std::mem::take(&mut *self.inner.flushed.lock());
        buffers.sort_by_key(|(tid, _, _)| *tid);
        let n = self.inner.next_tid.load(Ordering::Relaxed);
        let mut iter = buffers.into_iter().peekable();
        for i in 0..n {
            let tid = ThreadId(i);
            let mut stream = ThreadStream::new(tid);
            if iter.peek().map(|(t, _, _)| *t) == Some(tid) {
                let (_, name, events) = iter.next().unwrap();
                stream.name = name;
                stream.events = events;
            }
            trace.push_thread(stream);
        }
        trace.validate()?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_session_produces_main_only_trace() {
        let s = Session::new("empty");
        let t = s.finish().unwrap();
        assert_eq!(t.num_threads(), 1);
        assert_eq!(t.meta.app, "empty");
        assert_eq!(t.meta.clock, ClockDomain::RealNs);
        let ev = &t.threads[0].events;
        assert_eq!(ev.first().unwrap().kind, EventKind::ThreadStart);
        assert_eq!(ev.last().unwrap().kind, EventKind::ThreadExit);
    }

    #[test]
    fn params_recorded() {
        let s = Session::new("p");
        s.param("threads", 4);
        s.param("input", "large");
        let t = s.finish().unwrap();
        assert_eq!(t.meta.params.get("input").unwrap(), "large");
        assert_eq!(t.meta.params.get("threads").unwrap(), "4");
        assert_eq!(t.meta.params.get("traced_threads").unwrap(), "1");
    }

    #[test]
    fn manual_thread_registration() {
        let s = Session::new("manual");
        let s2 = s.clone();
        let h = std::thread::spawn(move || {
            let tid = s2.register_current_thread("worker");
            assert_eq!(tid, ThreadId(1));
            s2.unregister_current_thread();
        });
        h.join().unwrap();
        let t = s.finish().unwrap();
        assert_eq!(t.num_threads(), 2);
        assert_eq!(t.threads[1].name.as_deref(), Some("worker"));
        assert_eq!(t.threads[1].events.len(), 2); // start + exit
    }

    #[test]
    fn clock_is_monotonic() {
        let s = Session::new("clock");
        let a = s.inner().now();
        let b = s.inner().now();
        assert!(b >= a);
        s.finish().unwrap();
    }
}

//! Tracing sessions and per-thread event collection.
//!
//! The paper's tool interposes on Pthreads via `LD_PRELOAD` and records
//! MAGIC() events into per-thread buffers that are flushed to disk when
//! the application completes (§IV.A). Rust has no sanctioned symbol
//! interposition, so the equivalent here is explicit: a [`Session`] owns
//! the clock and the object registry, the instrumented primitives
//! ([`crate::Mutex`], [`crate::Barrier`], [`crate::Condvar`]) record into
//! a lock-free per-thread buffer held in thread-local storage, and
//! buffers are handed back to the session when each thread finishes.
//!
//! The timestamp source is a process-wide monotonic nanosecond clock
//! anchored at session creation — the portable stand-in for the paper's
//! `mftb`/`rdtsc` user-space timestamp reads.

use crate::resume::{FrameSink, PlainSink, ResumableSink};
use critlock_trace::stream::{Frame, EVENTS_PER_FRAME};
use critlock_trace::{
    ClockDomain, Event, EventKind, ObjId, ObjInfo, ObjKind, RetryPolicy, ThreadId, ThreadStream,
    Trace, TraceMeta,
};
use parking_lot::Mutex as PlMutex;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::io::Write;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many unstreamed events a thread buffers before pushing an `Events`
/// frame to a live sink attached with [`Session::stream_to`].
pub const STREAM_FLUSH_EVENTS: usize = 128;

/// Live-streaming sink state: the frame sink plus what has already been
/// announced on the wire.
struct SinkState {
    sink: Box<dyn FrameSink>,
    objects_sent: usize,
    announced: BTreeSet<ThreadId>,
}

pub(crate) struct SessionInner {
    pub(crate) app: String,
    pub(crate) start: Instant,
    next_tid: AtomicU32,
    objects: PlMutex<Vec<ObjInfo>>,
    /// Flushed per-thread buffers, keyed by dense thread id.
    flushed: PlMutex<Vec<FlushedBuffer>>,
    params: PlMutex<Vec<(String, String)>>,
    /// Live streaming sink, if [`Session::stream_to`] was called.
    /// Cleared on write errors: losing the collector must never take the
    /// application down.
    sink: PlMutex<Option<SinkState>>,
}

/// A finished thread's buffer: (id, name, events).
type FlushedBuffer = (ThreadId, Option<String>, Vec<Event>);

impl SessionInner {
    pub(crate) fn now(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    pub(crate) fn register_object(&self, kind: ObjKind, name: String) -> ObjId {
        let mut objs = self.objects.lock();
        let id = ObjId(objs.len() as u32);
        objs.push(ObjInfo { kind, name });
        id
    }

    fn alloc_tid(&self) -> ThreadId {
        ThreadId(self.next_tid.fetch_add(1, Ordering::Relaxed))
    }

    fn flush(&self, tid: ThreadId, name: Option<String>, events: Vec<Event>) {
        self.flushed.lock().push((tid, name, events));
    }

    /// Write any objects registered since the last sync as a dense
    /// `Objects` frame.
    fn sync_objects(&self, state: &mut SinkState) -> critlock_trace::Result<()> {
        let objects = self.objects.lock();
        if objects.len() > state.objects_sent {
            let frame = Frame::Objects {
                first_id: state.objects_sent as u32,
                objects: objects[state.objects_sent..].to_vec(),
            };
            state.objects_sent = objects.len();
            drop(objects);
            state.sink.write_frame(&frame)?;
        }
        Ok(())
    }

    fn write_thread_events(
        &self,
        state: &mut SinkState,
        tid: ThreadId,
        name: Option<String>,
        events: &[Event],
    ) -> critlock_trace::Result<()> {
        self.sync_objects(state)?;
        if state.announced.insert(tid) {
            state.sink.write_frame(&Frame::Thread { tid, name })?;
        }
        for chunk in events.chunks(EVENTS_PER_FRAME) {
            state.sink.write_frame(&Frame::Events { tid, events: chunk.to_vec() })?;
        }
        state.sink.flush()
    }

    /// Push a thread's pending events to the live sink, if one is
    /// attached. Returns whether the events should be considered
    /// streamed. Write failures detach the sink.
    fn stream_events(&self, tid: ThreadId, name: Option<String>, events: &[Event]) -> bool {
        let mut guard = self.sink.lock();
        let Some(state) = guard.as_mut() else { return false };
        if self.write_thread_events(state, tid, name, events).is_err() {
            *guard = None;
        }
        true
    }

    /// Stream a workload parameter, if a sink is attached.
    fn stream_param(&self, key: &str, value: &str) {
        let mut guard = self.sink.lock();
        let Some(state) = guard.as_mut() else { return };
        let frame = Frame::Param { key: key.to_string(), value: value.to_string() };
        if state.sink.write_frame(&frame).and_then(|()| state.sink.flush()).is_err() {
            *guard = None;
        }
    }
}

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

struct ThreadCtx {
    session: Arc<SessionInner>,
    tid: ThreadId,
    name: Option<String>,
    buf: Vec<Event>,
    /// Prefix of `buf` already pushed to a live sink.
    streamed: usize,
}

/// Record an event on the current thread, if it is registered with a
/// session. Events on unregistered threads are dropped (the real locking
/// still happens); register threads with [`crate::spawn`] or
/// [`Session::register_current_thread`].
pub(crate) fn record(kind: EventKind) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            let ts = ctx.session.now();
            ctx.buf.push(Event::new(ts, kind));
            if ctx.buf.len() - ctx.streamed >= STREAM_FLUSH_EVENTS {
                stream_pending(ctx);
            }
        }
    });
}

/// Push the unstreamed suffix of a thread's buffer to the live sink.
fn stream_pending(ctx: &mut ThreadCtx) {
    let pending = &ctx.buf[ctx.streamed..];
    if pending.is_empty() {
        return;
    }
    if ctx.session.stream_events(ctx.tid, ctx.name.clone(), pending) {
        ctx.streamed = ctx.buf.len();
    }
}

fn install_ctx(session: Arc<SessionInner>, tid: ThreadId, name: Option<String>) {
    CTX.with(|c| {
        let mut slot = c.borrow_mut();
        assert!(slot.is_none(), "thread already registered with a session");
        *slot = Some(ThreadCtx { session, tid, name, buf: Vec::with_capacity(1024), streamed: 0 });
    });
}

fn uninstall_ctx() {
    CTX.with(|c| {
        if let Some(mut ctx) = c.borrow_mut().take() {
            stream_pending(&mut ctx);
            ctx.session.flush(ctx.tid, ctx.name, ctx.buf);
        }
    });
}

/// A tracing session: creates instrumented synchronization objects,
/// registers threads, and assembles the final [`Trace`].
///
/// The creating thread is registered as thread 0 (the "main" thread of
/// the trace); call [`Session::finish`] on that same thread to close the
/// trace.
#[derive(Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
}

impl Session {
    /// Start a session for an application called `app`, registering the
    /// calling thread as the trace's main thread.
    pub fn new(app: impl Into<String>) -> Session {
        let inner = Arc::new(SessionInner {
            app: app.into(),
            start: Instant::now(),
            next_tid: AtomicU32::new(0),
            objects: PlMutex::new(Vec::new()),
            flushed: PlMutex::new(Vec::new()),
            params: PlMutex::new(Vec::new()),
            sink: PlMutex::new(None),
        });
        let tid = inner.alloc_tid();
        debug_assert_eq!(tid, ThreadId::MAIN);
        install_ctx(Arc::clone(&inner), tid, Some("main".into()));
        record(EventKind::ThreadStart);
        Session { inner }
    }

    /// Attach a workload parameter to the trace metadata.
    pub fn param(&self, key: impl Into<String>, value: impl ToString) {
        let (key, value) = (key.into(), value.to_string());
        self.inner.stream_param(&key, &value);
        self.inner.params.lock().push((key, value));
    }

    /// Stream this session live to a collector at `addr` (`unix:/path` or
    /// `host:port`, as accepted by `critlock serve`).
    ///
    /// Events recorded so far are sent immediately; from here on each
    /// thread pushes an `Events` frame whenever [`STREAM_FLUSH_EVENTS`]
    /// events accumulate and when it exits, and [`Session::finish`] sends
    /// the final `End` frame. Streaming is best-effort: if the collector
    /// goes away, the sink is dropped and the session keeps recording
    /// locally.
    pub fn stream_to(&self, addr: &str) -> std::io::Result<()> {
        let sink: Box<dyn Write + Send> = if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                Box::new(std::os::unix::net::UnixStream::connect(path)?)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "unix-domain sockets are not supported on this platform",
                ));
            }
        } else {
            Box::new(std::net::TcpStream::connect(addr)?)
        };
        self.stream_to_writer(sink)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Stream this session live into an arbitrary byte sink (the
    /// transport-agnostic core of [`Session::stream_to`]).
    pub fn stream_to_writer(
        &self,
        sink: impl Write + Send + 'static,
    ) -> critlock_trace::Result<()> {
        self.attach_sink(Box::new(PlainSink::new(Box::new(sink))?))
    }

    /// Stream this session live to a collector at `addr` with
    /// reconnect-and-resume: the sink keeps a replay buffer of every
    /// frame it has sent, and on any transport error — including the
    /// collector being restarted — it reconnects with capped exponential
    /// backoff per `policy`, presents its resume token, and replays the
    /// frames the collector has not acknowledged. [`Session::finish`]
    /// then waits (within the same budget) for the collector's final
    /// acknowledgement to cover the whole stream.
    ///
    /// Costs a second in-memory copy of the frame stream for the
    /// session's lifetime; use [`Session::stream_to`] when resume is not
    /// worth that.
    pub fn stream_to_resumable(&self, addr: &str, policy: RetryPolicy) -> std::io::Result<()> {
        static SESSION_COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = SESSION_COUNTER.fetch_add(1, Ordering::Relaxed);
        let token = format!("session:{}:{}:{}", self.inner.app, std::process::id(), n).into_bytes();
        let sink = ResumableSink::connect(addr, token, policy)?;
        self.attach_sink(Box::new(sink))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Announce the session (Start, params, objects, finished threads)
    /// through `sink` and install it as the live sink.
    fn attach_sink(&self, sink: Box<dyn FrameSink>) -> critlock_trace::Result<()> {
        let mut state = SinkState { sink, objects_sent: 0, announced: BTreeSet::new() };
        let mut meta = TraceMeta::named(self.inner.app.clone());
        meta.clock = ClockDomain::RealNs;
        state.sink.write_frame(&Frame::Start { meta })?;
        for (key, value) in self.inner.params.lock().iter() {
            state.sink.write_frame(&Frame::Param { key: key.clone(), value: value.clone() })?;
        }
        self.inner.sync_objects(&mut state)?;

        // Install under the sink lock, replaying already-finished threads
        // first so nothing can fall between replay and installation.
        let mut guard = self.inner.sink.lock();
        if guard.is_some() {
            return Err(critlock_trace::TraceError::Decode(
                "session is already streaming to a sink".into(),
            ));
        }
        for (tid, name, events) in self.inner.flushed.lock().iter() {
            self.inner.write_thread_events(&mut state, *tid, name.clone(), events)?;
        }
        state.sink.flush()?;
        *guard = Some(state);
        Ok(())
    }

    pub(crate) fn inner(&self) -> &Arc<SessionInner> {
        &self.inner
    }

    /// Register the calling thread (when it was not created through
    /// [`crate::spawn`]). Returns its trace id. The thread must call
    /// [`Session::unregister_current_thread`] before the session finishes.
    pub fn register_current_thread(&self, name: impl Into<String>) -> ThreadId {
        let tid = self.inner.alloc_tid();
        install_ctx(Arc::clone(&self.inner), tid, Some(name.into()));
        record(EventKind::ThreadStart);
        tid
    }

    /// Record the exit of a thread registered with
    /// [`Session::register_current_thread`] and flush its buffer.
    pub fn unregister_current_thread(&self) {
        record(EventKind::ThreadExit);
        uninstall_ctx();
    }

    /// Allocate a thread id for a child about to be spawned (used by
    /// [`crate::spawn`]).
    pub(crate) fn alloc_child(&self) -> ThreadId {
        self.inner.alloc_tid()
    }

    /// Install the context for a freshly spawned child thread.
    pub(crate) fn enter_child(&self, tid: ThreadId, name: String) {
        install_ctx(Arc::clone(&self.inner), tid, Some(name));
        record(EventKind::ThreadStart);
    }

    /// Flush a finished child thread.
    pub(crate) fn exit_child(&self) {
        record(EventKind::ThreadExit);
        uninstall_ctx();
    }

    /// Finish the session on the main thread: records the main thread's
    /// exit, gathers all flushed buffers and returns the trace.
    ///
    /// All threads spawned through [`crate::spawn`] must have been joined
    /// first; otherwise their events are missing and validation may fail.
    pub fn finish(self) -> critlock_trace::Result<Trace> {
        record(EventKind::ThreadExit);
        uninstall_ctx();

        // Close the live stream, if any: final params, an `End` frame and
        // the sink's close (which for a resumable sink waits for the
        // collector's final ack, reconnecting if needed). Best-effort — a
        // dead collector must not fail finish().
        if let Some(mut state) = self.inner.sink.lock().take() {
            let traced = self.inner.next_tid.load(Ordering::Relaxed).to_string();
            let _ = self
                .inner
                .sync_objects(&mut state)
                .and_then(|()| {
                    state
                        .sink
                        .write_frame(&Frame::Param { key: "traced_threads".into(), value: traced })
                })
                .and_then(|()| state.sink.write_frame(&Frame::End))
                .and_then(|()| state.sink.close());
        }

        let mut meta = TraceMeta::named(self.inner.app.clone());
        meta.clock = ClockDomain::RealNs;
        for (k, v) in self.inner.params.lock().iter() {
            meta.params.insert(k.clone(), v.clone());
        }
        meta.params.insert(
            "traced_threads".into(),
            self.inner.next_tid.load(Ordering::Relaxed).to_string(),
        );

        let mut trace = Trace::new(meta);
        trace.objects = self.inner.objects.lock().clone();

        let mut buffers = std::mem::take(&mut *self.inner.flushed.lock());
        buffers.sort_by_key(|(tid, _, _)| *tid);
        let n = self.inner.next_tid.load(Ordering::Relaxed);
        let mut iter = buffers.into_iter().peekable();
        for i in 0..n {
            let tid = ThreadId(i);
            let mut stream = ThreadStream::new(tid);
            if iter.peek().map(|(t, _, _)| *t) == Some(tid) {
                let (_, name, events) = iter.next().unwrap();
                stream.name = name;
                stream.events = events;
            }
            trace.push_thread(stream);
        }
        trace.validate()?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_session_produces_main_only_trace() {
        let s = Session::new("empty");
        let t = s.finish().unwrap();
        assert_eq!(t.num_threads(), 1);
        assert_eq!(t.meta.app, "empty");
        assert_eq!(t.meta.clock, ClockDomain::RealNs);
        let ev = &t.threads[0].events;
        assert_eq!(ev.first().unwrap().kind, EventKind::ThreadStart);
        assert_eq!(ev.last().unwrap().kind, EventKind::ThreadExit);
    }

    #[test]
    fn params_recorded() {
        let s = Session::new("p");
        s.param("threads", 4);
        s.param("input", "large");
        let t = s.finish().unwrap();
        assert_eq!(t.meta.params.get("input").unwrap(), "large");
        assert_eq!(t.meta.params.get("threads").unwrap(), "4");
        assert_eq!(t.meta.params.get("traced_threads").unwrap(), "1");
    }

    #[test]
    fn manual_thread_registration() {
        let s = Session::new("manual");
        let s2 = s.clone();
        let h = std::thread::spawn(move || {
            let tid = s2.register_current_thread("worker");
            assert_eq!(tid, ThreadId(1));
            s2.unregister_current_thread();
        });
        h.join().unwrap();
        let t = s.finish().unwrap();
        assert_eq!(t.num_threads(), 2);
        assert_eq!(t.threads[1].name.as_deref(), Some("worker"));
        assert_eq!(t.threads[1].events.len(), 2); // start + exit
    }

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streamed_session_equals_finished_trace() {
        let s = Session::new("streamed");
        s.param("phase", "warmup");
        let buf = SharedBuf::default();
        s.stream_to_writer(buf.clone()).unwrap();
        s.param("phase2", "steady");

        let m = std::sync::Arc::new(s.mutex("guard", 0u32));
        let s2 = s.clone();
        let h = std::thread::spawn(move || {
            let tid = s2.register_current_thread("worker");
            assert_eq!(tid, ThreadId(1));
            *m.lock() += 1;
            s2.unregister_current_thread();
        });
        h.join().unwrap();

        let trace = s.finish().unwrap();
        let bytes = buf.0.lock().unwrap().clone();
        let streamed =
            critlock_trace::stream::read_trace(&mut std::io::Cursor::new(bytes)).unwrap();
        assert_eq!(streamed, trace);
        streamed.validate().unwrap();
    }

    #[test]
    fn double_stream_to_is_rejected() {
        let s = Session::new("twice");
        s.stream_to_writer(SharedBuf::default()).unwrap();
        assert!(s.stream_to_writer(SharedBuf::default()).is_err());
        s.finish().unwrap();
    }

    #[test]
    fn clock_is_monotonic() {
        let s = Session::new("clock");
        let a = s.inner().now();
        let b = s.inner().now();
        assert!(b >= a);
        s.finish().unwrap();
    }
}

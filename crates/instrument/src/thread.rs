//! Instrumented thread spawn/join.
//!
//! Records the thread lifecycle edges the critical-path walk needs:
//! `ThreadCreate` in the parent, `ThreadStart`/`ThreadExit` in the child
//! (including on panic, via an RAII guard), and `JoinBegin`/`JoinEnd` in
//! the joiner.

use crate::session::{record, Session};
use critlock_trace::{EventKind, ThreadId};

/// Handle to an instrumented thread; join through it to record the join
/// edge.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    tid: ThreadId,
}

impl<T> JoinHandle<T> {
    /// The child's trace thread id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// Join the thread, recording `JoinBegin`/`JoinEnd` on the calling
    /// thread.
    pub fn join(self) -> std::thread::Result<T> {
        record(EventKind::JoinBegin { child: self.tid });
        let result = self.inner.join();
        record(EventKind::JoinEnd { child: self.tid });
        result
    }
}

/// Spawn an instrumented thread within a session.
///
/// The closure runs with the thread registered: all instrumented
/// primitives used inside record into its buffer. The buffer is flushed
/// when the closure returns (or panics).
pub fn spawn<T, F>(session: &Session, name: impl Into<String>, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let name = name.into();
    let tid = session.alloc_child();
    record(EventKind::ThreadCreate { child: tid });
    let session2 = session.clone();
    let thread_name = name.clone();
    let inner = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            session2.enter_child(tid, thread_name);
            // Flush even if `f` panics, so the trace stays well-formed.
            struct ExitGuard(Session);
            impl Drop for ExitGuard {
                fn drop(&mut self) {
                    self.0.exit_child();
                }
            }
            let guard = ExitGuard(session2.clone());
            let out = f();
            drop(guard);
            out
        })
        .expect("failed to spawn instrumented thread");
    JoinHandle { inner, tid }
}

/// Spawn `n` instrumented worker threads running `f(worker_index)` and
/// join them all — the fork-join shape every benchmark in the paper uses.
pub fn run_workers<F>(session: &Session, n: usize, f: F)
where
    F: Fn(usize) + Send + Sync + 'static,
{
    let f = std::sync::Arc::new(f);
    let handles: Vec<JoinHandle<()>> = (0..n)
        .map(|i| {
            let f = std::sync::Arc::clone(&f);
            spawn(session, format!("worker-{i}"), move || f(i))
        })
        .collect();
    for h in handles {
        h.join().expect("instrumented worker panicked");
    }
}

//! Self-observability primitives for the critlock stack.
//!
//! Two building blocks, both deliberately dependency-light and inert:
//!
//! * [`metrics`] — a registry of named monotonic counters, gauges and
//!   fixed-bucket histograms. Updates are single relaxed atomic operations
//!   (lock-free on the hot path); snapshots and Prometheus-style rendering
//!   are deterministic (lexicographic name order).
//! * [`span`] — hierarchical wall-clock span timing for pipeline stages,
//!   producing a serializable [`SpanProfile`] tree.
//!
//! The determinism contract: observability must never change what the
//! analyzer computes. Metrics and spans only *read* clocks and counters;
//! analysis output stays bit-identical with or without them.

#![warn(missing_docs)]

pub mod metrics;
pub mod span;

pub use metrics::{
    series_name, Counter, CounterSample, Gauge, GaugeSample, Histogram, HistogramSample,
    MetricsRegistry, MetricsSnapshot, DEFAULT_LATENCY_BOUNDS_NS,
};
pub use span::{min_time_ns, time_ns, SpanProfile, SpanRecorder};

//! Lock-free metrics registry: monotonic counters, gauges and fixed-bucket
//! histograms.
//!
//! Handles returned by the registry are cheap `Arc`-wrapped atomics, so the
//! hot path (an `inc`, `add`, `set` or `observe`) is a single relaxed atomic
//! RMW and never touches a lock. The registry itself is only locked on the
//! cold paths: metric registration and snapshot/render.
//!
//! Snapshots are deterministic: metrics are emitted in lexicographic name
//! order regardless of registration order or thread interleaving, so two
//! scrapes of identical counter states render byte-identical text.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell; all clones observe the same value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached counter (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, active sessions).
///
/// Cloning shares the underlying cell; all clones observe the same value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a detached gauge (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `v` as the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water tracking).
    #[inline]
    pub fn fetch_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Increments the gauge by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements the gauge by one, saturating at zero.
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default bucket upper bounds for latency histograms, in nanoseconds:
/// 1µs · 4µs · 16µs · 64µs · 256µs · 1ms · 4ms · 16ms · 64ms · 256ms · 1s · 4s,
/// with the implicit `+Inf` bucket above.
pub const DEFAULT_LATENCY_BOUNDS_NS: &[u64] = &[
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
];

#[derive(Debug)]
struct HistogramInner {
    /// Ascending upper bounds; an implicit `+Inf` bucket follows the last.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` non-cumulative bucket counts.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram. Bucket bounds are chosen at registration time
/// and never change, so `observe` is a branch-free bound scan plus two
/// relaxed atomic adds — no locking, no allocation.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Creates a detached histogram with the given ascending bucket bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.inner.bounds.partition_point(|&b| b < v);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    fn sample(&self, name: &str) -> HistogramSample {
        HistogramSample {
            name: name.to_string(),
            bounds: self.inner.bounds.clone(),
            buckets: self.inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    /// Base metric name, without the label set.
    base: String,
    /// Sorted `(key, value)` label pairs; empty for unlabelled series.
    labels: Vec<(String, String)>,
    help: String,
    metric: Metric,
}

/// A counter's name and value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// A gauge's name and value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: u64,
}

/// A histogram's buckets in a [`MetricsSnapshot`].
///
/// `buckets` are non-cumulative and have one more entry than `bounds`
/// (the final entry is the `+Inf` bucket).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Ascending bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// A point-in-time, deterministically ordered copy of every registered
/// metric. Each section is sorted by metric name.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, name-sorted.
    pub counters: Vec<CounterSample>,
    /// All gauges, name-sorted.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, name-sorted.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram sample by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Registry of named metrics.
///
/// Cloning shares the registry. Registration is idempotent: asking for an
/// existing name of the same kind returns a handle to the same metric;
/// re-registering a name as a different kind panics (a programming error).
///
/// Metrics may carry a **label set** (`counter_with` and friends): the
/// same base name registered with different labels yields independent
/// series — `critlock_shard_queue_depth{shard="0"}` and `{shard="1"}` —
/// that render under one `# TYPE` header. Labels are canonicalized
/// (key-sorted, values escaped), so registration order never affects the
/// rendered text, and every series of one base name must share a kind.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Entry>>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Canonicalize a label slice: validated keys, sorted by key, duplicates
/// rejected. Returns owned pairs with *unescaped* values (escaping is a
/// rendering concern).
fn canonical_labels(base: &str, labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| {
            assert!(
                valid_name(k),
                "invalid label name {k:?} on metric {base:?}: use [a-z_][a-z0-9_]*"
            );
            (k.to_string(), v.to_string())
        })
        .collect();
    out.sort();
    assert!(out.windows(2).all(|w| w[0].0 != w[1].0), "duplicate label key on metric {base:?}");
    out
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    format!("{{{}}}", body.join(","))
}

/// The canonical full name of a labelled series — the key it appears
/// under in [`MetricsSnapshot`] lookups: `base{k1="v1",k2="v2"}` with
/// keys sorted and values escaped. With no labels, just `base`.
pub fn series_name(base: &str, labels: &[(&str, &str)]) -> String {
    format!("{base}{}", render_labels(&canonical_labels(base, labels)))
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        assert!(valid_name(name), "invalid metric name {name:?}: use [a-z_][a-z0-9_]*");
        let labels = canonical_labels(name, labels);
        let full = format!("{name}{}", render_labels(&labels));
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        let entry = map.entry(full).or_insert_with(|| Entry {
            base: name.to_string(),
            labels,
            help: help.to_string(),
            metric: make(),
        });
        entry.metric.clone()
    }

    /// Panic unless every already-registered series of `base` has `kind`
    /// — all label variants of one metric name must share a kind.
    fn assert_base_kind(&self, base: &str, kind: &'static str) {
        let map = self.inner.lock().expect("metrics registry poisoned");
        for entry in map.values() {
            assert!(
                entry.base != base || entry.metric.kind() == kind,
                "metric {base:?} already registered as a {}",
                entry.metric.kind()
            );
        }
    }

    /// Registers (or retrieves) a monotonic counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Registers (or retrieves) a labelled monotonic counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        self.assert_base_kind(name, "counter");
        match self.register(name, labels, help, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            m => panic!("metric {name:?} already registered as a {}", m.kind()),
        }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or retrieves) a labelled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        self.assert_base_kind(name, "gauge");
        match self.register(name, labels, help, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            m => panic!("metric {name:?} already registered as a {}", m.kind()),
        }
    }

    /// Registers (or retrieves) a fixed-bucket histogram.
    ///
    /// `bounds` are only consulted on first registration.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, &[], help, bounds)
    }

    /// Registers (or retrieves) a labelled fixed-bucket histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        bounds: &[u64],
    ) -> Histogram {
        self.assert_base_kind(name, "histogram");
        match self.register(name, labels, help, || Metric::Histogram(Histogram::new(bounds))) {
            Metric::Histogram(h) => h,
            m => panic!("metric {name:?} already registered as a {}", m.kind()),
        }
    }

    /// Captures a deterministic (name-sorted) snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, entry) in map.iter() {
            match &entry.metric {
                Metric::Counter(c) => {
                    snap.counters.push(CounterSample { name: name.clone(), value: c.get() })
                }
                Metric::Gauge(g) => {
                    snap.gauges.push(GaugeSample { name: name.clone(), value: g.get() })
                }
                Metric::Histogram(h) => snap.histograms.push(h.sample(name)),
            }
        }
        snap
    }

    /// Renders every metric in Prometheus plaintext exposition format.
    /// Series are grouped by base name (every label variant under one
    /// `# TYPE` header), bases in lexicographic order and label sets in
    /// lexicographic order within a base, so two scrapes of identical
    /// counter states render byte-identical text regardless of
    /// registration order. Histogram buckets are emitted cumulatively
    /// with an explicit `+Inf` bucket, per convention; a labelled
    /// histogram folds `le` into its label set
    /// (`base_bucket{shard="0",le="100"}`).
    pub fn render_prometheus(&self) -> String {
        let map = self.inner.lock().expect("metrics registry poisoned");
        // Group by base so label variants stay adjacent even when another
        // base name sorts between their full series names.
        let mut groups: BTreeMap<&str, Vec<&Entry>> = BTreeMap::new();
        for entry in map.values() {
            groups.entry(&entry.base).or_default().push(entry);
        }
        let mut out = String::new();
        for (base, entries) in groups {
            let entries = {
                let mut v = entries;
                v.sort_by_key(|e| &e.labels);
                v
            };
            let first = entries[0];
            if !first.help.is_empty() {
                out.push_str(&format!("# HELP {base} {}\n", first.help));
            }
            out.push_str(&format!("# TYPE {base} {}\n", first.metric.kind()));
            for entry in entries {
                let labels = render_labels(&entry.labels);
                match &entry.metric {
                    Metric::Counter(c) => out.push_str(&format!("{base}{labels} {}\n", c.get())),
                    Metric::Gauge(g) => out.push_str(&format!("{base}{labels} {}\n", g.get())),
                    Metric::Histogram(h) => {
                        let s = h.sample(base);
                        // `le` joins the series' own labels inside one brace
                        // pair, keeping the text Prometheus-parseable.
                        let bucket_labels = |le: &str| {
                            let mut pairs = entry.labels.clone();
                            pairs.push(("le".to_string(), le.to_string()));
                            render_labels(&pairs)
                        };
                        let mut cum = 0u64;
                        for (i, &b) in s.buckets.iter().enumerate() {
                            cum += b;
                            let le = match s.bounds.get(i) {
                                Some(le) => le.to_string(),
                                None => "+Inf".to_string(),
                            };
                            out.push_str(&format!("{base}_bucket{} {cum}\n", bucket_labels(&le)));
                        }
                        out.push_str(&format!("{base}_sum{labels} {}\n", s.sum));
                        out.push_str(&format!("{base}_count{labels} {}\n", s.count));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("frames_in_total", "frames decoded");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Idempotent registration returns the same underlying cell.
        let c2 = reg.counter("frames_in_total", "frames decoded");
        c2.inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("queue_depth", "queued frames");
        g.set(9);
        g.fetch_max(3);
        assert_eq!(g.get(), 9);
        g.fetch_max(12);
        assert_eq!(g.get(), 12);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 11);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x_total", "");
        reg.gauge("x_total", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        MetricsRegistry::new().counter("Frames-In", "");
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 10 + 11 + 100 + 5000 + 1_000_000);
        let s = h.sample("h");
        // le=10 gets {1,10}; le=100 gets {11,100}; le=1000 none; +Inf {5000,1e6}.
        assert_eq!(s.buckets, vec![2, 2, 0, 2]);
    }

    #[test]
    fn snapshot_is_name_sorted_regardless_of_registration_order() {
        let reg = MetricsRegistry::new();
        reg.counter("zebra_total", "");
        reg.counter("alpha_total", "");
        reg.gauge("mid_gauge", "");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha_total", "zebra_total"]);
        assert_eq!(snap.gauge("mid_gauge"), Some(0));
    }

    #[test]
    fn identical_state_renders_identical_text() {
        let mk = |order: &[&str]| {
            let reg = MetricsRegistry::new();
            for name in order {
                reg.counter(name, "help text").add(7);
            }
            reg.histogram("lat_ns", "latency", &[10, 20]).observe(15);
            reg.render_prometheus()
        };
        assert_eq!(mk(&["a_total", "b_total"]), mk(&["b_total", "a_total"]));
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("frames_in_total", "frames decoded from the wire").add(3);
        let h = reg.histogram("refresh_ns", "snapshot refresh latency", &[100, 200]);
        h.observe(50);
        h.observe(150);
        h.observe(5000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE frames_in_total counter\nframes_in_total 3\n"));
        assert!(text.contains("refresh_ns_bucket{le=\"100\"} 1\n"));
        assert!(text.contains("refresh_ns_bucket{le=\"200\"} 2\n"));
        assert!(text.contains("refresh_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("refresh_ns_sum 5200\n"));
        assert!(text.contains("refresh_ns_count 3\n"));
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits_total", "");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.snapshot().counter("hits_total"), Some(40_000));
    }

    #[test]
    fn labelled_series_are_independent_and_canonical() {
        let reg = MetricsRegistry::new();
        let s0 = reg.counter_with("shard_sessions_total", &[("shard", "0")], "per-shard sessions");
        let s1 = reg.counter_with("shard_sessions_total", &[("shard", "1")], "per-shard sessions");
        s0.add(3);
        s1.add(5);
        // Distinct label values are distinct cells; same labels share one.
        let again = reg.counter_with("shard_sessions_total", &[("shard", "0")], "");
        again.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter(&series_name("shard_sessions_total", &[("shard", "0")])), Some(4));
        assert_eq!(snap.counter("shard_sessions_total{shard=\"1\"}"), Some(5));
    }

    #[test]
    fn label_order_is_canonicalized() {
        // Keys are sorted at registration, so both spellings name the
        // same series and the rendered order is deterministic.
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("x_total", &[("b", "2"), ("a", "1")], "");
        let b = reg.counter_with("x_total", &[("a", "1"), ("b", "2")], "");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("x_total{a=\"1\",b=\"2\"}"), Some(2));
        assert!(reg.render_prometheus().contains("x_total{a=\"1\",b=\"2\"} 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter_with("esc_total", &[("path", "a\"b\\c\nd")], "").inc();
        let text = reg.render_prometheus();
        assert!(text.contains("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"), "got: {text}");
    }

    #[test]
    fn labelled_series_group_under_one_type_header() {
        let reg = MetricsRegistry::new();
        // `z{...}` sorts after `z_extra` by full name; grouping by base
        // must still render both z series adjacent under one header.
        reg.counter_with("z", &[("shard", "1")], "help").inc();
        reg.counter("z_extra", "other");
        reg.counter_with("z", &[("shard", "0")], "help").add(2);
        let text = reg.render_prometheus();
        let z_type = text.find("# TYPE z counter").unwrap();
        let s0 = text.find("z{shard=\"0\"} 2").unwrap();
        let s1 = text.find("z{shard=\"1\"} 1").unwrap();
        let extra = text.find("# TYPE z_extra counter").unwrap();
        assert!(z_type < s0 && s0 < s1 && s1 < extra, "bad ordering:\n{text}");
        assert_eq!(text.matches("# TYPE z counter").count(), 1);
    }

    #[test]
    fn labelled_histogram_folds_le_into_labels() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("lat_ns", &[("shard", "3")], "latency", &[10, 100]);
        h.observe(5);
        h.observe(50);
        let text = reg.render_prometheus();
        assert!(text.contains("lat_ns_bucket{shard=\"3\",le=\"10\"} 1\n"), "got: {text}");
        assert!(text.contains("lat_ns_bucket{shard=\"3\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_ns_sum{shard=\"3\"} 55\n"));
        assert!(text.contains("lat_ns_count{shard=\"3\"} 2\n"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn label_variants_must_share_a_kind() {
        let reg = MetricsRegistry::new();
        reg.counter_with("mixed", &[("shard", "0")], "");
        reg.gauge_with("mixed", &[("shard", "1")], "");
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn bad_label_key_panics() {
        MetricsRegistry::new().counter_with("ok_total", &[("Bad-Key", "v")], "");
    }

    #[test]
    #[should_panic(expected = "duplicate label key")]
    fn duplicate_label_key_panics() {
        MetricsRegistry::new().counter_with("ok_total", &[("k", "1"), ("k", "2")], "");
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "").add(2);
        reg.histogram("h_ns", "", &[5]).observe(3);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}

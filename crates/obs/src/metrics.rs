//! Lock-free metrics registry: monotonic counters, gauges and fixed-bucket
//! histograms.
//!
//! Handles returned by the registry are cheap `Arc`-wrapped atomics, so the
//! hot path (an `inc`, `add`, `set` or `observe`) is a single relaxed atomic
//! RMW and never touches a lock. The registry itself is only locked on the
//! cold paths: metric registration and snapshot/render.
//!
//! Snapshots are deterministic: metrics are emitted in lexicographic name
//! order regardless of registration order or thread interleaving, so two
//! scrapes of identical counter states render byte-identical text.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell; all clones observe the same value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached counter (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, active sessions).
///
/// Cloning shares the underlying cell; all clones observe the same value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a detached gauge (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `v` as the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water tracking).
    #[inline]
    pub fn fetch_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Increments the gauge by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements the gauge by one, saturating at zero.
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default bucket upper bounds for latency histograms, in nanoseconds:
/// 1µs · 4µs · 16µs · 64µs · 256µs · 1ms · 4ms · 16ms · 64ms · 256ms · 1s · 4s,
/// with the implicit `+Inf` bucket above.
pub const DEFAULT_LATENCY_BOUNDS_NS: &[u64] = &[
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
];

#[derive(Debug)]
struct HistogramInner {
    /// Ascending upper bounds; an implicit `+Inf` bucket follows the last.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` non-cumulative bucket counts.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram. Bucket bounds are chosen at registration time
/// and never change, so `observe` is a branch-free bound scan plus two
/// relaxed atomic adds — no locking, no allocation.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Creates a detached histogram with the given ascending bucket bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.inner.bounds.partition_point(|&b| b < v);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    fn sample(&self, name: &str) -> HistogramSample {
        HistogramSample {
            name: name.to_string(),
            bounds: self.inner.bounds.clone(),
            buckets: self.inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    help: String,
    metric: Metric,
}

/// A counter's name and value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// A gauge's name and value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: u64,
}

/// A histogram's buckets in a [`MetricsSnapshot`].
///
/// `buckets` are non-cumulative and have one more entry than `bounds`
/// (the final entry is the `+Inf` bucket).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Ascending bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// A point-in-time, deterministically ordered copy of every registered
/// metric. Each section is sorted by metric name.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, name-sorted.
    pub counters: Vec<CounterSample>,
    /// All gauges, name-sorted.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, name-sorted.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram sample by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Registry of named metrics.
///
/// Cloning shares the registry. Registration is idempotent: asking for an
/// existing name of the same kind returns a handle to the same metric;
/// re-registering a name as a different kind panics (a programming error).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Entry>>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, make: impl FnOnce() -> Metric) -> Metric {
        assert!(valid_name(name), "invalid metric name {name:?}: use [a-z_][a-z0-9_]*");
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| Entry { help: help.to_string(), metric: make() });
        entry.metric.clone()
    }

    /// Registers (or retrieves) a monotonic counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.register(name, help, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            m => panic!("metric {name:?} already registered as a {}", m.kind()),
        }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            m => panic!("metric {name:?} already registered as a {}", m.kind()),
        }
    }

    /// Registers (or retrieves) a fixed-bucket histogram.
    ///
    /// `bounds` are only consulted on first registration.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        match self.register(name, help, || Metric::Histogram(Histogram::new(bounds))) {
            Metric::Histogram(h) => h,
            m => panic!("metric {name:?} already registered as a {}", m.kind()),
        }
    }

    /// Captures a deterministic (name-sorted) snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, entry) in map.iter() {
            match &entry.metric {
                Metric::Counter(c) => {
                    snap.counters.push(CounterSample { name: name.clone(), value: c.get() })
                }
                Metric::Gauge(g) => {
                    snap.gauges.push(GaugeSample { name: name.clone(), value: g.get() })
                }
                Metric::Histogram(h) => snap.histograms.push(h.sample(name)),
            }
        }
        snap
    }

    /// Renders every metric in Prometheus plaintext exposition format,
    /// in lexicographic name order. Histogram buckets are emitted
    /// cumulatively with an explicit `+Inf` bucket, per convention.
    pub fn render_prometheus(&self) -> String {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, entry) in map.iter() {
            if !entry.help.is_empty() {
                out.push_str(&format!("# HELP {name} {}\n", entry.help));
            }
            out.push_str(&format!("# TYPE {name} {}\n", entry.metric.kind()));
            match &entry.metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(h) => {
                    let s = h.sample(name);
                    let mut cum = 0u64;
                    for (i, &b) in s.buckets.iter().enumerate() {
                        cum += b;
                        match s.bounds.get(i) {
                            Some(le) => {
                                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"))
                            }
                            None => out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n")),
                        }
                    }
                    out.push_str(&format!("{name}_sum {}\n", s.sum));
                    out.push_str(&format!("{name}_count {}\n", s.count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("frames_in_total", "frames decoded");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Idempotent registration returns the same underlying cell.
        let c2 = reg.counter("frames_in_total", "frames decoded");
        c2.inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("queue_depth", "queued frames");
        g.set(9);
        g.fetch_max(3);
        assert_eq!(g.get(), 9);
        g.fetch_max(12);
        assert_eq!(g.get(), 12);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 11);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x_total", "");
        reg.gauge("x_total", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        MetricsRegistry::new().counter("Frames-In", "");
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 10 + 11 + 100 + 5000 + 1_000_000);
        let s = h.sample("h");
        // le=10 gets {1,10}; le=100 gets {11,100}; le=1000 none; +Inf {5000,1e6}.
        assert_eq!(s.buckets, vec![2, 2, 0, 2]);
    }

    #[test]
    fn snapshot_is_name_sorted_regardless_of_registration_order() {
        let reg = MetricsRegistry::new();
        reg.counter("zebra_total", "");
        reg.counter("alpha_total", "");
        reg.gauge("mid_gauge", "");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha_total", "zebra_total"]);
        assert_eq!(snap.gauge("mid_gauge"), Some(0));
    }

    #[test]
    fn identical_state_renders_identical_text() {
        let mk = |order: &[&str]| {
            let reg = MetricsRegistry::new();
            for name in order {
                reg.counter(name, "help text").add(7);
            }
            reg.histogram("lat_ns", "latency", &[10, 20]).observe(15);
            reg.render_prometheus()
        };
        assert_eq!(mk(&["a_total", "b_total"]), mk(&["b_total", "a_total"]));
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("frames_in_total", "frames decoded from the wire").add(3);
        let h = reg.histogram("refresh_ns", "snapshot refresh latency", &[100, 200]);
        h.observe(50);
        h.observe(150);
        h.observe(5000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE frames_in_total counter\nframes_in_total 3\n"));
        assert!(text.contains("refresh_ns_bucket{le=\"100\"} 1\n"));
        assert!(text.contains("refresh_ns_bucket{le=\"200\"} 2\n"));
        assert!(text.contains("refresh_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("refresh_ns_sum 5200\n"));
        assert!(text.contains("refresh_ns_count 3\n"));
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits_total", "");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.snapshot().counter("hits_total"), Some(40_000));
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "").add(2);
        reg.histogram("h_ns", "", &[5]).observe(3);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}

//! Hierarchical span timing for the analysis pipeline.
//!
//! A [`SpanRecorder`] times nested stages (decode → salvage → segments →
//! CP walk → metrics) into a tree of [`SpanProfile`] nodes. Recording is
//! strictly additive instrumentation: the recorder only reads the clock
//! around closures, so the instrumented computation's results are untouched.

use std::cell::RefCell;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// One timed stage: its name, wall-clock duration and nested child stages,
/// in execution order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanProfile {
    /// Stage name (e.g. `"cp_walk"`).
    pub name: String,
    /// Wall-clock duration of the stage in nanoseconds, children included.
    pub duration_ns: u64,
    /// Nested stages, in the order they ran.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub children: Vec<SpanProfile>,
}

impl SpanProfile {
    /// Finds a direct child span by name.
    pub fn child(&self, name: &str) -> Option<&SpanProfile> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Finds a span anywhere in the tree by name (pre-order).
    pub fn find(&self, name: &str) -> Option<&SpanProfile> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Time spent in this span excluding its children (saturating).
    pub fn self_ns(&self) -> u64 {
        self.duration_ns.saturating_sub(self.children.iter().map(|c| c.duration_ns).sum())
    }

    /// Merges two profiles of the same shape by taking the per-span minimum
    /// duration — the standard way to combine repeated benchmark runs into
    /// a noise-floor estimate. Children are matched positionally by name;
    /// spans present in only one profile are kept as-is.
    pub fn merge_min(&self, other: &SpanProfile) -> SpanProfile {
        let mut merged = SpanProfile {
            name: self.name.clone(),
            duration_ns: self.duration_ns.min(other.duration_ns),
            children: Vec::with_capacity(self.children.len()),
        };
        for (i, c) in self.children.iter().enumerate() {
            match other.children.get(i) {
                Some(o) if o.name == c.name => merged.children.push(c.merge_min(o)),
                _ => merged.children.push(c.clone()),
            }
        }
        merged
    }
}

struct Node {
    name: String,
    started: Instant,
    duration_ns: u64,
    children: Vec<usize>,
}

struct RecInner {
    /// Arena of spans; index 0 is the root.
    nodes: Vec<Node>,
    /// Indices of currently open spans; the root stays open until `finish`.
    stack: Vec<usize>,
}

/// Records a tree of timed spans. Not `Sync`: one recorder belongs to the
/// thread driving the pipeline (stages may fan out internally — only the
/// stage boundaries are timed here).
pub struct SpanRecorder {
    inner: RefCell<RecInner>,
}

impl SpanRecorder {
    /// Starts a recorder whose root span is `root` (its clock starts now).
    pub fn new(root: &str) -> Self {
        let node = Node {
            name: root.to_string(),
            started: Instant::now(),
            duration_ns: 0,
            children: Vec::new(),
        };
        Self { inner: RefCell::new(RecInner { nodes: vec![node], stack: vec![0] }) }
    }

    /// Runs `f` inside a child span named `name` of the innermost open span,
    /// returning `f`'s result. Nested calls to `time` from within `f`
    /// produce nested spans.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let idx = {
            let mut inner = self.inner.borrow_mut();
            let idx = inner.nodes.len();
            inner.nodes.push(Node {
                name: name.to_string(),
                started: Instant::now(),
                duration_ns: 0,
                children: Vec::new(),
            });
            let parent = *inner.stack.last().expect("span stack never empty");
            inner.nodes[parent].children.push(idx);
            inner.stack.push(idx);
            idx
        };
        let result = f();
        let mut inner = self.inner.borrow_mut();
        let popped = inner.stack.pop().expect("span stack never empty");
        debug_assert_eq!(popped, idx, "span stack discipline violated");
        inner.nodes[idx].duration_ns = inner.nodes[idx].started.elapsed().as_nanos() as u64;
        result
    }

    /// Records a leaf span with an externally measured duration (for stages
    /// timed elsewhere, e.g. reading bytes off a socket).
    pub fn record_ns(&self, name: &str, duration_ns: u64) {
        let mut inner = self.inner.borrow_mut();
        let idx = inner.nodes.len();
        inner.nodes.push(Node {
            name: name.to_string(),
            started: Instant::now(),
            duration_ns,
            children: Vec::new(),
        });
        let parent = *inner.stack.last().expect("span stack never empty");
        inner.nodes[parent].children.push(idx);
    }

    /// Closes the root span and returns the completed profile tree.
    pub fn finish(self) -> SpanProfile {
        let mut inner = self.inner.into_inner();
        inner.nodes[0].duration_ns = inner.nodes[0].started.elapsed().as_nanos() as u64;
        build(&inner.nodes, 0)
    }
}

fn build(nodes: &[Node], idx: usize) -> SpanProfile {
    let n = &nodes[idx];
    SpanProfile {
        name: n.name.clone(),
        duration_ns: n.duration_ns,
        children: n.children.iter().map(|&c| build(nodes, c)).collect(),
    }
}

/// Times a single closure, returning its result and elapsed nanoseconds.
pub fn time_ns<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_nanos() as u64)
}

/// Runs `f` `reps` times (at least once) and returns the minimum elapsed
/// nanoseconds — the conventional noise-floor estimator for benchmarks.
pub fn min_time_ns(reps: u32, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps.max(1) {
        let (_, ns) = time_ns(&mut f);
        best = best.min(ns);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn records_nested_spans_in_order() {
        let rec = SpanRecorder::new("analyze");
        let v = rec.time("segments", || {
            rec.time("scan", || 1u32);
            rec.time("merge", || 2u32)
        });
        assert_eq!(v, 2);
        rec.time("cp_walk", || ());
        let profile = rec.finish();
        assert_eq!(profile.name, "analyze");
        let names: Vec<&str> = profile.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["segments", "cp_walk"]);
        let seg = profile.child("segments").unwrap();
        let inner: Vec<&str> = seg.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(inner, ["scan", "merge"]);
        assert!(profile.find("merge").is_some());
        assert!(profile.find("missing").is_none());
    }

    #[test]
    fn durations_are_monotone_in_nesting() {
        let rec = SpanRecorder::new("root");
        rec.time("outer", || {
            rec.time("inner", || std::thread::sleep(Duration::from_millis(2)));
        });
        let p = rec.finish();
        let outer = p.child("outer").unwrap();
        let inner = outer.child("inner").unwrap();
        assert!(inner.duration_ns >= 2_000_000);
        assert!(outer.duration_ns >= inner.duration_ns);
        assert!(p.duration_ns >= outer.duration_ns);
        assert_eq!(outer.self_ns(), outer.duration_ns - inner.duration_ns);
    }

    #[test]
    fn record_ns_attaches_externally_timed_leaf() {
        let rec = SpanRecorder::new("root");
        rec.record_ns("decode", 1234);
        let p = rec.finish();
        assert_eq!(p.child("decode").unwrap().duration_ns, 1234);
    }

    #[test]
    fn merge_min_takes_per_span_minimum() {
        let a = SpanProfile {
            name: "r".into(),
            duration_ns: 100,
            children: vec![SpanProfile { name: "x".into(), duration_ns: 60, children: vec![] }],
        };
        let b = SpanProfile {
            name: "r".into(),
            duration_ns: 90,
            children: vec![SpanProfile { name: "x".into(), duration_ns: 70, children: vec![] }],
        };
        let m = a.merge_min(&b);
        assert_eq!(m.duration_ns, 90);
        assert_eq!(m.child("x").unwrap().duration_ns, 60);
    }

    #[test]
    fn profile_serde_roundtrip_skips_empty_children() {
        let rec = SpanRecorder::new("root");
        rec.time("leaf", || ());
        let p = rec.finish();
        let json = serde_json::to_string(&p).unwrap();
        assert!(!json.contains("\"children\":[]"), "empty children must be skipped: {json}");
        let back: SpanProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn min_time_ns_runs_at_least_once() {
        let mut calls = 0;
        let ns = min_time_ns(0, || calls += 1);
        assert_eq!(calls, 1);
        assert!(ns < u64::MAX);
    }
}
